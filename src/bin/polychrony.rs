//! `polychrony` — command-line front end of the DATE 2013 tool chain.
//!
//! Runs the complete analysis/validation pipeline on the built-in
//! ProducerConsumer case study without writing any Rust:
//!
//! ```bash
//! polychrony analyze  [--policy rm|edf|fp] [--stop-after PHASE]
//! polychrony simulate [--hyperperiods N] [--vcd]
//! polychrony verify   [--workers N] [--hyperperiods N] [--product]
//!                     [--frontier barrier|work-stealing] [--no-pruning]
//!                     [--interner-capacity N] [--property EXPR]...
//!                     [--domain concrete|interval] [--project-counters]
//!                     [--inject-deadline-bug] [--inject-connection-bug]
//!                     [--progress] [--trace-out FILE]
//! polychrony batch    [--jobs N] [--workers N] [--property EXPR]...
//!                     [--progress] [--trace-out FILE]
//! polychrony vopr     [--seed S] [--iterations N] [--fault KIND]
//!                     [--max-threads N] [--no-shrink] [--replay S]
//! ```
//!
//! With a running `polychronyd` (see `docs/SERVICE.md`), four more
//! subcommands talk to the daemon over its socket:
//!
//! ```bash
//! polychrony submit (--socket PATH | --tcp ADDR) [--name NAME]
//!                   [--workers N] [--hyperperiods N] [--product]
//!                   [--domain concrete|interval] [--project-counters]
//!                   [--property EXPR]... [--detach]
//! polychrony status (--socket PATH | --tcp ADDR) [--id N]
//! polychrony watch  (--socket PATH | --tcp ADDR) --id N
//! polychrony stop   (--socket PATH | --tcp ADDR)
//! polychrony vopr   --daemon (--socket PATH | --tcp ADDR) [--seed S]
//!                   [--iterations N] [--max-threads N]
//! ```
//!
//! Every subcommand also accepts `--quiet` (only final verdict lines) and
//! `-v`/`--verbose` (extra detail such as per-phase timings). Live
//! `--progress` output goes to stderr and `--trace-out` to its file, so
//! machine-readable streams never interleave with the human output on
//! stdout.
//!
//! Exit codes: `0` success, `1` usage error (including out-of-range option
//! values), `2` a check failed (invalid schedule, alarm during simulation,
//! a verification violation, or a failed batch job).

use std::path::PathBuf;
use std::process::ExitCode;

use polychrony_client::{ClientError, Endpoint};
use polychrony_core::aadl::synth::SyntheticSpec;
use polychrony_core::polyverify::{Domain, FrontierMode, Property};
use polychrony_core::sched::SchedulingPolicy;
use polychrony_core::{
    BatchJob, BatchRunner, Collector, CoreError, JsonLinesSink, ProgressReporter, ProgressUpdate,
    PropertySpec, ScheduleOptions, Session, SessionOptions, ToolChain, VerificationScope,
};
use polyvopr::{FaultKind, VoprOptions};
use polywire::{JobSpec, WireReport};

/// A CLI failure: a usage error (exit code 1) or a runtime error (exit
/// code 2), matching the contract in the module documentation.
enum CliError {
    Usage(String),
    Run(String),
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        match e {
            // An out-of-range option is a command-line mistake (exit 1),
            // not a failed check of the model (exit 2).
            CoreError::InvalidOptions(msg) => CliError::Usage(msg),
            other => CliError::Run(other.to_string()),
        }
    }
}

impl From<ClientError> for CliError {
    // Every client-side failure — daemon not running (connection refused),
    // daemon-reported error, protocol mismatch — is a runtime error
    // (exit 2), never a panic and never a usage error.
    fn from(e: ClientError) -> Self {
        CliError::Run(e.to_string())
    }
}

/// Verbosity-routed human output on stdout. Three tiers: [`Ui::result`]
/// lines (final verdicts) always print, [`Ui::say`] narration is suppressed
/// by `--quiet`, and [`Ui::detail`] extras print only with `-v`. Machine
/// output (`--trace-out`, `--progress`) never goes through here — it has
/// its own sinks (a file and stderr), so the streams cannot interleave.
#[derive(Clone, Copy)]
struct Ui {
    level: i8,
}

impl Ui {
    fn from_args(args: &[String]) -> Result<Self, CliError> {
        let quiet = has_flag(args, "--quiet");
        let verbose = has_flag(args, "-v") || has_flag(args, "--verbose");
        if quiet && verbose {
            return Err(CliError::Usage(
                "--quiet and -v/--verbose are mutually exclusive".into(),
            ));
        }
        let level = if quiet {
            -1
        } else if verbose {
            1
        } else {
            0
        };
        Ok(Self { level })
    }

    /// Normal narration; suppressed by `--quiet`.
    fn say(&self, msg: &str) {
        if self.level >= 0 {
            println!("{msg}");
        }
    }

    /// Extra detail; printed only with `-v`.
    fn detail(&self, msg: &str) {
        if self.level >= 1 {
            println!("{msg}");
        }
    }

    /// A final verdict line; always printed, even under `--quiet`.
    fn result(&self, msg: &str) {
        println!("{msg}");
    }
}

/// The verbosity and observability flags accepted by every subcommand.
const COMMON_FLAGS: [(&str, bool); 3] = [("--quiet", false), ("-v", false), ("--verbose", false)];

/// The sink flags accepted by the exploration-heavy subcommands.
const OBS_FLAGS: [(&str, bool); 2] = [("--progress", false), ("--trace-out", true)];

/// Builds the run's collector from `--progress` / `--trace-out`: full
/// collection with the matching sinks when either is present, noop
/// otherwise (telemetry costs nothing unless asked for).
fn collector_from_args(args: &[String]) -> Result<Collector, CliError> {
    let trace_out = flag_value(args, "--trace-out", String::new())?;
    let progress = has_flag(args, "--progress");
    if trace_out.is_empty() && !progress {
        return Ok(Collector::noop());
    }
    let collector = Collector::full();
    if !trace_out.is_empty() {
        let file = std::fs::File::create(&trace_out).map_err(|e| {
            CliError::Usage(format!("cannot create --trace-out file `{trace_out}`: {e}"))
        })?;
        collector.add_sink(Box::new(JsonLinesSink::new(Box::new(file))));
    }
    if progress {
        collector.add_sink(Box::new(ProgressReporter::stderr()));
    }
    Ok(collector)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    let result = match command.as_str() {
        "analyze" => analyze(&args[1..]),
        "simulate" => simulate(&args[1..]),
        "verify" => verify(&args[1..]),
        "batch" => batch(&args[1..]),
        "vopr" => vopr(&args[1..]),
        "submit" => submit(&args[1..]),
        "status" => status(&args[1..]),
        "watch" => watch(&args[1..]),
        "stop" => stop(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}\n\n{USAGE}");
            ExitCode::from(1)
        }
        Err(CliError::Run(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "polychrony — polychronous analysis and validation of the \
ProducerConsumer case study (DATE 2013)

USAGE:
    polychrony analyze  [--policy rm|edf|fp] [--stop-after PHASE]
    polychrony simulate [--hyperperiods N] [--vcd]
    polychrony verify   [--workers N] [--hyperperiods N] [--product]
                        [--frontier barrier|work-stealing] [--no-pruning]
                        [--interner-capacity N] [--property EXPR]...
                        [--domain concrete|interval] [--project-counters]
                        [--inject-deadline-bug] [--inject-connection-bug]
                        [--progress] [--trace-out FILE]
    polychrony batch    [--jobs N] [--workers N] [--property EXPR]...
                        [--progress] [--trace-out FILE]
    polychrony vopr     [--seed S] [--iterations N] [--fault KIND]
                        [--max-threads N] [--no-shrink] [--replay S]
    polychrony vopr     --daemon (--socket PATH | --tcp ADDR) [--seed S]
                        [--iterations N] [--max-threads N]
    polychrony submit   (--socket PATH | --tcp ADDR) [--name NAME]
                        [--workers N] [--hyperperiods N] [--product]
                        [--domain concrete|interval] [--project-counters]
                        [--property EXPR]... [--detach]
    polychrony status   (--socket PATH | --tcp ADDR) [--id N]
    polychrony watch    (--socket PATH | --tcp ADDR) --id N
    polychrony stop     (--socket PATH | --tcp ADDR)

GLOBAL FLAGS (every subcommand):
    --quiet          print only the final verdict lines
    -v, --verbose    print extra detail (per-phase wall times, records)

OBSERVABILITY (verify and batch; see docs/OBSERVABILITY.md):
    --progress       live progress on stderr: phase, explored states,
                     depth vs. bound, states/s and ETA (throttled)
    --trace-out FILE stream a `polychrony-trace-v1` JSON-lines trace
                     (spans, events, final counters) to FILE

COMMANDS:
    analyze    parse, schedule, translate and statically analyse the model;
               --stop-after parse|instantiate|schedule|translate|analyze
               halts the staged pipeline after that phase and prints its
               artifact
    simulate   co-simulate the scheduled threads and report alarm instants
    verify     exhaustively model-check every thread (alarm + deadlock
               freedom); --property adds a user past-time LTL property
               (repeatable; see docs/PROPERTIES.md for the grammar, e.g.
               'never raised(*Alarm*)' or 'always (Deadline implies Resume
               within 2)'); with --product, additionally verify the
               synchronous product of the communicating threads (event-port
               connections as synchronising actions, one end-to-end response
               property per connection, user properties over the joint
               namespace) and print the joint verdict; with
               --inject-deadline-bug, inject a deadline overrun into the
               producer schedule, check the user properties (or the default
               alarm property), print the counterexample and confirm it by
               simulator replay; with --inject-connection-bug, delay the
               producer's start-timer connection past the timer's input
               freeze and confirm the cross-thread counterexample by
               lockstep co-simulation; --frontier selects the exploration
               frontier discipline (work-stealing deques by default,
               barrier for level-synchronised chunks — verdicts are
               identical); --no-pruning disables clock-calculus pruning
               and per-component memoization (verdicts are identical);
               --interner-capacity sets the initial per-shard capacity of
               the state interner; --domain interval switches the engine to
               the interval abstraction (property-invisible monotone
               counters widen, so unbounded-counter spaces can close with a
               genuine proof — see docs/SYMBOLIC.md) and --project-counters
               additionally drops such counters from the state key; both
               are strengthen-only (abstract counterexamples must replay
               concretely before being reported)
    batch      run N models (the case study + synthetic workloads) through
               the whole pipeline concurrently on a bounded worker pool and
               print one timed report line per job; --property adds a user
               property to every job
    vopr       seeded whole-system chaos harness (docs/VOPR.md): generate
               complete AADL systems from --seed, drive each through the
               full pipeline and cross-check independent oracles (cached
               vs uncached runs, compiled LTL monitors vs the reference
               trace semantics, product verdicts vs lockstep
               co-simulation, concrete vs interval-domain verdicts,
               counterexample replay); --fault injects one of
               deadline-overrun, connection-latency, dropped-delivery,
               dispatch-jitter, corrupted-schedule, counter-drift into
               every scenario and demands the verifier catch it (or, for
               the agreement faults, that every oracle still agree on the
               tampered system); any finding is shrunk to a
               minimal failing system (--no-shrink to keep the original)
               and printed with a replay line; --replay S re-runs one
               scenario seed (hex 0x... or decimal) literally; with
               --daemon, fan the generated jobs at a running polychronyd
               instead and cross-check every wire report against a local
               run of the identical job
    submit     send the case study to a running polychronyd (docs/SERVICE.md)
               and stream progress until the report arrives; repeated submits
               with the same front-end options hit the daemon's artifact
               cache; --detach returns immediately after the job id
    status     list the daemon's job table (or one job with --id)
    watch      re-attach to a submitted job and stream it to completion
    stop       ask the daemon to finish running jobs and exit";

/// Rejects any argument that is not in the subcommand's allowed flag list
/// (`(flag, takes_value)` pairs), so a typo like `--hyperperiod` fails
/// loudly instead of silently running with defaults.
fn check_flags(args: &[String], allowed: &[(&str, bool)]) -> Result<(), CliError> {
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        match allowed.iter().find(|(flag, _)| flag == arg) {
            Some((_, takes_value)) => i += if *takes_value { 2 } else { 1 },
            None => return Err(CliError::Usage(format!("unknown argument `{arg}`"))),
        }
    }
    Ok(())
}

/// Returns the value following `--flag`, parsed, or the default.
fn flag_value<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value for {flag}"))),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Collects every value of a repeatable `--flag VALUE` argument.
fn flag_values(args: &[String], flag: &str) -> Result<Vec<String>, CliError> {
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            match args.get(i + 1) {
                Some(value) => values.push(value.clone()),
                None => return Err(CliError::Usage(format!("{flag} needs a value"))),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(values)
}

/// Parses the repeatable `--property` expressions, turning a syntax error
/// into a usage error that carries the parser's caret-annotated span.
fn parse_properties(args: &[String]) -> Result<Vec<Property>, CliError> {
    flag_values(args, "--property")?
        .iter()
        .map(|expr| {
            Property::parse_ltl(expr)
                .map_err(|e| CliError::Usage(format!("invalid --property expression: {e}")))
        })
        .collect()
}

fn analyze(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![("--policy", true), ("--stop-after", true)];
    allowed.extend(COMMON_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let policy = match flag_value(args, "--policy", "edf".to_string())?.as_str() {
        "rm" => SchedulingPolicy::RateMonotonic,
        "edf" => SchedulingPolicy::EarliestDeadlineFirst,
        "fp" => SchedulingPolicy::FixedPriority,
        other => {
            return Err(CliError::Usage(format!(
                "unknown policy `{other}` (use rm, edf or fp)"
            )))
        }
    };
    let stop_after = flag_value(args, "--stop-after", String::new())?;
    if !stop_after.is_empty() {
        return analyze_staged(ui, policy, &stop_after);
    }
    let report = ToolChain::new()
        .with_policy(policy)
        .with_verification(false)
        .with_hyperperiods(1)
        .run_case_study()?;
    ui.say(&report.summary());
    ui.say(&format!("-- task set --\n{}", report.task_set_summary));
    ui.say(&format!(
        "-- static schedule --\n{}",
        report.schedule.to_table()
    ));
    ui.detail(&format!("-- phases --\n{}", report.run_record.summary()));
    let ok = report.all_checks_passed();
    ui.result(&format!("checks passed: {}", if ok { "yes" } else { "NO" }));
    Ok(exit_for(ok))
}

/// Runs the staged pipeline up to (and including) `stop_after`, printing
/// the artifact of that phase.
fn analyze_staged(
    ui: Ui,
    policy: SchedulingPolicy,
    stop_after: &str,
) -> Result<ExitCode, CliError> {
    const PHASES: [&str; 5] = ["parse", "instantiate", "schedule", "translate", "analyze"];
    if !PHASES.contains(&stop_after) {
        return Err(CliError::Usage(format!(
            "unknown phase `{stop_after}` (use {})",
            PHASES.join(", ")
        )));
    }
    let session = Session::new().schedule_options(ScheduleOptions { policy });

    let parsed = session.parse_case_study()?;
    if stop_after == "parse" {
        ui.result(&format!(
            "parsed package `{}`: {} classifier(s)",
            parsed.package.name,
            parsed.package.classifiers.len()
        ));
        return Ok(ExitCode::SUCCESS);
    }

    let instantiated = parsed.instantiate("sysProdCons.impl")?;
    if stop_after == "instantiate" {
        ui.result(&format!(
            "instantiated `{}`: {} component instance(s)",
            instantiated.instance.root.path,
            instantiated.instance.instance_count()
        ));
        for (category, count) in instantiated.instance.category_counts() {
            ui.say(&format!("  {:<10} {count}", category.keyword()));
        }
        return Ok(ExitCode::SUCCESS);
    }

    let scheduled = instantiated.schedule()?;
    if stop_after == "schedule" {
        ui.say(&format!("-- task set --\n{}", scheduled.tasks));
        ui.say(&format!(
            "-- static schedule --\n{}",
            scheduled.schedule.to_table()
        ));
        ui.result(&format!(
            "affine clocks: {} exported, {} constraint(s) verified",
            scheduled.affine.clock_count(),
            scheduled.affine.verified_constraints
        ));
        return Ok(exit_for(scheduled.schedule.is_valid()));
    }

    let translated = scheduled.translate()?;
    if stop_after == "translate" {
        ui.result(&format!(
            "translated {} SIGNAL process(es), {} equation(s), {} scheduled thread unit(s)",
            translated.system.model.len(),
            translated.system.model.total_equations(),
            translated.thread_units.len()
        ));
        return Ok(ExitCode::SUCCESS);
    }

    let analyzed = translated.analyze()?;
    ui.say(&format!(
        "clocks      : {} classes, {} master(s), hierarchy depth {}",
        analyzed.static_analysis.clock_count,
        analyzed.static_analysis.master_clock_count,
        analyzed.static_analysis.hierarchy_depth
    ));
    ui.result(&format!(
        "determinism : {}",
        if analyzed.static_analysis.determinism.is_deterministic() {
            "deterministic"
        } else {
            "NON-DETERMINISTIC"
        }
    ));
    ui.result(&format!(
        "deadlock    : {}",
        if analyzed.static_analysis.causality_cycle.is_none() {
            "none"
        } else {
            "CYCLE FOUND"
        }
    ));
    let ok = analyzed.static_analysis.causality_cycle.is_none()
        && analyzed.static_analysis.determinism.is_deterministic();
    Ok(exit_for(ok))
}

/// Runs N models (the case study plus synthetic workloads) through the
/// whole pipeline on a bounded worker pool.
fn batch(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![("--jobs", true), ("--workers", true), ("--property", true)];
    allowed.extend(COMMON_FLAGS);
    allowed.extend(OBS_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let collector = collector_from_args(args)?;
    let job_count: usize = flag_value(args, "--jobs", 8)?;
    let workers: usize = flag_value(args, "--workers", 4)?;
    if job_count == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    // Fail fast on malformed property expressions (usage error with span).
    parse_properties(args)?;
    // Per-job options: one simulated hyper-period, no waveform, sequential
    // in-job verification (the parallelism lives at the job level); every
    // job checks the user-supplied properties on top of the built-ins.
    let mut options = SessionOptions::quick();
    options.verify.properties = flag_values(args, "--property")?
        .into_iter()
        .map(PropertySpec::new)
        .collect();
    let jobs: Vec<BatchJob> = (0..job_count)
        .map(|i| {
            let job = if i == 0 {
                BatchJob::case_study("prodcons-case-study")
            } else {
                let threads = [4, 6, 8][(i - 1) % 3];
                BatchJob::synthetic(
                    format!("synthetic-{threads}t-{i}"),
                    &SyntheticSpec::new(threads, 1),
                )
            };
            job.with_options(options.clone())
        })
        .collect();
    let results = BatchRunner::new()
        .with_workers(workers)
        .with_collector(collector.clone())
        .run(&jobs)?;
    collector.flush();
    ui.say(&format!(
        "batch verification: {} model(s) on {} worker(s)\n",
        results.reports.len(),
        results.workers
    ));
    for report in &results.reports {
        ui.say(&report.summary());
        if let Some(record) = report.run_record() {
            ui.detail(&record.summary());
        }
    }
    ui.result(&results.totals());
    Ok(exit_for(results.all_passed()))
}

/// Parses a scenario seed as printed by a vopr replay line: `0x`-prefixed
/// hexadecimal or plain decimal.
fn parse_seed(text: &str, flag: &str) -> Result<u64, CliError> {
    let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| {
        CliError::Usage(format!(
            "invalid value for {flag}: `{text}` is not a decimal or 0x-prefixed seed"
        ))
    })
}

/// Runs the seeded chaos harness (or replays one scenario seed), printing
/// findings with their minimal failing system and replay line. With
/// `--daemon`, fans the generated jobs at a running daemon instead.
fn vopr(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![
        ("--seed", true),
        ("--iterations", true),
        ("--fault", true),
        ("--max-threads", true),
        ("--no-shrink", false),
        ("--replay", true),
        ("--daemon", false),
    ];
    allowed.extend(COMMON_FLAGS);
    allowed.extend(ENDPOINT_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let defaults = VoprOptions::default();
    let fault = match flag_value(args, "--fault", String::new())?.as_str() {
        "" => None,
        label => Some(FaultKind::from_label(label).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown fault `{label}` (use {})",
                FaultKind::ALL.map(FaultKind::label).join(", ")
            ))
        })?),
    };
    let options = VoprOptions {
        seed: parse_seed(&flag_value(args, "--seed", "0".to_string())?, "--seed")?,
        iterations: flag_value(args, "--iterations", defaults.iterations)?,
        fault,
        max_threads: flag_value(args, "--max-threads", defaults.max_threads)?,
        shrink: !has_flag(args, "--no-shrink"),
    };
    if options.iterations == 0 {
        return Err(CliError::Usage("--iterations must be at least 1".into()));
    }
    if options.max_threads == 0 {
        return Err(CliError::Usage("--max-threads must be at least 1".into()));
    }
    let mut progress = |line: String| ui.detail(&format!("  {line}"));

    if has_flag(args, "--daemon") {
        if fault.is_some() {
            return Err(CliError::Usage(
                "--fault is not available with --daemon (the daemon runs unmodified jobs)".into(),
            ));
        }
        if has_flag(args, "--replay") {
            return Err(CliError::Usage(
                "--replay is not available with --daemon".into(),
            ));
        }
        let endpoint = endpoint_from_args(args)?;
        ui.say(&format!(
            "vopr daemon load: {} seeded job(s) against {endpoint} (master seed 0x{:016x})\n",
            options.iterations, options.seed
        ));
        let report = polyvopr::run_daemon_load(&endpoint, &options, &mut progress)?;
        ui.result(report.summary().trim_end());
        return Ok(ExitCode::from(
            u8::try_from(report.exit_code()).unwrap_or(2),
        ));
    }

    let replay_seed = match flag_value(args, "--replay", String::new())?.as_str() {
        "" => None,
        text => Some(parse_seed(text, "--replay")?),
    };
    let report = match replay_seed {
        Some(seed) => {
            ui.say(&format!(
                "vopr replay: scenario seed 0x{seed:016x}{}\n",
                fault.map_or_else(String::new, |f| format!(", injecting {f}"))
            ));
            polyvopr::replay(seed, &options, &mut progress)
        }
        None => {
            ui.say(&format!(
                "vopr: {} scenario(s) from master seed 0x{:016x}{}\n",
                options.iterations,
                options.seed,
                fault.map_or_else(String::new, |f| format!(", injecting {f}"))
            ));
            polyvopr::run(&options, &mut progress)
        }
    };
    ui.result(report.summary().trim_end());
    Ok(ExitCode::from(
        u8::try_from(report.exit_code()).unwrap_or(2),
    ))
}

fn simulate(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![("--hyperperiods", true), ("--vcd", false)];
    allowed.extend(COMMON_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let hyperperiods = flag_value(args, "--hyperperiods", 4u64)?;
    let report = ToolChain::new()
        .with_verification(false)
        .with_hyperperiods(hyperperiods)
        .run_case_study()?;
    ui.say(&format!(
        "co-simulated {} thread(s) over {} hyper-period(s):",
        report.simulations.len(),
        hyperperiods
    ));
    for (thread, sim) in &report.simulations {
        ui.say(&format!(
            "  {:<45} {:>4} instants, {} alarm instant(s)",
            thread, sim.instants, sim.alarm_instants
        ));
    }
    ui.detail(&format!("-- phases --\n{}", report.run_record.summary()));
    if has_flag(args, "--vcd") {
        // Explicitly requested machine-ish payload: print it even under
        // --quiet, as it is the point of the flag.
        ui.result(&format!("\n-- VCD (producer thread) --\n{}", report.vcd));
    }
    let alarm_free = report.simulations.values().all(|s| s.is_alarm_free());
    ui.result(&format!(
        "alarm-free: {}",
        if alarm_free { "yes" } else { "NO" }
    ));
    Ok(exit_for(alarm_free))
}

fn verify(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![
        ("--workers", true),
        ("--hyperperiods", true),
        ("--product", false),
        ("--frontier", true),
        ("--no-pruning", false),
        ("--interner-capacity", true),
        ("--domain", true),
        ("--project-counters", false),
        ("--property", true),
        ("--inject-deadline-bug", false),
        ("--inject-connection-bug", false),
    ];
    allowed.extend(COMMON_FLAGS);
    allowed.extend(OBS_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let workers = flag_value(args, "--workers", 2usize)?;
    let hyperperiods = flag_value(args, "--hyperperiods", 1u64)?;
    let frontier = match flag_value(args, "--frontier", "work-stealing".to_string())?.as_str() {
        "work-stealing" => FrontierMode::WorkStealing,
        "barrier" => FrontierMode::Barrier,
        other => {
            return Err(CliError::Usage(format!(
                "unknown frontier mode `{other}` (use barrier or work-stealing)"
            )))
        }
    };
    let interner_capacity = flag_value(args, "--interner-capacity", 4096usize)?;
    let domain_label = flag_value(args, "--domain", "concrete".to_string())?;
    let domain = Domain::parse(&domain_label).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown domain `{domain_label}` (use concrete or interval)"
        ))
    })?;
    // Parse the user properties upfront: a malformed expression is a usage
    // error (exit 1) with the offending span, before any phase runs.
    let properties = parse_properties(args)?;
    if has_flag(args, "--inject-deadline-bug") {
        return verify_injected(ui, workers, hyperperiods, &properties);
    }
    if has_flag(args, "--inject-connection-bug") {
        return verify_injected_connection(ui, workers, hyperperiods, &properties);
    }
    let scope = if has_flag(args, "--product") {
        VerificationScope::Product
    } else {
        VerificationScope::PerThread
    };
    let collector = collector_from_args(args)?;
    let mut chain = ToolChain::new()
        .with_hyperperiods(1)
        .with_verify_workers(workers)
        .with_verify_hyperperiods(hyperperiods)
        .with_verify_scope(scope)
        .with_verify_frontier(frontier)
        .with_verify_pruning(!has_flag(args, "--no-pruning"))
        .with_verify_interner_capacity(interner_capacity)
        .with_verify_domain(domain)
        .with_verify_project_counters(has_flag(args, "--project-counters"))
        .with_collector(collector.clone());
    for expr in flag_values(args, "--property")? {
        chain = chain.with_property(expr);
    }
    let report = chain.run_case_study()?;
    collector.flush();
    let verification = report
        .verification
        .as_ref()
        .expect("verification phase enabled");
    ui.say(&format!(
        "state-space verification ({} worker(s), {} hyper-period(s), {} scope):\n",
        verification.workers,
        verification.hyperperiods,
        if verification.product.is_some() {
            "product"
        } else {
            "per-thread"
        }
    ));
    ui.say(&verification.summary());
    ui.detail(&format!("-- phases --\n{}", report.run_record.summary()));
    if let Some(product) = &verification.product {
        ui.say(&format!(
            "joint verdict: {}",
            if product.is_violation_free() {
                "no cross-thread violation"
            } else {
                "cross-thread VIOLATION"
            }
        ));
    }
    let ok = verification.is_violation_free();
    ui.result(&format!(
        "violation-free: {}",
        if ok { "yes" } else { "NO" }
    ));
    Ok(exit_for(ok))
}

/// Injects a deadline overrun into the producer's schedule, model-checks the
/// faulty system — against the user-supplied `--property` expressions alone
/// when any were given, otherwise against the default alarm property — and
/// confirms the counterexample by simulator replay.
fn verify_injected(
    ui: Ui,
    workers: usize,
    hyperperiods: u64,
    properties: &[Property],
) -> Result<ExitCode, CliError> {
    let demo = polychrony_core::deadline_overrun_demo(hyperperiods)?;
    ui.say(&format!(
        "injected deadline overrun: Resume moved from tick {} to {:?} (deadline at tick {})\n",
        demo.fault.resume_moved_from, demo.fault.resume_moved_to, demo.fault.deadline_tick
    ));

    let (outcome, replay) = if properties.is_empty() {
        demo.verify_and_replay(workers)?
    } else {
        demo.verify_properties_and_replay(workers, properties)?
    };
    ui.say(&outcome.summary());
    let Some((_, cex)) = outcome.violations().next() else {
        ui.result("expected the injected bug to be found — it was not");
        return Ok(ExitCode::from(2));
    };
    ui.say(&cex.render());
    let replay = replay.expect("a violation always carries a replay");
    ui.result(&format!(
        "simulator replay: {} ({})",
        if replay.reproduced {
            "violation reproduced"
        } else {
            "NOT reproduced"
        },
        replay.detail
    ));
    Ok(exit_for(replay.reproduced))
}

/// Delays the producer's start-timer connection past the timer thread's
/// input freeze, model-checks the thread product over `hyperperiods`
/// repetitions and confirms the cross-thread counterexample by lockstep
/// co-simulation.
fn verify_injected_connection(
    ui: Ui,
    workers: usize,
    hyperperiods: u64,
    properties: &[Property],
) -> Result<ExitCode, CliError> {
    if hyperperiods == 0 {
        return Err(CliError::Usage(
            "--hyperperiods must be at least 1".to_string(),
        ));
    }
    let mut demo = polychrony_core::connection_latency_demo(8)?;
    // The demo's depth bound defaults to one joint hyper-period; scale it
    // to the requested exploration window.
    demo.horizon *= hyperperiods as usize;
    ui.say(&format!(
        "injected connection latency: link `{}` delayed by {} tick(s) (was {})\n",
        demo.fault.link, demo.fault.added_latency, demo.fault.original_latency
    ));
    let (outcome, replay) = if properties.is_empty() {
        demo.verify_and_replay(workers)?
    } else {
        demo.verify_properties_and_replay(workers, properties)?
    };
    ui.say(&outcome.summary());
    let Some((_, cex)) = outcome.violations().next() else {
        ui.result("expected the injected connection bug to be found — it was not");
        return Ok(ExitCode::from(2));
    };
    ui.say(&cex.render());
    let replay = replay.expect("a violation always carries a replay");
    ui.result(&format!(
        "lockstep co-simulation replay: {} ({})",
        if replay.reproduced {
            "violation reproduced"
        } else {
            "NOT reproduced"
        },
        replay.detail
    ));
    Ok(exit_for(replay.reproduced))
}

/// The endpoint flags shared by the daemon-facing subcommands.
const ENDPOINT_FLAGS: [(&str, bool); 2] = [("--socket", true), ("--tcp", true)];

/// Resolves `--socket PATH` / `--tcp ADDR` into a client endpoint;
/// exactly one of the two is required.
fn endpoint_from_args(args: &[String]) -> Result<Endpoint, CliError> {
    let socket = flag_value(args, "--socket", String::new())?;
    let tcp = flag_value(args, "--tcp", String::new())?;
    match (socket.is_empty(), tcp.is_empty()) {
        (false, true) => Ok(Endpoint::Unix(PathBuf::from(socket))),
        (true, false) => Ok(Endpoint::Tcp(tcp)),
        (true, true) => Err(CliError::Usage(
            "one of --socket or --tcp is required".into(),
        )),
        (false, false) => Err(CliError::Usage(
            "--socket and --tcp are mutually exclusive".into(),
        )),
    }
}

/// Streams one progress update to stderr (same channel as `--progress`,
/// so it never interleaves with the report on stdout).
fn print_progress(ui: Ui, id: u64, update: &ProgressUpdate) {
    if ui.level < 0 {
        return;
    }
    match update {
        ProgressUpdate::Phase { name } => eprintln!("[job {id}] phase {name}"),
        ProgressUpdate::Level {
            phase,
            depth,
            bound,
            states,
            ..
        } => {
            let bound = bound.map_or_else(String::new, |b| format!("/{b}"));
            eprintln!("[job {id}] {phase}: depth {depth}{bound}, {states} states");
        }
    }
}

/// Prints a daemon report. The `--quiet` output is diff-stable across
/// cache-cold and cache-warm runs except for the leading `cache:` line —
/// wall time and other run-variant detail goes through [`Ui::say`] /
/// [`Ui::detail`] only.
fn print_wire_report(ui: Ui, id: u64, report: &WireReport) -> Result<ExitCode, CliError> {
    if let Some(error) = &report.error {
        return Err(CliError::Run(format!("job {id} failed: {error}")));
    }
    ui.result(&format!(
        "cache: {}",
        report.cache.as_deref().unwrap_or("off")
    ));
    ui.say(&format!(
        "hyper-period {} ticks, {} state(s), {} transition(s)",
        report.hyperperiod, report.states, report.transitions
    ));
    ui.detail(&format!("wall time: {} us", report.wall_us));
    for (name, verdict) in &report.verdicts {
        ui.result(&format!("  {name}: {verdict}"));
    }
    ui.result(&format!(
        "passed: {}",
        if report.passed { "yes" } else { "NO" }
    ));
    Ok(exit_for(report.passed))
}

/// Submits the case study to a running daemon and (unless `--detach`)
/// streams progress until the report arrives.
fn submit(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![
        ("--name", true),
        ("--workers", true),
        ("--hyperperiods", true),
        ("--product", false),
        ("--domain", true),
        ("--project-counters", false),
        ("--property", true),
        ("--detach", false),
    ];
    allowed.extend(COMMON_FLAGS);
    allowed.extend(ENDPOINT_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let endpoint = endpoint_from_args(args)?;
    // Validate property syntax client-side: a typo is a usage error here,
    // not a daemon-side rejection later.
    parse_properties(args)?;
    let mut options = SessionOptions::quick();
    options.verify.workers = flag_value(args, "--workers", options.verify.workers)?;
    options.verify.hyperperiods = flag_value(args, "--hyperperiods", options.verify.hyperperiods)?;
    if has_flag(args, "--product") {
        options.verify.scope = VerificationScope::Product;
    }
    let domain_label = flag_value(args, "--domain", "concrete".to_string())?;
    options.verify.domain = Domain::parse(&domain_label).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown domain `{domain_label}` (use concrete or interval)"
        ))
    })?;
    options.verify.project_counters = has_flag(args, "--project-counters");
    options.verify.properties = flag_values(args, "--property")?
        .into_iter()
        .map(PropertySpec::new)
        .collect();
    options
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let name = flag_value(args, "--name", "case-study".to_string())?;
    let spec = JobSpec::case_study(name).with_options(options);

    let detach = has_flag(args, "--detach");
    let mut client = endpoint.connect()?;
    let (id, state) = client.submit(&spec, !detach)?;
    ui.say(&format!(
        "submitted job {id} ({}) to {endpoint}",
        state.label()
    ));
    if detach {
        ui.result(&format!("job: {id}"));
        return Ok(ExitCode::SUCCESS);
    }
    let (result_id, report) = client.wait(|id, update| print_progress(ui, id, update))?;
    print_wire_report(ui, result_id, &report)
}

/// Prints the daemon's job table (or one row with `--id`).
fn status(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![("--id", true)];
    allowed.extend(COMMON_FLAGS);
    allowed.extend(ENDPOINT_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let endpoint = endpoint_from_args(args)?;
    let id = match flag_value(args, "--id", 0u64)? {
        0 => None,
        id => Some(id),
    };
    let rows = endpoint.connect()?.status(id)?;
    if rows.is_empty() {
        ui.result("no jobs");
        return Ok(ExitCode::SUCCESS);
    }
    for row in &rows {
        let detail = if row.detail.is_empty() {
            String::new()
        } else {
            format!("  {}", row.detail)
        };
        ui.result(&format!(
            "#{:<4} {:<10} {:<24}{detail}",
            row.id,
            row.state.label(),
            row.name
        ));
    }
    Ok(ExitCode::SUCCESS)
}

/// Re-attaches to a job and streams it to completion (a finished job
/// replays its stored report immediately).
fn watch(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![("--id", true)];
    allowed.extend(COMMON_FLAGS);
    allowed.extend(ENDPOINT_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let endpoint = endpoint_from_args(args)?;
    let id = flag_value(args, "--id", 0u64)?;
    if id == 0 {
        return Err(CliError::Usage("watch needs --id N".into()));
    }
    let mut client = endpoint.connect()?;
    client.watch(id)?;
    let (result_id, report) = client.wait(|id, update| print_progress(ui, id, update))?;
    print_wire_report(ui, result_id, &report)
}

/// Asks the daemon to finish running jobs and exit.
fn stop(args: &[String]) -> Result<ExitCode, CliError> {
    let mut allowed = vec![];
    allowed.extend(COMMON_FLAGS);
    allowed.extend(ENDPOINT_FLAGS);
    check_flags(args, &allowed)?;
    let ui = Ui::from_args(args)?;
    let endpoint = endpoint_from_args(args)?;
    endpoint.connect()?.shutdown()?;
    ui.result("daemon stopping");
    Ok(ExitCode::SUCCESS)
}

fn exit_for(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
