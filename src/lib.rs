//! Umbrella crate for the DATE 2013 reproduction *"Toward Polychronous
//! Analysis and Validation for Timed Software Architectures in AADL"*.
//!
//! This package hosts the workspace-level integration tests (`tests/`), the
//! runnable examples (`examples/`) and the `polychrony` command-line front
//! end (`src/bin/polychrony.rs`, with `analyze`, `simulate`, `verify` and
//! `batch` subcommands over the built-in case study and synthetic
//! workloads), and re-exports the whole public API of [`polychrony_core`] —
//! the staged [`Session`] pipeline, the [`ToolChain`] facade, the
//! [`BatchRunner`] worker pool and the [`polyverify`] model checker — so
//! that downstream users can depend on a single crate:
//!
//! ```
//! use polychrony::ToolChain;
//!
//! let report = ToolChain::new().run_case_study()?;
//! assert_eq!(report.schedule.hyperperiod, 24);
//! # Ok::<(), polychrony::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use polychrony_core::*;
