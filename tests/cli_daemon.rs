//! End-to-end tests of the daemon-facing CLI: exit-code contract when no
//! daemon is running, and a full `polychronyd` round trip — submit the
//! case study twice, the second run reports a cache hit with verdicts
//! identical to the first, then stop the daemon.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_polychrony"))
}

/// `polychronyd` lives in the server crate; `cargo test` puts both
/// binaries in the same target directory.
fn daemon_bin() -> PathBuf {
    let bin = Path::new(env!("CARGO_BIN_EXE_polychrony"))
        .parent()
        .expect("bin dir")
        .join("polychronyd");
    assert!(
        bin.exists(),
        "polychronyd not built at {} — run `cargo test --workspace` so every \
         workspace binary is available",
        bin.display()
    );
    bin
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("polychrony-cli-{}-{name}", std::process::id()))
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn connecting_to_a_missing_daemon_exits_2_not_a_panic() {
    for subcommand in ["submit", "status", "stop"] {
        let output = cli()
            .args([
                subcommand,
                "--socket",
                "/tmp/polychrony-no-such-daemon.sock",
            ])
            .output()
            .expect("run CLI");
        assert_eq!(
            output.status.code(),
            Some(2),
            "`{subcommand}` against a missing daemon must exit 2, got {:?}\nstderr: {}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("cannot connect"),
            "`{subcommand}` stderr should explain the connection failure: {stderr}"
        );
    }
}

#[test]
fn a_missing_endpoint_flag_is_a_usage_error_exit_1() {
    for subcommand in ["submit", "status", "watch", "stop"] {
        let output = cli().arg(subcommand).output().expect("run CLI");
        assert_eq!(
            output.status.code(),
            Some(1),
            "`{subcommand}` without --socket/--tcp must exit 1"
        );
    }
}

#[test]
fn conflicting_endpoint_flags_are_a_usage_error_exit_1() {
    let output = cli()
        .args(["status", "--socket", "/tmp/a.sock", "--tcp", "127.0.0.1:1"])
        .output()
        .expect("run CLI");
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn a_daemon_dying_mid_stream_is_a_clean_exit_2_not_a_hang() {
    let socket = tmp("dies.sock");
    let _ = std::fs::remove_file(&socket);

    let mut daemon = Command::new(daemon_bin())
        .args(["--socket"])
        .arg(&socket)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn polychronyd");
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(socket.exists(), "daemon socket never appeared");
    let pid = daemon.id().to_string();

    // Freeze the daemon so the watch request is accepted by the listening
    // socket's backlog but never answered — the client is parked inside
    // its blocking read when the daemon is killed.
    let stopped = Command::new("kill")
        .args(["-STOP", &pid])
        .status()
        .expect("send SIGSTOP");
    assert!(stopped.success());

    let mut watcher = cli()
        .args(["watch", "--id", "1", "--socket"])
        .arg(&socket)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn watch");
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        watcher.try_wait().expect("poll watcher").is_none(),
        "watcher should still be blocked on the frozen daemon"
    );

    // Kill the frozen daemon: the kernel closes its sockets and the
    // watcher's read fails mid-stream.
    let killed = Command::new("kill")
        .args(["-KILL", &pid])
        .status()
        .expect("send SIGKILL");
    assert!(killed.success());
    let _ = daemon.wait();

    // The watcher must exit 2 with a clean message — not panic, not hang.
    let mut exited = None;
    for _ in 0..400 {
        if let Some(status) = watcher.try_wait().expect("poll watcher") {
            exited = Some(status);
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let Some(status) = exited else {
        let _ = watcher.kill();
        panic!("watch hung after the daemon died mid-stream");
    };
    assert_eq!(
        status.code(),
        Some(2),
        "watch against a dying daemon must exit 2"
    );
    let mut stderr = String::new();
    use std::io::Read as _;
    watcher
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(
        stderr.contains("daemon closed the connection"),
        "stderr should explain the mid-stream disconnect cleanly: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "no panic output expected: {stderr}"
    );

    let _ = std::fs::remove_file(&socket);
}

#[test]
fn submitting_twice_hits_the_cache_with_identical_verdicts() {
    let socket = tmp("e2e.sock");
    let log = tmp("e2e.log");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&log);

    let mut daemon = Command::new(daemon_bin())
        .args(["--socket"])
        .arg(&socket)
        .args(["--workers", "2", "--log"])
        .arg(&log)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn polychronyd");
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(socket.exists(), "daemon socket never appeared");

    let submit = |name: &str| {
        let output = cli()
            .args(["submit", "--quiet", "--name", name, "--socket"])
            .arg(&socket)
            .output()
            .expect("submit");
        assert_eq!(
            output.status.code(),
            Some(0),
            "submit failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        stdout_of(&output)
    };
    let cold = submit("cold");
    let warm = submit("warm");

    assert!(
        cold.starts_with("cache: miss\n"),
        "first submission should miss the cache:\n{cold}"
    );
    assert!(
        warm.starts_with("cache: simulated-hit\n"),
        "second submission should hit the cache:\n{warm}"
    );
    let strip_cache = |text: &str| {
        text.lines()
            .filter(|line| !line.starts_with("cache: "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_cache(&cold),
        strip_cache(&warm),
        "cold and warm --quiet output must be identical apart from the cache line"
    );
    assert!(cold.trim_end().ends_with("passed: yes"));

    let status = cli()
        .args(["status", "--socket"])
        .arg(&socket)
        .output()
        .expect("status");
    let table = stdout_of(&status);
    assert!(table.contains("cold"), "status table lists job 1:\n{table}");
    assert!(
        table.contains("[cache: simulated-hit]"),
        "status table shows the warm job's cache outcome:\n{table}"
    );

    let stop = cli()
        .args(["stop", "--socket"])
        .arg(&socket)
        .output()
        .expect("stop");
    assert_eq!(stop.status.code(), Some(0));
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");

    let _ = std::fs::remove_file(&log);
}
