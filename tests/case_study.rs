//! E1 — the ProducerConsumer case study (Fig. 1): structure of the AADL
//! instance model and of its translation.

use polychrony_core::aadl::case_study::{
    producer_consumer_instance, CASE_STUDY_HYPERPERIOD_MS, CASE_STUDY_PERIODS_MS,
};
use polychrony_core::aadl::ComponentCategory;
use polychrony_core::asme2ssme::Translator;

#[test]
fn instance_model_matches_fig1() {
    let model = producer_consumer_instance().unwrap();
    // Fig. 1: the prProdCons process contains four threads and the shared
    // Queue, and communicates with the environment and the operator display.
    let counts = model.category_counts();
    assert_eq!(counts[&ComponentCategory::Thread], 4);
    assert_eq!(counts[&ComponentCategory::Data], 1);
    assert_eq!(counts[&ComponentCategory::Process], 1);
    assert_eq!(counts[&ComponentCategory::Processor], 1);
    assert_eq!(counts[&ComponentCategory::System], 3);

    let process = model.component("sysProdCons.prProdCons").unwrap();
    assert_eq!(process.children.len(), 5);

    // The process is bound to Processor1.
    assert_eq!(
        model.processor_binding("sysProdCons.prProdCons"),
        Some("sysProdCons.Processor1")
    );
}

#[test]
fn thread_periods_and_hyperperiod_match_the_paper() {
    let model = producer_consumer_instance().unwrap();
    let threads = model.threads().unwrap();
    let mut periods: Vec<u64> = threads
        .iter()
        .map(|t| t.timing.period.unwrap().as_millis())
        .collect();
    periods.sort_unstable();
    let mut expected = CASE_STUDY_PERIODS_MS.to_vec();
    expected.sort_unstable();
    assert_eq!(periods, expected);
    assert_eq!(
        affine_hyperperiod(&periods),
        CASE_STUDY_HYPERPERIOD_MS,
        "lcm(4,6,8,8) must be 24 ms"
    );
}

fn affine_hyperperiod(periods: &[u64]) -> u64 {
    polychrony_core::affine_clocks::lcm_all(periods).unwrap()
}

#[test]
fn timer_wiring_connects_producers_to_timers() {
    let model = producer_consumer_instance().unwrap();
    let has_connection = |src: &str, dst: &str| {
        model
            .connections
            .iter()
            .any(|c| c.source_component.ends_with(src) && c.destination_component.ends_with(dst))
    };
    assert!(has_connection("thProducer", "thProdTimer"));
    assert!(has_connection("thProdTimer", "thProducer"));
    assert!(has_connection("thConsumer", "thConsTimer"));
    assert!(has_connection("thConsTimer", "thConsumer"));
}

#[test]
fn translation_keeps_traceability_for_every_component() {
    let model = producer_consumer_instance().unwrap();
    let translated = Translator::new().translate(&model).unwrap();
    // Every thread, the process, the processor and the root system have an
    // entry in the traceability map (the paper's name-preservation
    // mechanism).
    for path in [
        "sysProdCons",
        "sysProdCons.prProdCons",
        "sysProdCons.Processor1",
        "sysProdCons.prProdCons.thProducer",
        "sysProdCons.prProdCons.thConsumer",
        "sysProdCons.prProdCons.thProdTimer",
        "sysProdCons.prProdCons.thConsTimer",
        "sysProdCons.prProdCons.Queue",
    ] {
        assert!(
            translated.signal_process_for(path).is_some(),
            "missing traceability for {path}"
        );
    }
    // Annotations carry the AADL path back into the SIGNAL text.
    let producer = translated
        .model
        .process(
            translated
                .signal_process_for("sysProdCons.prProdCons.thProducer")
                .unwrap(),
        )
        .unwrap();
    assert_eq!(
        producer.annotations["aadl::path"],
        "sysProdCons.prProdCons.thProducer"
    );
}
