//! Smoke tests that run each of the nine `examples/` binaries end to end,
//! so example rot is caught by `cargo test` and CI rather than by users.
//!
//! Each test shells out to the same `cargo` that is driving this test run
//! (via the `CARGO` environment variable) and asserts the example exits
//! successfully. Cargo serialises concurrent invocations on its own build
//! lock, so the tests are safe to run in parallel.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn `cargo run --example {name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn example_quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn example_producer_consumer_runs() {
    run_example("producer_consumer");
}

#[test]
fn example_port_semantics_runs() {
    run_example("port_semantics");
}

#[test]
fn example_scheduling_analysis_runs() {
    run_example("scheduling_analysis");
}

#[test]
fn example_clock_scalability_runs() {
    run_example("clock_scalability");
}

#[test]
fn example_verification_runs() {
    run_example("verification");
}

#[test]
fn example_batch_verification_runs() {
    run_example("batch_verification");
}

#[test]
fn example_product_verification_runs() {
    run_example("product_verification");
}

#[test]
fn example_ltl_properties_runs() {
    run_example("ltl_properties");
}

/// The CLI's batch subcommand must complete every job with all checks
/// passing (exit code 0) and print one report line per job.
#[test]
fn cli_batch_completes_every_job() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = std::process::Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--bin",
            "polychrony",
            "--",
            "batch",
            "--jobs",
            "4",
            "--workers",
            "2",
        ])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn the polychrony CLI");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("prodcons-case-study"), "{stdout}");
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
}

/// `analyze --stop-after` halts the staged pipeline at the named phase.
#[test]
fn cli_analyze_stop_after_schedule_prints_the_schedule_only() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = std::process::Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--bin",
            "polychrony",
            "--",
            "analyze",
            "--stop-after",
            "schedule",
        ])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn the polychrony CLI");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(stdout.contains("static schedule"), "{stdout}");
    assert!(stdout.contains("affine clocks"), "{stdout}");
    // Later phases did not run: no simulation or verification output.
    assert!(!stdout.contains("simulation"), "{stdout}");
}

/// `verify --product` must surface the joint verdict of the thread product
/// and exit 0 on the healthy case study.
#[test]
fn cli_verify_product_reports_the_joint_verdict() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = std::process::Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--bin",
            "polychrony",
            "--",
            "verify",
            "--product",
        ])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn the polychrony CLI");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("product of"), "{stdout}");
    assert!(stdout.contains("end-to-end-response"), "{stdout}");
    assert!(stdout.contains("no cross-thread violation"), "{stdout}");
}

/// The CLI's verification subcommand must find and replay the injected
/// deadline bug (exit code 0 in `--inject-deadline-bug` mode means the
/// counterexample was found *and* reproduced by the simulator).
#[test]
fn cli_verify_injected_bug_is_found_and_replayed() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = std::process::Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "--bin",
            "polychrony",
            "--",
            "verify",
            "--inject-deadline-bug",
        ])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn the polychrony CLI");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "CLI exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(stdout.contains("VIOLATED"), "{stdout}");
    assert!(stdout.contains("violation reproduced"), "{stdout}");
}
