//! API-equivalence and batch-determinism guarantees of the staged pipeline:
//! the `Session` chain and the `ToolChain` facade produce identical
//! `ToolChainReport`s, `BatchRunner` verdicts are deterministic and
//! order-stable regardless of the worker count, and out-of-range options
//! are rejected upfront instead of silently clamped.

use polychrony_core::aadl::case_study::PRODUCER_CONSUMER_AADL;
use polychrony_core::aadl::synth::{generate_instance, generate_source, SyntheticSpec};
use polychrony_core::{
    BatchJob, BatchRunner, CoreError, SessionOptions, ToolChain, ToolChainOptions,
};

/// Fast per-job options for the batch tests: one simulated hyper-period, no
/// waveform, sequential in-job verification.
fn quick_job_options() -> SessionOptions {
    SessionOptions::quick()
}

#[test]
fn staged_session_and_toolchain_facade_agree_on_the_case_study() {
    let chain = ToolChain::new();
    let monolithic = chain.run_case_study().unwrap();
    let staged = chain
        .session()
        .unwrap()
        .parse(PRODUCER_CONSUMER_AADL)
        .unwrap()
        .instantiate("sysProdCons.impl")
        .unwrap()
        .schedule()
        .unwrap()
        .translate()
        .unwrap()
        .analyze()
        .unwrap()
        .simulate()
        .unwrap()
        .verify()
        .unwrap()
        .into_report();
    assert_eq!(monolithic, staged);
    assert!(staged.all_checks_passed(), "{}", staged.summary());
}

#[test]
fn staged_session_and_toolchain_facade_agree_on_a_synthetic_model() {
    let options = ToolChainOptions {
        hyperperiods: 1,
        default_queue_size: 2,
        verify_workers: 1,
        ..ToolChainOptions::default()
    };
    let instance = generate_instance(&SyntheticSpec::new(6, 1)).unwrap();
    let chain = ToolChain::with_options(options);
    let monolithic = chain.run_instance(&instance).unwrap();
    let staged = chain
        .session()
        .unwrap()
        .load_instance(instance)
        .schedule()
        .unwrap()
        .translate()
        .unwrap()
        .analyze()
        .unwrap()
        .simulate()
        .unwrap()
        .verify()
        .unwrap()
        .into_report();
    assert_eq!(monolithic, staged);
}

#[test]
fn intermediate_artifacts_are_available_without_running_later_phases() {
    // Stop after scheduling: the instance, task set, schedule, baseline and
    // affine export are all inspectable with no translation, simulation or
    // verification having run.
    let scheduled = ToolChain::new()
        .session()
        .unwrap()
        .parse(PRODUCER_CONSUMER_AADL)
        .unwrap()
        .instantiate("sysProdCons.impl")
        .unwrap()
        .schedule()
        .unwrap();
    assert_eq!(scheduled.instance.root.path, "sysProdCons");
    assert_eq!(scheduled.schedule.hyperperiod, 24);
    assert!(scheduled.schedule.is_valid());
    assert!(scheduled.affine.clock_count() > 0);
    assert!(scheduled.affine.verified_constraints > 0);
    assert!(scheduled.baseline.response_times.schedulable);

    // One more phase: the flat SIGNAL model and the static analyses, still
    // without simulating.
    let analyzed = scheduled.translate().unwrap().analyze().unwrap();
    assert_eq!(analyzed.thread_units.len(), 4);
    assert!(analyzed.static_analysis.determinism.is_deterministic());
    assert!(analyzed.static_analysis.causality_cycle.is_none());
}

#[test]
fn a_reused_schedule_artifact_feeds_two_simulation_configurations() {
    let analyzed = ToolChain::new()
        .session()
        .unwrap()
        .parse(PRODUCER_CONSUMER_AADL)
        .unwrap()
        .instantiate("sysProdCons.impl")
        .unwrap()
        .schedule()
        .unwrap()
        .translate()
        .unwrap()
        .analyze()
        .unwrap();
    // The artifact is a value: clone once, simulate twice, no re-parse /
    // re-schedule / re-translate — and the runs agree.
    let one = analyzed.clone().simulate().unwrap();
    let other = analyzed.simulate().unwrap();
    assert_eq!(one.simulations.len(), other.simulations.len());
    for (thread, sim) in &one.simulations {
        assert_eq!(sim, &other.simulations[thread], "{thread}");
    }
}

#[test]
fn batch_reports_are_order_stable_and_worker_count_independent() {
    // >= 8 concurrent jobs: the case study plus seven synthetic workloads.
    let jobs: Vec<BatchJob> = (0..8)
        .map(|i| {
            let job = if i == 0 {
                BatchJob::case_study("case-study")
            } else {
                let threads = [4, 6, 8][(i - 1) % 3];
                BatchJob::synthetic(format!("job-{i}"), &SyntheticSpec::new(threads, 1))
            };
            job.with_options(quick_job_options())
        })
        .collect();

    let sequential = BatchRunner::new().with_workers(1).run(&jobs).unwrap();
    let parallel = BatchRunner::new().with_workers(4).run(&jobs).unwrap();

    assert_eq!(sequential.reports.len(), 8);
    assert_eq!(parallel.reports.len(), 8);
    assert!(sequential.all_passed(), "{}", sequential.summary());
    assert!(parallel.all_passed(), "{}", parallel.summary());

    for (seq, par) in sequential.reports.iter().zip(&parallel.reports) {
        // Order stability: reports come back in submission order.
        assert_eq!(seq.index, par.index);
        assert_eq!(seq.job, par.job);
        assert_eq!(seq.job, jobs[seq.index].name);
        // Determinism: the full report (schedule, verdicts, simulation
        // stats) is identical whatever the worker count; only the wall
        // clock differs.
        assert_eq!(seq.outcome, par.outcome, "job {}", seq.job);
    }
}

#[test]
fn batch_jobs_carry_their_own_options() {
    // Two jobs over the same source with different policies: shared-nothing
    // sessions mean each report reflects its own job's options.
    let mut rm = quick_job_options();
    rm.schedule.policy = polychrony_core::sched::SchedulingPolicy::RateMonotonic;
    let jobs = vec![
        BatchJob::new(
            "edf",
            generate_source(&SyntheticSpec::new(4, 1)),
            "top.impl",
        )
        .with_options(quick_job_options()),
        BatchJob::new("rm", generate_source(&SyntheticSpec::new(4, 1)), "top.impl")
            .with_options(rm),
    ];
    let results = BatchRunner::new().with_workers(2).run(&jobs).unwrap();
    let edf_report = results.reports[0].outcome.as_ref().unwrap();
    let rm_report = results.reports[1].outcome.as_ref().unwrap();
    assert_eq!(
        edf_report.schedule.policy,
        polychrony_core::sched::SchedulingPolicy::EarliestDeadlineFirst
    );
    assert_eq!(
        rm_report.schedule.policy,
        polychrony_core::sched::SchedulingPolicy::RateMonotonic
    );
}

#[test]
fn zero_workers_and_zero_hyperperiods_are_rejected() {
    // Facade: every zero-valued knob fails with InvalidOptions before any
    // phase runs (regression for the old silent `.max(1)` clamping).
    for chain in [
        ToolChain::new().with_hyperperiods(0),
        ToolChain::new().with_verify_workers(0),
        ToolChain::new().with_verify_hyperperiods(0),
    ] {
        let err = chain.run_case_study().unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidOptions(_)),
            "expected InvalidOptions, got {err}"
        );
    }

    // Runner: a zero-sized pool is a configuration error, not one worker.
    let err = BatchRunner::new().with_workers(0).run(&[]).unwrap_err();
    assert!(matches!(err, CoreError::InvalidOptions(_)), "{err}");

    // Demo entry point: no silent clamp either.
    let err = polychrony_core::deadline_overrun_demo(0).unwrap_err();
    assert!(matches!(err, CoreError::InvalidOptions(_)), "{err}");
}

#[test]
fn user_properties_flow_through_facade_session_and_batch() {
    use polychrony_core::PropertySpec;

    // Facade: the user property appears in the report's property list and
    // every thread gets a verdict for it.
    let report = ToolChain::new()
        .with_hyperperiods(1)
        .with_property("always (Alarm implies once Deadline)")
        .run_case_study()
        .unwrap();
    let verification = report.verification.as_ref().unwrap();
    assert!(
        verification
            .properties
            .contains(&"always (Alarm implies once Deadline)".to_string()),
        "{:?}",
        verification.properties
    );
    for outcome in verification.outcomes.values() {
        assert_eq!(outcome.verdicts.len(), 3, "built-ins + the user property");
        assert!(outcome.is_violation_free(), "{}", outcome.summary());
    }

    // A malformed expression is rejected upfront with the offending span.
    let err = ToolChain::new()
        .with_property("always (Deadline implies")
        .run_case_study()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidOptions(_)), "{err}");
    assert!(err.to_string().contains('^'), "{err}");

    // Batch: every job checks the property list riding in its options.
    let mut options = quick_job_options();
    options.verify.properties = vec![PropertySpec::new("never raised(*Alarm*)")];
    let jobs = vec![
        BatchJob::case_study("prodcons").with_options(options.clone()),
        BatchJob::synthetic("synthetic-4t", &SyntheticSpec::new(4, 1)).with_options(options),
    ];
    let results = BatchRunner::new().with_workers(2).run(&jobs).unwrap();
    assert!(results.all_passed(), "{}", results.summary());
    for report in &results.reports {
        let verification = report
            .outcome
            .as_ref()
            .unwrap()
            .verification
            .as_ref()
            .unwrap();
        assert!(
            verification
                .properties
                .contains(&"never raised(*Alarm*)".to_string()),
            "{:?}",
            verification.properties
        );
    }
}
