//! Cross-validation of the product verifier against a lockstep
//! co-simulation of the constituent threads, plus the injected
//! connection-latency regression on the paper's case study.
//!
//! The product checker and the lockstep co-simulation are two independent
//! execution paths over the same wired system: for randomly synthesised
//! 2–3 thread systems, every property verdict of the checker must agree
//! with brute-force joint simulation over the hyper-period, every product
//! counterexample must replay step-for-step in the co-simulation, and every
//! per-thread projection of a counterexample must execute in a plain
//! `polysim` simulator. Verdicts must be identical for any worker count.

use proptest::prelude::*;

use polychrony_core::aadl::instance::InstanceModel;
use polychrony_core::aadl::synth::{generate_instance, SyntheticSpec};
use polychrony_core::asme2ssme::{system_under_schedule, task_set_from_threads};
use polychrony_core::polysim::Simulator;
use polychrony_core::polyverify::{
    inject_connection_latency, InputSpace, LockstepCoSim, PortLink, ProductComponent,
    ProductSystem, ProductVerifier, Property, Verdict, Verifier, VerifyOptions,
};
use polychrony_core::sched::SchedulingPolicy;
use polychrony_core::signal_moc::trace::TraceStep;
use polychrony_core::{end_to_end_response_for, port_link_for};

/// Builds the wired thread product of an instance model under its EDF
/// schedule, together with the standard joint properties: alarm freedom,
/// deadlock freedom, and one end-to-end response per connection bounded by
/// the receiving thread's period.
fn build_product(instance: &InstanceModel) -> (ProductSystem, Vec<Property>, usize) {
    let (models, schedule, connections) =
        system_under_schedule(instance, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let tasks = task_set_from_threads(&instance.threads().unwrap()).unwrap();
    let components: Vec<ProductComponent> = models
        .iter()
        .map(|model| ProductComponent {
            name: model.thread_name.clone(),
            process: model.flat.clone(),
            schedule: model.timing_trace(&schedule, 1),
        })
        .collect();
    let links: Vec<PortLink> = connections.iter().map(port_link_for).collect();
    let mut properties = vec![
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    for link in &links {
        properties.push(end_to_end_response_for(link, &tasks, schedule.hyperperiod));
    }
    let horizon = schedule.hyperperiod as usize;
    (
        ProductSystem::new(components, links).unwrap(),
        properties,
        horizon,
    )
}

/// Brute force: the earliest violation instant of every property by joint
/// lockstep simulation over `ticks` instants (`None` when the property
/// holds on that window). This re-derives the verdicts without the
/// checker's state-space machinery: monitors are walked over the simulated
/// joint trace, alarms are searched textually, and a deadlock is the first
/// non-executable step.
fn earliest_by_lockstep(
    system: &ProductSystem,
    properties: &[Property],
    ticks: usize,
) -> Vec<Option<usize>> {
    let mut cosim = LockstepCoSim::new(system).unwrap();
    let (joint, failure) = cosim.run(ticks);
    properties
        .iter()
        .map(|property| match property {
            Property::NeverRaised(pattern) => joint.iter().position(|step| {
                step.iter()
                    .any(|(name, value)| pattern_matches(pattern, name) && value.as_bool())
            }),
            Property::DeadlockFree => failure.as_ref().map(|f| f.tick),
            Property::BoundedResponse { .. } | Property::EndToEndResponse { .. } => {
                let (trigger, response, bound) = property.monitor_spec().unwrap();
                let mut register = u32::MAX;
                let mut expired = None;
                for (t, step) in joint.iter().enumerate() {
                    let response_now = step.get(response).map(|v| v.as_bool()).unwrap_or(false);
                    if register != u32::MAX {
                        if response_now {
                            register = u32::MAX;
                        } else {
                            register -= 1;
                            if register == 0 {
                                expired = Some(t);
                                break;
                            }
                        }
                    }
                    let trigger_now = step.get(trigger).map(|v| v.as_bool()).unwrap_or(false);
                    if trigger_now && !response_now && register == u32::MAX {
                        if bound == 0 {
                            expired = Some(t);
                            break;
                        }
                        register = bound;
                    }
                }
                expired
            }
            // Not drawn by this suite's generators, but kept total: the
            // reference trace semantics re-derives the verdict without the
            // compiled monitor.
            Property::Ltl(ltl) => {
                let steps: Vec<TraceStep> = joint.iter().cloned().collect();
                polychrony_core::polyverify::ltl::first_violation(ltl.invariant(), &steps)
            }
        })
        .collect()
}

/// Local glob matcher mirroring the checker's `NeverRaised` patterns, so
/// the cross-validation does not reuse the checker's own matcher.
fn pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_prefix('*') {
        Some(rest) => match rest.strip_suffix('*') {
            Some(middle) => middle.is_empty() || name.contains(middle),
            None => name.ends_with(rest),
        },
        None => match pattern.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => name == pattern,
        },
    }
}

proptest! {
    /// For randomly synthesised 2–3 thread chained systems, the product
    /// checker and brute-force joint simulation agree on every verdict
    /// (and on the earliest violation instant), every counterexample
    /// replays in the lockstep co-simulation, and every per-thread
    /// projection executes in a plain simulator.
    #[test]
    fn product_checker_agrees_with_lockstep_cosimulation(
        threads in 2usize..4,
        ports in 1usize..3,
        shared in 0u8..2,
    ) {
        let instance = generate_instance(&SyntheticSpec {
            threads,
            ports_per_thread: ports,
            chained: true,
            shared_data: shared == 1,
        })
        .unwrap();
        let (system, properties, horizon) = build_product(&instance);
        let ticks = horizon * 2;
        let verifier = ProductVerifier::new(
            system.clone(),
            VerifyOptions::default().with_depth_bound(ticks),
        )
        .unwrap();
        let outcome = verifier.verify(&properties).unwrap();
        let expected = earliest_by_lockstep(&system, &properties, ticks);
        for (verdict, earliest) in outcome.verdicts.iter().zip(&expected) {
            let found = match &verdict.verdict {
                Verdict::Violated(cex) => Some(cex.violation_instant),
                _ => None,
            };
            prop_assert_eq!(
                found,
                *earliest,
                "verdict mismatch for {} (threads={} ports={}): checker {:?}, lockstep {:?}",
                verdict.property.name(),
                threads,
                ports,
                found,
                earliest
            );
            if let Verdict::Violated(cex) = &verdict.verdict {
                // Step-for-step lockstep replay of the counterexample.
                let replay = verifier.replay(cex).unwrap();
                prop_assert!(replay.reproduced, "{}", replay.detail);
                // Every per-thread projection executes in a plain simulator
                // (deadlock projections stop before the failing step).
                for component in verifier.system().components() {
                    let projected = verifier.project(cex, &component.name).unwrap();
                    prop_assert_eq!(projected.len(), cex.inputs.len());
                    if !matches!(verdict.property, Property::DeadlockFree) {
                        let mut simulator = Simulator::new(&component.process).unwrap();
                        prop_assert!(simulator.run(&projected).is_ok());
                    }
                }
            }
        }
    }

    /// Product verdicts are identical for every worker count.
    #[test]
    fn product_worker_count_is_invisible(threads in 2usize..4) {
        let instance = generate_instance(&SyntheticSpec::new(threads, 1)).unwrap();
        let (system, properties, horizon) = build_product(&instance);
        let reference = ProductVerifier::new(
            system.clone(),
            VerifyOptions::default().with_workers(1).with_depth_bound(horizon),
        )
        .unwrap()
        .verify(&properties)
        .unwrap();
        for workers in [2usize, 8] {
            let outcome = ProductVerifier::new(
                system.clone(),
                VerifyOptions::default()
                    .with_workers(workers)
                    .with_depth_bound(horizon),
            )
            .unwrap()
            .verify(&properties)
            .unwrap();
            prop_assert_eq!(&reference.verdicts, &outcome.verdicts, "workers={}", workers);
            prop_assert_eq!(reference.stats.states, outcome.stats.states);
            prop_assert_eq!(reference.stats.depth, outcome.stats.depth);
        }
    }
}

/// Builds the case-study product with an `extra` tick latency injected on
/// the producer's start-timer connection, plus the end-to-end response
/// property over that link.
fn case_study_with_link_fault(extra: usize) -> (ProductSystem, Property, usize) {
    let instance = polychrony_core::aadl::case_study::producer_consumer_instance().unwrap();
    let (models, schedule, connections) =
        system_under_schedule(&instance, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let components: Vec<ProductComponent> = models
        .iter()
        .map(|model| ProductComponent {
            name: model.thread_name.clone(),
            process: model.flat.clone(),
            schedule: model.timing_trace(&schedule, 1),
        })
        .collect();
    let mut links: Vec<PortLink> = connections.iter().map(port_link_for).collect();
    if extra > 0 {
        let fault = inject_connection_latency(&mut links, "cProdStartTimer", extra).unwrap();
        assert_eq!(fault.original_latency, 0);
    }
    let property = Property::EndToEndResponse {
        from: "cProdStartTimer_sent".into(),
        to: "cProdStartTimer_consumed".into(),
        bound: 8, // the producer timer's period in ticks
    };
    let horizon = schedule.hyperperiod as usize;
    (
        ProductSystem::new(components, links).unwrap(),
        property,
        horizon,
    )
}

/// Regression: the untampered case-study product satisfies the end-to-end
/// response over the full hyper-period.
#[test]
fn case_study_product_meets_the_end_to_end_response() {
    let (system, property, horizon) = case_study_with_link_fault(0);
    let verifier =
        ProductVerifier::new(system, VerifyOptions::default().with_depth_bound(horizon)).unwrap();
    let outcome = verifier.verify(&[property]).unwrap();
    assert!(outcome.is_violation_free(), "{}", outcome.summary());
    assert_eq!(outcome.stats.depth, 24);
}

/// Regression: a connection latency that pushes the sent event past the
/// receiver's input freeze is caught by `EndToEndResponse` on the product —
/// with a counterexample that replays deterministically — while per-thread
/// scope sees nothing wrong.
#[test]
fn injected_connection_latency_caught_by_product_scope_only() {
    let (system, property, horizon) = case_study_with_link_fault(8);
    let verifier = ProductVerifier::new(
        system.clone(),
        VerifyOptions::default().with_depth_bound(horizon),
    )
    .unwrap();
    let outcome = verifier
        .verify(&[property.clone(), Property::NeverRaised("*Alarm*".into())])
        .unwrap();
    let Verdict::Violated(cex) = &outcome.verdicts[0].verdict else {
        panic!("injected connection bug not found: {}", outcome.summary());
    };
    // The first emission (tick 1) misses the freeze at tick 8: the
    // 8-tick response window expires at tick 9.
    assert_eq!(cex.violation_instant, 9);
    // No per-thread alarm fires: the fault is purely cross-thread.
    assert!(
        outcome.verdicts[1].verdict.passed(),
        "{}",
        outcome.summary()
    );

    // The counterexample replays deterministically in the lockstep
    // co-simulation (twice, byte-identical traces).
    let first = verifier.replay(cex).unwrap();
    assert!(first.reproduced, "{}", first.detail);
    let second = verifier.replay(cex).unwrap();
    assert_eq!(
        first.trace, second.trace,
        "lockstep replay is deterministic"
    );

    // Every projection replays in a plain per-thread simulator.
    for component in verifier.system().components() {
        let projected = verifier.project(cex, &component.name).unwrap();
        let mut simulator = Simulator::new(&component.process).unwrap();
        assert!(simulator.run(&projected).is_ok(), "{}", component.name);
    }

    // Per-thread scope: the same properties verified thread by thread pass
    // everywhere — the end-to-end signals do not exist in any single
    // thread's namespace, and the delayed connection raises no alarm.
    let instance = polychrony_core::aadl::case_study::producer_consumer_instance().unwrap();
    let (models, schedule, _) =
        system_under_schedule(&instance, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    for model in &models {
        let inputs = model.timing_trace(&schedule, 1);
        let bound = inputs.len();
        let per_thread = Verifier::new(
            &model.flat,
            VerifyOptions::default().with_depth_bound(bound),
        )
        .unwrap()
        .verify(
            &InputSpace::Scheduled(inputs),
            &[property.clone(), Property::NeverRaised("*Alarm*".into())],
        )
        .unwrap();
        assert!(
            per_thread.is_violation_free(),
            "{}: {}",
            model.thread_name,
            per_thread.summary()
        );
    }
}

/// The joint counterexample projects back to exactly the wired per-thread
/// inputs (prefix of the wired trace), so the projection is not just
/// executable but step-for-step identical to what the product explored.
#[test]
fn projection_matches_the_wired_trace_prefix() {
    let (system, property, horizon) = case_study_with_link_fault(8);
    let verifier =
        ProductVerifier::new(system, VerifyOptions::default().with_depth_bound(horizon)).unwrap();
    let outcome = verifier.verify(&[property]).unwrap();
    let (_, cex) = outcome.violations().next().expect("violation expected");
    for component in verifier.system().components() {
        let projected = verifier.project(cex, &component.name).unwrap();
        let wired = verifier.system().wired_trace(&component.name).unwrap();
        for (t, step) in projected.iter().enumerate() {
            let expected: &TraceStep = wired.step(t % verifier.system().horizon()).unwrap();
            assert_eq!(step, expected, "{} tick {t}", component.name);
        }
    }
}
