//! Cache equivalence: a report served through the content-addressed
//! artifact cache must be bit-identical to an uncached run — same
//! verdicts, same counterexample depths, same state counts — for every
//! combination of verification options in a sweep over one model.
//!
//! `ToolChainReport` equality deliberately ignores wall-clock timings
//! (`RunRecord` compares its phase-name sequence), so `assert_eq!` on the
//! full report is exactly the "identical modulo timings" check.

use polychrony_core::polyverify::Domain;
use polychrony_core::{
    job_content_hash, ArtifactCache, BatchJob, CacheOutcome, PropertySpec, SessionOptions,
    VerificationScope,
};

/// The 8-variant sweep from the acceptance criteria: same source, options
/// differing only in the verification group.
fn sweep_options() -> Vec<SessionOptions> {
    let mut sweep = Vec::new();
    for workers in [1usize, 2] {
        for hyperperiods in [1u64, 2] {
            for with_property in [false, true] {
                let mut options = SessionOptions::quick();
                options.verify.workers = workers;
                options.verify.hyperperiods = hyperperiods;
                if with_property {
                    options.verify.properties = vec![PropertySpec::new("never raised(*Alarm*)")];
                }
                sweep.push(options);
            }
        }
    }
    sweep
}

#[test]
fn warm_cache_reports_are_bit_identical_to_cold_runs_across_a_sweep() {
    let cache = ArtifactCache::new();
    // Prime the cache once so every sweep variant runs warm.
    let (_, outcome) = BatchJob::case_study("prime")
        .with_options(SessionOptions::quick())
        .run_cached(&cache)
        .expect("prime run");
    assert_eq!(outcome, CacheOutcome::Miss);

    for (i, options) in sweep_options().into_iter().enumerate() {
        let job = BatchJob::case_study(format!("variant-{i}")).with_options(options);
        let cold = job.run().expect("cold run");
        let (warm, outcome) = job.run_cached(&cache).expect("warm run");
        assert_eq!(
            outcome,
            CacheOutcome::SimulatedHit,
            "variant {i}: verify-only differences must reuse the simulated artifact"
        );
        assert_eq!(
            cold.verification, warm.verification,
            "variant {i}: verification reports diverge between cold and warm"
        );
        assert_eq!(cold, warm, "variant {i}: full reports diverge");
    }
}

#[test]
fn warm_product_scope_reports_match_cold_runs() {
    let cache = ArtifactCache::new();
    let mut options = SessionOptions::quick();
    options.verify.scope = VerificationScope::Product;
    let job = BatchJob::case_study("product").with_options(options);

    let cold = job.run().expect("cold product run");
    let (_, first) = job.run_cached(&cache).expect("first cached run");
    assert_eq!(first, CacheOutcome::Miss);
    let (warm, second) = job.run_cached(&cache).expect("second cached run");
    assert_eq!(second, CacheOutcome::SimulatedHit);

    let cold_product = cold
        .verification
        .as_ref()
        .and_then(|v| v.product.as_ref())
        .expect("cold product report");
    let warm_product = warm
        .verification
        .as_ref()
        .and_then(|v| v.product.as_ref())
        .expect("warm product report");
    assert_eq!(cold_product, warm_product);
    assert_eq!(cold, warm);
}

#[test]
fn the_content_hash_separates_verification_domains() {
    // Regression: the job content hash (the daemon's cache key and the
    // batch runner's dedupe key) must include the verification domain and
    // the counter-projection switch — otherwise an interval-domain job
    // could be served a concrete-domain report.
    let concrete = BatchJob::case_study("hash").with_options(SessionOptions::quick());
    let mut interval_options = SessionOptions::quick();
    interval_options.verify.domain = Domain::Interval;
    let interval = BatchJob::case_study("hash").with_options(interval_options.clone());
    assert_ne!(
        job_content_hash(&concrete),
        job_content_hash(&interval),
        "the verify domain must be part of the content hash"
    );
    let mut projected_options = interval_options;
    projected_options.verify.project_counters = true;
    let projected = BatchJob::case_study("hash").with_options(projected_options);
    assert_ne!(
        job_content_hash(&interval),
        job_content_hash(&projected),
        "counter projection must be part of the content hash"
    );
}

#[test]
fn warm_interval_domain_runs_match_their_own_cold_runs() {
    // Prime the cache with a concrete-domain run, then run the same model
    // under the interval domain warm: the frontend/simulated artifacts are
    // legitimately shared (the domain only affects verification), but the
    // verification must be recomputed under the interval options and match
    // an uncached interval run exactly.
    let cache = ArtifactCache::new();
    let (_, outcome) = BatchJob::case_study("domain-prime")
        .with_options(SessionOptions::quick())
        .run_cached(&cache)
        .expect("concrete prime run");
    assert_eq!(outcome, CacheOutcome::Miss);

    for project in [false, true] {
        let mut options = SessionOptions::quick();
        options.verify.domain = Domain::Interval;
        options.verify.project_counters = project;
        let job = BatchJob::case_study("domain-warm").with_options(options);
        let cold = job.run().expect("cold interval run");
        let (warm, outcome) = job.run_cached(&cache).expect("warm interval run");
        assert_eq!(
            outcome,
            CacheOutcome::SimulatedHit,
            "domain changes must not invalidate the simulated artifact"
        );
        assert_eq!(
            cold, warm,
            "warm interval run (project_counters={project}) diverged from its cold run"
        );
    }
}

#[test]
fn changed_simulate_options_fall_back_to_the_frontend_artifact() {
    let cache = ArtifactCache::new();
    let (_, first) = BatchJob::case_study("base")
        .with_options(SessionOptions::quick())
        .run_cached(&cache)
        .expect("base run");
    assert_eq!(first, CacheOutcome::Miss);

    let mut options = SessionOptions::quick();
    options.simulate.hyperperiods = 2;
    let job = BatchJob::case_study("resim").with_options(options);
    let cold = job.run().expect("cold run");
    let (warm, outcome) = job.run_cached(&cache).expect("warm run");
    // Simulation differs, so only parse-through-analyze is reused — and
    // the report must still be identical to an uncached run.
    assert_eq!(outcome, CacheOutcome::FrontendHit);
    assert_eq!(cold, warm);
}
