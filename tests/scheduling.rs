//! E7 / E11 — thread-level scheduler synthesis: hyper-period 24 ms for the
//! case study, valid static non-preemptive schedules under EDF and RM,
//! affine-clock export, and comparison with the preemptive baselines.

use polychrony_core::aadl::case_study::producer_consumer_instance;
use polychrony_core::asme2ssme::{schedule_to_timing_trace, task_set_from_threads};
use polychrony_core::sched::workload::random_task_set;
use polychrony_core::sched::{
    export_affine_clocks, preemptive_simulation, rm_response_time_analysis, BaselineReport,
    SchedulingPolicy, StaticSchedule,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn case_study_tasks() -> polychrony_core::sched::TaskSet {
    let instance = producer_consumer_instance().unwrap();
    task_set_from_threads(&instance.threads().unwrap()).unwrap()
}

#[test]
fn hyperperiod_is_24_ms() {
    assert_eq!(case_study_tasks().hyperperiod(), Some(24));
}

#[test]
fn edf_and_rm_both_produce_valid_schedules() {
    let tasks = case_study_tasks();
    for policy in [
        SchedulingPolicy::EarliestDeadlineFirst,
        SchedulingPolicy::RateMonotonic,
    ] {
        let schedule = StaticSchedule::synthesize(&tasks, policy).unwrap();
        assert!(schedule.is_valid());
        assert_eq!(schedule.hyperperiod, 24);
        assert_eq!(schedule.entries.len(), 16, "6+4+3+3 jobs per hyper-period");
        assert_eq!(schedule.busy_time(), 20);
        // Every dispatch / freeze / start / complete event is placed within
        // the hyper-period and ordered consistently.
        for entry in &schedule.entries {
            assert!(entry.input_freeze <= entry.start);
            assert!(entry.start < entry.completion);
            assert!(entry.completion <= entry.output_release);
            assert!(entry.completion <= entry.deadline);
        }
    }
}

#[test]
fn affine_export_verifies_synchronizability() {
    let tasks = case_study_tasks();
    let schedule =
        StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let affine = export_affine_clocks(&tasks, &schedule).unwrap();
    assert_eq!(affine.clock_count(), 4 + 16 * 4);
    assert!(affine.verified_constraints >= 16);
    // Dispatch clocks are exactly the paper's affine relations.
    let producer = affine.clocks.relation("thProducer_dispatch").unwrap();
    assert_eq!(producer.period(), 4);
    assert_eq!(producer.phase(), 0);
    // The hyper-period of the exported system covers all dispatch clocks.
    assert_eq!(affine.clocks.hyperperiod(), Some(24));
}

#[test]
fn schedule_drives_a_consistent_timing_trace() {
    let tasks = case_study_tasks();
    let schedule =
        StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let trace = schedule_to_timing_trace(&schedule, "thConsumer", "", &[], &[], 1);
    let dispatches: Vec<usize> = (0..trace.len())
        .filter(|&t| {
            trace
                .value(t, "Dispatch")
                .map(|v| v.as_bool())
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(dispatches, vec![0, 6, 12, 18]);
    let resumes = (0..trace.len())
        .filter(|&t| {
            trace
                .value(t, "Resume")
                .map(|v| v.as_bool())
                .unwrap_or(false)
        })
        .count();
    assert_eq!(resumes, 4);
}

#[test]
fn baseline_agrees_with_static_scheduler_on_the_case_study() {
    let tasks = case_study_tasks();
    let report = BaselineReport::analyze(&tasks);
    assert!(report.response_times.schedulable);
    assert!(report.edf_pass);
    assert!(report.rm_simulation.schedulable);
    assert!(report.edf_simulation.schedulable);
    assert!(StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).is_ok());
}

#[test]
fn preemptive_baseline_accepts_more_high_utilization_sets_than_non_preemptive() {
    // The cross-over the paper's choice trades away: static non-preemptive
    // scheduling rejects some task sets a preemptive scheduler accepts, in
    // exchange for predictability and direct affine-clock export.
    let mut rng = StdRng::seed_from_u64(20130318);
    let mut static_accepts = 0usize;
    let mut preemptive_accepts = 0usize;
    let trials = 60;
    for _ in 0..trials {
        let ts = random_task_set(&mut rng, 5, 0.9).unwrap();
        if StaticSchedule::synthesize(&ts, SchedulingPolicy::EarliestDeadlineFirst).is_ok() {
            static_accepts += 1;
        }
        if preemptive_simulation(&ts, SchedulingPolicy::EarliestDeadlineFirst).schedulable {
            preemptive_accepts += 1;
        }
    }
    assert!(
        preemptive_accepts >= static_accepts,
        "preemptive EDF ({preemptive_accepts}) should accept at least as many sets as non-preemptive ({static_accepts})"
    );
    assert!(
        static_accepts > 0,
        "the non-preemptive scheduler should accept some sets"
    );
}

#[test]
fn response_time_analysis_is_consistent_with_simulation() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..30 {
        let ts = random_task_set(&mut rng, 4, 0.65).unwrap();
        let rta = rm_response_time_analysis(&ts);
        let sim = preemptive_simulation(&ts, SchedulingPolicy::RateMonotonic);
        // RTA is exact for synchronous releases: if it says schedulable, the
        // simulation over the hyper-period must not miss.
        if rta.schedulable {
            assert!(
                sim.schedulable,
                "RTA said schedulable but simulation missed: {ts}"
            );
        }
    }
}
