//! E8 — determinism identification: the `thProducer` behaviour automaton is
//! non-deterministic without priorities on its transitions and deterministic
//! with them, as reported by the clock calculus in Section V-C — plus
//! engine-level determinism: product verification returns identical
//! verdicts and counterexample depths for any worker count.

use polychrony_core::signal_moc::automaton::Automaton;
use polychrony_core::signal_moc::clockcalc::ClockCalculus;
use polychrony_core::signal_moc::eval::Evaluator;
use polychrony_core::signal_moc::trace::Trace;
use polychrony_core::signal_moc::value::Value;

/// The thProducer behaviour: waiting → producing on start; producing →
/// waiting on done or on the timer's timeout.
fn producer_automaton(with_priorities: bool) -> Automaton {
    let mut a = Automaton::new("thProducer_behavior", "waiting");
    a.add_transition("waiting", "producing", "pProdStart");
    a.add_prioritized_transition(
        "producing",
        "waiting",
        "pProdDone",
        with_priorities.then_some(0),
    );
    a.add_prioritized_transition(
        "producing",
        "waiting",
        "pTimeOut",
        with_priorities.then_some(1),
    );
    a
}

#[test]
fn automaton_without_priorities_is_flagged() {
    let automaton = producer_automaton(false);
    assert!(!automaton.is_deterministic());
    let conflicts = automaton.conflicts();
    assert_eq!(conflicts.len(), 1);
    assert_eq!(conflicts[0].state, "producing");
    let guards = [
        conflicts[0].guards.0.as_str(),
        conflicts[0].guards.1.as_str(),
    ];
    assert!(guards.contains(&"pProdDone"));
    assert!(guards.contains(&"pTimeOut"));
}

#[test]
fn priorities_restore_determinism() {
    let automaton = producer_automaton(true);
    assert!(automaton.is_deterministic());
    let mut fixed = producer_automaton(false);
    fixed.assign_default_priorities();
    assert!(fixed.is_deterministic());
}

#[test]
fn compiled_automaton_is_analyzable_and_causality_free() {
    // The compiled automaton encodes priorities by guard strengthening; the
    // conservative exclusivity prover of the clock calculus cannot always
    // discharge those guards syntactically, but the process must analyse
    // cleanly otherwise: a single synchronisation class for the state
    // signals and no causality cycle.
    let mut automaton = producer_automaton(true);
    automaton.assign_default_priorities();
    let process = automaton.to_process().unwrap();
    let calculus = ClockCalculus::analyze(&process).unwrap();
    assert!(calculus.are_synchronous("state", "tick"));
    polychrony_core::signal_moc::analysis::check_deadlock(&process).unwrap();
}

#[test]
fn simultaneous_done_and_timeout_resolved_by_priority() {
    // Both guards true at the same instant: the higher-priority transition
    // (pProdDone) decides, and execution is still well-defined.
    let mut automaton = producer_automaton(true);
    automaton.assign_default_priorities();
    let process = automaton.to_process().unwrap();
    let mut inputs = Trace::new();
    for t in 0..3usize {
        inputs.set(t, "tick", Value::Event);
        inputs.set(t, "pProdStart", Value::Bool(t == 0));
        inputs.set(t, "pProdDone", Value::Bool(t == 1));
        inputs.set(t, "pTimeOut", Value::Bool(t == 1));
    }
    let out = Evaluator::new(&process).unwrap().run(&inputs).unwrap();
    let states: Vec<i64> = out
        .flow_of("state")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(states, vec![1, 0, 0]);
}

#[test]
fn product_verdicts_and_counterexample_depth_are_worker_count_independent() {
    use polychrony_core::connection_latency_demo;
    use polychrony_core::polyverify::Verdict;

    // The injected connection-latency product has both a violated property
    // (the end-to-end response) and a passing one (alarm freedom): verdicts,
    // counterexample depth and exploration stats must be identical across
    // workers = 1, 2, 8 — twice each, to catch nondeterminism between runs.
    let demo = connection_latency_demo(8).unwrap();
    let (reference, _) = demo.verify_and_replay(1).unwrap();
    let Verdict::Violated(reference_cex) = &reference.verdicts[0].verdict else {
        panic!("expected a violation: {}", reference.summary());
    };
    for workers in [1usize, 2, 8] {
        for _ in 0..2 {
            let (outcome, replay) = demo.verify_and_replay(workers).unwrap();
            assert_eq!(reference.verdicts, outcome.verdicts, "workers={workers}");
            assert_eq!(reference.stats.states, outcome.stats.states);
            assert_eq!(reference.stats.depth, outcome.stats.depth);
            let Verdict::Violated(cex) = &outcome.verdicts[0].verdict else {
                unreachable!("verdicts are equal");
            };
            assert_eq!(
                cex.violation_instant, reference_cex.violation_instant,
                "counterexample depth must not depend on workers={workers}"
            );
            assert_eq!(cex.inputs, reference_cex.inputs, "byte-identical traces");
            assert!(replay.expect("violation carries a replay").reproduced);
        }
    }
}

#[test]
fn clock_calculus_flags_unguarded_shared_definitions() {
    use polychrony_core::signal_moc::builder::ProcessBuilder;
    use polychrony_core::signal_moc::expr::Expr;
    use polychrony_core::signal_moc::value::ValueType;

    // A direct reconstruction of the paper's statement: without correct
    // priority (exclusivity) information, the definition is non-deterministic.
    let mut b = ProcessBuilder::new("unguarded");
    b.input("done", ValueType::Integer);
    b.input("timeout", ValueType::Integer);
    b.output("next_state", ValueType::Integer);
    b.define_partial("next_state", Expr::var("done"));
    b.define_partial("next_state", Expr::var("timeout"));
    let process = b.build().unwrap();
    let calculus = ClockCalculus::analyze(&process).unwrap();
    match calculus.determinism() {
        polychrony_core::signal_moc::clockcalc::DeterminismVerdict::NonDeterministic(reasons) => {
            assert!(!reasons.is_empty());
        }
        other => panic!("expected non-determinism, got {other:?}"),
    }
}
