//! E6 — shared data (Fig. 6): the `Queue` data component becomes a single
//! `fifo_reset` instance accessed by producer and consumer at mutually
//! exclusive instants, with partial definitions merged consistently.

use polychrony_core::aadl::case_study::producer_consumer_instance;
use polychrony_core::asme2ssme::{shared_data_process, task_set_from_threads, Translator};
use polychrony_core::polysim::Simulator;
use polychrony_core::sched::{export_affine_clocks, SchedulingPolicy, StaticSchedule};
use polychrony_core::signal_moc::builder::ProcessBuilder;
use polychrony_core::signal_moc::clockcalc::ClockCalculus;
use polychrony_core::signal_moc::expr::Expr;
use polychrony_core::signal_moc::trace::Trace;
use polychrony_core::signal_moc::value::{Value, ValueType};

#[test]
fn queue_translates_to_a_single_shared_data_instance() {
    let instance = producer_consumer_instance().unwrap();
    let translated = Translator::new().translate(&instance).unwrap();
    // Traceability: the Queue data maps to the shared_data library process.
    assert_eq!(
        translated.signal_process_for("sysProdCons.prProdCons.Queue"),
        Some("aadl2signal_shared_data")
    );
    // The enclosing process records which threads access it.
    let process_name = translated
        .signal_process_for("sysProdCons.prProdCons")
        .unwrap();
    let process = translated.model.process(process_name).unwrap();
    let accessors = &process.annotations["aadl::shared_data::Queue"];
    assert!(accessors.contains("thProducer"));
    assert!(accessors.contains("thConsumer"));
}

#[test]
fn scheduled_accesses_are_mutually_exclusive() {
    // The paper requires "mutual exclusion access clocks … to assure only
    // one access at a time"; the non-preemptive schedule guarantees it and
    // the affine export verifies it.
    let instance = producer_consumer_instance().unwrap();
    let tasks = task_set_from_threads(&instance.threads().unwrap()).unwrap();
    let schedule =
        StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let affine = export_affine_clocks(&tasks, &schedule).unwrap();
    assert!(affine
        .accesses_are_exclusive("thProducer", "thConsumer")
        .unwrap());
}

#[test]
fn producer_consumer_exchange_through_the_fifo() {
    // Drive the shared_data process with the producer writing every 4 ticks
    // and the consumer reading every 6 ticks over one hyper-period.
    let process = shared_data_process();
    let mut inputs = Trace::new();
    for t in 0..24usize {
        inputs.set(t, "write", Value::Bool(t % 4 == 1)); // producer just after dispatch
        inputs.set(t, "read", Value::Bool(t % 6 == 3)); // consumer mid-frame
        inputs.set(t, "reset", Value::Bool(false));
    }
    let mut sim = Simulator::new(&process).unwrap();
    let out = sim.run(&inputs).unwrap();
    let depths: Vec<i64> = out
        .flow_of("depth")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    // 6 writes and 4 reads over the hyper-period: the queue ends 2 deep.
    assert_eq!(depths.last(), Some(&2));
    // Depth never goes negative.
    assert!(depths.iter().all(|&d| d >= 0));
    // Every read observed at least one item (the producer is faster).
    let reads: Vec<i64> = out
        .flow_of("last_read")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert!(reads.iter().skip(3).all(|&d| d >= 1));
}

#[test]
fn partial_definitions_at_exclusive_clocks_are_deterministic() {
    // The Fig. 6 pattern: the shared variable receives partial definitions
    // from two writers; with a declared exclusion on the write clocks the
    // clock calculus proves determinism, without it the overlap is flagged.
    let build = |with_exclusion: bool| {
        let mut b = ProcessBuilder::new("queue_writers");
        b.input("producer_write", ValueType::Integer);
        b.input("consumer_reset", ValueType::Integer);
        b.output("queue_w", ValueType::Integer);
        b.define_partial("queue_w", Expr::var("producer_write"));
        b.define_partial("queue_w", Expr::var("consumer_reset"));
        if with_exclusion {
            b.exclude(&["producer_write", "consumer_reset"]);
        }
        b.build().unwrap()
    };
    let without = ClockCalculus::analyze(&build(false)).unwrap();
    assert!(!without.determinism().is_deterministic());
    let with = ClockCalculus::analyze(&build(true)).unwrap();
    assert!(with.determinism().is_deterministic());
}
