//! E2 — the AADL input-compute-output execution timing model (Fig. 2):
//! inputs are frozen at Input Time, outputs released at Output Time, and
//! values arriving mid-frame wait for the next frame.

use polychrony_core::aadl::case_study::producer_consumer_instance;
use polychrony_core::asme2ssme::{in_event_port_process, thread_to_process};
use polychrony_core::polysim::Simulator;
use polychrony_core::signal_moc::process::ProcessModel;
use polychrony_core::signal_moc::trace::Trace;
use polychrony_core::signal_moc::value::Value;

/// The Fig. 2 scenario: two values arrive after the first Input Time and are
/// not processed until the next dispatch.
#[test]
fn values_arriving_after_input_time_wait_for_the_next_dispatch() {
    let port = in_event_port_process(8);
    let mut inputs = Trace::new();
    // Frame 1 (ticks 0..4): one arrival before the freeze, two after.
    // Frame 2 (ticks 4..8): no arrivals.
    let arrivals = [true, false, true, true, false, false, false, false];
    for (t, &a) in arrivals.iter().enumerate() {
        inputs.set(t, "incoming", Value::Bool(a));
        inputs.set(t, "freeze", Value::Bool(t % 4 == 0));
    }
    let mut sim = Simulator::new(&port).unwrap();
    let out = sim.run(&inputs).unwrap();
    let frozen: Vec<i64> = out
        .flow_of("frozen_count")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    // Frozen view during frame 1 stays at 1; the late arrivals only become
    // visible at the tick-4 Input Time.
    assert_eq!(frozen[0..4], [1, 1, 1, 1]);
    assert_eq!(frozen[4..8], [2, 2, 2, 2]);
}

#[test]
fn complete_is_emitted_at_resume_and_alarm_on_missed_deadline() {
    let instance = producer_consumer_instance().unwrap();
    let producer = instance
        .threads()
        .unwrap()
        .into_iter()
        .find(|t| t.name == "thProducer")
        .unwrap();
    let translation = thread_to_process("thProducer", &producer);
    let mut model = ProcessModel::new("thProducer");
    model.add(translation.process.clone());
    model.add(polychrony_core::asme2ssme::in_event_port_process(1));
    model.add(polychrony_core::asme2ssme::out_event_port_process());
    let flat = model.flatten().unwrap();

    // Frame A: dispatch at t0, completion (Resume) at t1, deadline at t3:
    // no alarm. Frame B: dispatch at t4, no completion, deadline at t7:
    // alarm fires at t7.
    let mut inputs = Trace::new();
    for t in 0..8usize {
        inputs.set(t, "Dispatch", Value::Bool(t == 0 || t == 4));
        inputs.set(t, "Resume", Value::Bool(t == 1));
        inputs.set(t, "Deadline", Value::Bool(t == 3 || t == 7));
        for port in &translation.in_ports {
            inputs.set(t, format!("{port}_in"), Value::Bool(false));
            inputs.set(
                t,
                format!("{port}_frozen_time"),
                Value::Bool(t == 0 || t == 4),
            );
        }
        for port in &translation.out_ports {
            inputs.set(t, format!("{port}_output_time"), Value::Bool(t == 1));
        }
    }
    let mut sim = Simulator::new(&flat).unwrap();
    let out = sim.run(&inputs).unwrap();
    let completes: Vec<bool> = out
        .flow_of("Complete")
        .iter()
        .map(|v| v.as_bool())
        .collect();
    let alarms: Vec<bool> = out.flow_of("Alarm").iter().map(|v| v.as_bool()).collect();
    assert_eq!(completes.iter().filter(|&&c| c).count(), 1);
    assert!(completes[1]);
    assert!(!alarms[3], "frame A completed before its deadline");
    assert!(alarms[7], "frame B missed its deadline");
    assert_eq!(sim.report().alarm_instants, 1);
}

#[test]
fn output_port_releases_at_output_time_only() {
    let instance = producer_consumer_instance().unwrap();
    let producer = instance
        .threads()
        .unwrap()
        .into_iter()
        .find(|t| t.name == "thProducer")
        .unwrap();
    let translation = thread_to_process("thProducer", &producer);
    let mut model = ProcessModel::new("thProducer");
    model.add(translation.process.clone());
    model.add(polychrony_core::asme2ssme::in_event_port_process(1));
    model.add(polychrony_core::asme2ssme::out_event_port_process());
    let flat = model.flatten().unwrap();

    let mut inputs = Trace::new();
    for t in 0..4usize {
        inputs.set(t, "Dispatch", Value::Bool(t == 0));
        inputs.set(t, "Resume", Value::Bool(t == 1));
        inputs.set(t, "Deadline", Value::Bool(false));
        for port in &translation.in_ports {
            inputs.set(t, format!("{port}_in"), Value::Bool(false));
            inputs.set(t, format!("{port}_frozen_time"), Value::Bool(t == 0));
        }
        for port in &translation.out_ports {
            // Output Time at completion (t1).
            inputs.set(t, format!("{port}_output_time"), Value::Bool(t == 1));
        }
    }
    let out = Simulator::new(&flat).unwrap().run(&inputs).unwrap();
    // The dispatch at t0 produced one event on each out port; it is released
    // only at t1 (the Output Time), not at t0.
    for port in &translation.out_ports {
        let sent: Vec<i64> = out
            .flow_of(&format!("{port}_out"))
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(sent[0], 0, "{port} released before Output Time");
        assert_eq!(sent[1], 1, "{port} not released at Output Time");
    }
}
