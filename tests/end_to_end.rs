//! E10 and the whole pipeline: the tool chain runs the case study and
//! synthetic models end to end — parse, instantiate, schedule, export,
//! translate, analyse, simulate — and the VCD co-simulation output is
//! well-formed.

use polychrony_core::aadl::synth::{generate_instance, SyntheticSpec};
use polychrony_core::sched::SchedulingPolicy;
use polychrony_core::{ToolChain, ToolChainOptions};

#[test]
fn case_study_end_to_end_all_checks_pass() {
    let report = ToolChain::new().run_case_study().unwrap();
    assert_eq!(report.root, "sysProdCons");
    assert_eq!(report.component_count, 10);
    assert_eq!(report.schedule.hyperperiod, 24);
    assert!(report.schedule.is_valid());
    assert!(report.static_analysis.causality_cycle.is_none());
    assert!(report.static_analysis.determinism.is_deterministic());
    assert_eq!(report.simulations.len(), 4);
    for (thread, sim) in &report.simulations {
        assert!(sim.is_alarm_free(), "alarm fired for {thread}");
        assert_eq!(
            sim.instants,
            24 * 4,
            "4 hyper-periods simulated for {thread}"
        );
    }
    assert!(report.all_checks_passed());
    // Baseline agrees.
    assert!(report.baseline.response_times.schedulable);
}

#[test]
fn vcd_output_is_wellformed() {
    let report = ToolChain::new()
        .with_hyperperiods(2)
        .run_case_study()
        .unwrap();
    let vcd = &report.vcd;
    assert!(vcd.starts_with("$date"));
    assert!(vcd.contains("$timescale 1000000 ns $end"));
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.contains("$dumpvars"));
    // One timestamp per simulated instant plus the closing one.
    let timestamps = vcd.lines().filter(|l| l.starts_with('#')).count();
    assert!(
        timestamps >= 48,
        "expected at least 48 timestamps, got {timestamps}"
    );
    // Dispatch and Alarm signals are visible in the waveform.
    assert!(vcd.contains("Dispatch"));
    assert!(vcd.contains("Alarm"));
}

#[test]
fn rm_and_edf_pipelines_agree_on_the_case_study() {
    let edf = ToolChain::new()
        .with_policy(SchedulingPolicy::EarliestDeadlineFirst)
        .with_hyperperiods(1)
        .run_case_study()
        .unwrap();
    let rm = ToolChain::new()
        .with_policy(SchedulingPolicy::RateMonotonic)
        .with_hyperperiods(1)
        .run_case_study()
        .unwrap();
    assert_eq!(edf.schedule.hyperperiod, rm.schedule.hyperperiod);
    assert_eq!(edf.schedule.entries.len(), rm.schedule.entries.len());
    assert_eq!(edf.schedule.busy_time(), rm.schedule.busy_time());
    assert!(edf.all_checks_passed() && rm.all_checks_passed());
}

#[test]
fn synthetic_models_scale_through_the_whole_pipeline() {
    // 4 and 8 threads keep the synthetic harmonic task set under full
    // utilisation so a single-processor static schedule exists; larger
    // models are exercised (translation + clock calculus only) in the
    // scalability benchmark.
    for threads in [4usize, 8] {
        let instance = generate_instance(&SyntheticSpec::new(threads, 1)).unwrap();
        let report = ToolChain::with_options(ToolChainOptions {
            policy: SchedulingPolicy::EarliestDeadlineFirst,
            hyperperiods: 1,
            default_queue_size: 2,
            ..ToolChainOptions::default()
        })
        .run_instance(&instance)
        .unwrap();
        assert_eq!(report.simulations.len(), threads);
        assert!(report.static_analysis.clock_count >= threads);
        assert!(report.schedule.is_valid());
    }
}

#[test]
fn malformed_models_fail_with_a_tagged_error() {
    let err = ToolChain::new()
        .run_source("package p\npublic\nend p;", "missing.impl")
        .unwrap_err();
    assert!(matches!(err, polychrony_core::CoreError::Aadl(_)));
    assert!(err.to_string().contains("aadl front end"));
}
