//! CLI contract of `polychrony verify --property`: user-supplied past-time
//! LTL expressions get per-property verdicts, and malformed expressions
//! fail with a clean span-annotated usage error (exit 1, no `Debug`
//! panic).

use std::process::Command;

fn run_cli(args: &[&str]) -> (Option<i32>, String, String) {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--bin", "polychrony", "--"])
        .args(args)
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn the polychrony CLI");
    (
        output.status.code(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// A malformed property expression is a usage error: exit code 1, the
/// offending span rendered with a caret, and no `Debug`-formatted panic.
#[test]
fn cli_malformed_property_is_a_clean_usage_error() {
    let (code, stdout, stderr) = run_cli(&["verify", "--property", "always (Deadline implies"]);
    assert_eq!(
        code,
        Some(1),
        "--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(stderr.contains("invalid --property expression"), "{stderr}");
    assert!(
        stderr.contains("expected a formula"),
        "the parser's message is surfaced: {stderr}"
    );
    assert!(stderr.contains('^'), "the span caret is rendered: {stderr}");
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "no Debug-format panic: {stderr}"
    );
}

/// A well-formed user property rides through the whole pipeline and gets
/// its own verdict line, rendered by its source expression.
#[test]
fn cli_user_property_gets_a_per_property_verdict() {
    let (code, stdout, stderr) = run_cli(&[
        "verify",
        "--property",
        "never raised(*Alarm*)",
        "--property",
        "always (Alarm implies once Deadline)",
    ]);
    assert_eq!(
        code,
        Some(0),
        "--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(stdout.contains("never raised(*Alarm*)"), "{stdout}");
    assert!(
        stdout.contains("always (Alarm implies once Deadline)"),
        "{stdout}"
    );
    assert!(stdout.contains("violation-free: yes"), "{stdout}");
}

/// The injected deadline overrun is caught — and its counterexample
/// replayed in polysim — by a user-supplied property expression alone.
#[test]
fn cli_injected_bug_caught_by_user_property_alone() {
    let (code, stdout, stderr) = run_cli(&[
        "verify",
        "--inject-deadline-bug",
        "--property",
        "never raised(*Alarm*)",
    ]);
    assert_eq!(
        code,
        Some(0),
        "--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(stdout.contains("VIOLATED"), "{stdout}");
    assert!(stdout.contains("violation reproduced"), "{stdout}");
}
