//! Executable companion of `docs/PROPERTIES.md`: every ```property fenced
//! block of the manual is parsed, and every worked example's documented
//! verdict is re-checked verbatim — so the reference manual cannot rot
//! without failing the test suite (CI runs this test by name).

use polychrony_core::polyverify::ltl::{first_violation, LtlProperty};
use polychrony_core::polyverify::{Property, Verdict};
use polychrony_core::signal_moc::trace::TraceStep;
use polychrony_core::signal_moc::value::Value;
use polychrony_core::{
    connection_latency_demo, deadline_overrun_demo, PropertySpec, Session, SessionOptions,
    VerificationScope,
};

const MANUAL: &str = include_str!("../docs/PROPERTIES.md");

/// Extracts the contents of every ```property fenced block.
fn manual_property_blocks() -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in MANUAL.lines() {
        match (&mut current, line.trim()) {
            (None, "```property") => current = Some(String::new()),
            (Some(block), "```") => {
                blocks.push(block.trim().to_string());
                current = None;
            }
            (Some(block), _) => {
                block.push_str(line);
                block.push('\n');
            }
            (None, _) => {}
        }
    }
    assert!(current.is_none(), "unterminated ```property block");
    blocks
}

/// Asserts that the manual contains `expr` as a ```property block and
/// returns it parsed — the glue that keeps every hard-coded expression in
/// this file in sync with the document.
fn documented(expr: &str) -> Property {
    assert!(
        manual_property_blocks().iter().any(|block| block == expr),
        "`{expr}` is not a ```property block of docs/PROPERTIES.md"
    );
    Property::parse_ltl(expr).unwrap_or_else(|e| panic!("manual example `{expr}`:\n{e}"))
}

fn step(present: &[&str]) -> TraceStep {
    let mut s = TraceStep::new();
    for name in present {
        s.set(*name, Value::Bool(true));
    }
    s
}

/// Per-instant truth sequence of a property's compiled monitor over a
/// trace, which the manual's tables document.
fn monitor_values(property: &Property, steps: &[TraceStep]) -> Vec<bool> {
    let monitor = property.monitor().expect("trace property");
    let mut registers = monitor.initial();
    steps
        .iter()
        .map(|s| monitor.step(&mut registers, s).holds)
        .collect()
}

#[test]
fn every_property_block_of_the_manual_parses() {
    let blocks = manual_property_blocks();
    assert!(
        blocks.len() >= 6,
        "the manual documents at least six worked property expressions, found {}",
        blocks.len()
    );
    for block in &blocks {
        LtlProperty::parse(block).unwrap_or_else(|e| panic!("manual block `{block}`:\n{e}"));
    }
}

#[test]
fn manual_grammar_snippets_match_the_parser() {
    // The precedence example spelled out in the grammar notes.
    let property = LtlProperty::parse("not a and b or c").unwrap();
    assert_eq!(property.invariant().to_string(), "not a and b or c");
    // `a within 4` alone is the documented syntax error.
    assert!(LtlProperty::parse("a within 4").is_err());
    // The caret rendering promised by the manual.
    let err = LtlProperty::parse("always (Deadline implies").unwrap_err();
    assert!(err.to_string().contains('^'), "{err}");
}

/// Example 1 — alarm safety: passes on the healthy case study, and the
/// user property alone catches the injected deadline overrun at tick 4,
/// with the counterexample replaying in polysim.
#[test]
fn example_alarm_safety() {
    let property = documented("never raised(*Alarm*)");

    let demo = deadline_overrun_demo(1).unwrap();
    let (outcome, replay) = demo
        .verify_properties_and_replay(2, std::slice::from_ref(&property))
        .unwrap();
    let Verdict::Violated(cex) = &outcome.verdicts[0].verdict else {
        panic!("injected fault must be caught: {}", outcome.summary());
    };
    assert_eq!(cex.violation_instant, demo.fault.deadline_tick);
    assert_eq!(cex.violation_instant, 4, "the manual documents tick 4");
    let replay = replay.expect("violation carries a replay");
    assert!(replay.reproduced, "{}", replay.detail);
}

/// Example 2 — deadlock freedom is deliberately not expressible in the
/// trace language.
#[test]
fn example_deadlock_freedom_is_a_built_in() {
    assert!(Property::DeadlockFree.ltl().is_none());
    assert!(Property::DeadlockFree.monitor().is_none());
}

/// Example 3 — bounded response over the documented three-instant trace:
/// `within 2` holds throughout, `within 1` is violated at t = 1.
#[test]
fn example_bounded_response() {
    let trace = vec![step(&["Deadline"]), step(&[]), step(&["Resume"])];

    let relaxed = documented("always (Deadline implies Resume within 2)");
    assert_eq!(monitor_values(&relaxed, &trace), vec![true, true, true]);
    let ltl = relaxed.ltl().unwrap();
    assert_eq!(first_violation(ltl.invariant(), &trace), None);

    let tight = documented("always (Deadline implies Resume within 1)");
    assert_eq!(monitor_values(&tight, &trace), vec![true, false, true]);
    let ltl = tight.ltl().unwrap();
    assert_eq!(first_violation(ltl.invariant(), &trace), Some(1));

    // The manual's expiry rule: a trigger coinciding with the expiry
    // instant is absorbed by the violation (no new deadline is armed), and
    // triggers from the next instant on are monitored again.
    let retrigger = vec![
        step(&["Deadline"]),
        step(&["Deadline"]),
        step(&[]),
        step(&["Deadline"]),
        step(&[]),
    ];
    assert_eq!(
        monitor_values(&tight, &retrigger),
        vec![true, false, true, true, false],
        "expiry at t=1 absorbs that instant's trigger; the t=3 trigger re-arms"
    );
}

/// Example 4 — end-to-end latency: the user property over the link-derived
/// joint signals passes on the healthy product and catches the injected
/// connection fault at tick 9, replaying in the lockstep co-simulation.
#[test]
fn example_end_to_end_latency() {
    let expr = "always (cProdStartTimer_sent implies cProdStartTimer_consumed within 8)";
    let property = documented(expr);

    // Healthy case study, product scope, user property riding along.
    let mut options = SessionOptions::default();
    options.simulate.hyperperiods = 1;
    options.verify.scope = VerificationScope::Product;
    options.verify.properties = vec![PropertySpec::new(expr)];
    let verified = Session::with_options(options)
        .unwrap()
        .parse_case_study()
        .unwrap()
        .instantiate("sysProdCons.impl")
        .unwrap()
        .schedule()
        .unwrap()
        .translate()
        .unwrap()
        .analyze()
        .unwrap()
        .simulate()
        .unwrap()
        .verify()
        .unwrap();
    let product = verified.product.as_ref().expect("product scope");
    let verdict = product
        .outcome
        .verdicts
        .iter()
        .find(|v| v.property == property)
        .expect("user property has its own verdict in the product outcome");
    assert!(verdict.verdict.passed(), "{}", product.outcome.summary());

    // Injected connection latency: the same property alone is violated.
    let demo = connection_latency_demo(8).unwrap();
    let (outcome, replay) = demo
        .verify_properties_and_replay(2, std::slice::from_ref(&property))
        .unwrap();
    let Verdict::Violated(cex) = &outcome.verdicts[0].verdict else {
        panic!("injected fault must be caught: {}", outcome.summary());
    };
    assert_eq!(cex.violation_instant, 9, "the manual documents tick 9");
    let replay = replay.expect("violation carries a replay");
    assert!(replay.reproduced, "{}", replay.detail);
}

/// Example 5 — the `since`-based mode property over the documented trace:
/// holds at t = 1, 2 and is first violated at t = 4.
#[test]
fn example_since_mode_property() {
    let property = documented("always (Busy implies (not Cancel since Start))");
    let trace = vec![
        step(&["Start"]),
        step(&["Busy"]),
        step(&["Busy"]),
        step(&["Cancel"]),
        step(&["Busy"]),
    ];
    assert_eq!(
        monitor_values(&property, &trace),
        vec![true, true, true, true, false]
    );
    let ltl = property.ltl().unwrap();
    assert_eq!(first_violation(ltl.invariant(), &trace), Some(4));
}

/// Example 6 — causality with `once`: a bare `Resume` violates at t = 0;
/// after a `Deadline` every later `Resume` is justified.
#[test]
fn example_once_causality() {
    let property = documented("always (Resume implies once Deadline)");
    let bare = vec![step(&["Resume"])];
    let ltl = property.ltl().unwrap();
    assert_eq!(first_violation(ltl.invariant(), &bare), Some(0));

    let justified = vec![step(&["Deadline"]), step(&[]), step(&["Resume"])];
    assert_eq!(first_violation(ltl.invariant(), &justified), None);
    assert_eq!(
        monitor_values(&property, &justified),
        vec![true, true, true]
    );
}

/// Example 7 — `previously` over the documented trace: holds at t = 2,
/// violated at t = 3.
#[test]
fn example_previously() {
    let property = documented("always (Alarm implies previously Deadline)");
    let trace = vec![
        step(&[]),
        step(&["Deadline"]),
        step(&["Alarm"]),
        step(&["Alarm"]),
    ];
    assert_eq!(
        monitor_values(&property, &trace),
        vec![true, true, true, false]
    );
    let ltl = property.ltl().unwrap();
    assert_eq!(first_violation(ltl.invariant(), &trace), Some(3));
}
