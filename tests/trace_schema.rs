//! Contract of the `--trace-out` JSON-lines sink (`polychrony-trace-v1`):
//! runs `polychrony verify --product --trace-out FILE`, parses every line
//! with the crate's own JSON parser, and validates the schema — required
//! fields per record kind, monotonically non-decreasing timestamps, and
//! strict span open/close pairing. This is the executable form of the
//! schema reference in `docs/OBSERVABILITY.md`.

use std::collections::HashMap;
use std::process::Command;

use polychrony_core::polyobs::json::{parse, Json};

/// Runs the CLI and returns the trace file's lines. The file name carries
/// a per-call serial so concurrently running tests never share a path.
fn capture_trace(extra_args: &[&str]) -> Vec<String> {
    static SERIAL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let trace_path = std::env::temp_dir().join(format!(
        "polychrony-trace-schema-{}-{}.jsonl",
        std::process::id(),
        SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_polychrony"))
        .arg("verify")
        .args(extra_args)
        .args(["--trace-out", trace_path.to_str().unwrap(), "--quiet"])
        .output()
        .expect("failed to spawn the polychrony CLI");
    assert!(
        output.status.success(),
        "CLI exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let text = std::fs::read_to_string(&trace_path).expect("trace file exists");
    let _ = std::fs::remove_file(&trace_path);
    text.lines().map(str::to_string).collect()
}

fn obj(value: &Json) -> &std::collections::BTreeMap<String, Json> {
    value.as_obj().expect("every trace line is a JSON object")
}

#[test]
fn trace_out_emits_a_valid_polychrony_trace_v1_stream() {
    let lines = capture_trace(&["--product"]);
    assert!(
        lines.len() > 10,
        "a product verification leaves a substantial trace, got {} line(s)",
        lines.len()
    );

    let records: Vec<Json> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            parse(line).unwrap_or_else(|e| panic!("line {} is not valid JSON: {e}\n{line}", i + 1))
        })
        .collect();

    // Line 1 announces the schema.
    let meta = obj(&records[0]);
    assert_eq!(
        meta.get("kind").and_then(Json::as_str),
        Some("meta"),
        "the stream opens with a meta record"
    );
    assert_eq!(
        meta.get("schema").and_then(Json::as_str),
        Some("polychrony-trace-v1")
    );

    // Every record has a kind and a non-decreasing t_us.
    let mut last_t = 0u64;
    // span id -> name of the currently open span.
    let mut open_spans: HashMap<u64, String> = HashMap::new();
    let mut phase_spans = 0usize;
    for (i, record) in records.iter().enumerate() {
        let fields = obj(record);
        let kind = fields
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("line {} has no string `kind`", i + 1));
        let t_us = fields
            .get("t_us")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("line {} has no integer `t_us`", i + 1));
        assert!(
            t_us >= last_t,
            "timestamps are non-decreasing: line {} has t_us {t_us} after {last_t}",
            i + 1
        );
        last_t = t_us;
        match kind {
            "meta" => {
                assert_eq!(i, 0, "meta appears only as the first line");
            }
            "span_open" => {
                let span = fields.get("span").and_then(Json::as_u64).unwrap();
                let name = fields.get("name").and_then(Json::as_str).unwrap();
                assert!(
                    open_spans.insert(span, name.to_string()).is_none(),
                    "span id {span} opened twice"
                );
                if name.starts_with("phase.") {
                    phase_spans += 1;
                }
            }
            "span_close" => {
                let span = fields.get("span").and_then(Json::as_u64).unwrap();
                let name = fields.get("name").and_then(Json::as_str).unwrap();
                assert!(
                    fields.get("dur_us").and_then(Json::as_u64).is_some(),
                    "span_close carries dur_us"
                );
                let opened = open_spans
                    .remove(&span)
                    .unwrap_or_else(|| panic!("span id {span} closed without an open"));
                assert_eq!(opened, name, "span {span} closes under the name it opened");
            }
            "event" => {
                assert!(
                    fields.get("name").and_then(Json::as_str).is_some(),
                    "event records carry a name"
                );
            }
            "counters" => {
                assert_eq!(i, records.len() - 1, "counters is the final flush line");
            }
            other => panic!("line {} has unknown kind `{other}`", i + 1),
        }
    }
    assert!(
        open_spans.is_empty(),
        "every span is closed by the end of the stream: {open_spans:?}"
    );
    assert!(
        phase_spans >= 7,
        "one span per pipeline phase (parse..verify.product), got {phase_spans}"
    );

    // The final counter snapshot reflects the exploration.
    let counters_line = obj(records.last().unwrap());
    assert_eq!(
        counters_line.get("kind").and_then(Json::as_str),
        Some("counters")
    );
    let counters = counters_line
        .get("counters")
        .and_then(Json::as_obj)
        .expect("counters line carries the counter map");
    let states = counters
        .get("engine.states")
        .and_then(Json::as_u64)
        .expect("engine.states counter present");
    assert!(states > 0, "the engine explored at least one state");
    assert!(
        counters_line.get("gauges").and_then(Json::as_obj).is_some(),
        "counters line carries the gauge map"
    );
}

/// The engine's per-level progress events ride in the stream when the
/// collector is in full mode, and their depth attributes are coherent.
#[test]
fn trace_out_carries_per_level_engine_events() {
    let lines = capture_trace(&[]);
    let mut level_events = 0usize;
    for line in &lines {
        let record = parse(line).expect("valid JSON");
        let fields = obj(&record);
        if fields.get("kind").and_then(Json::as_str) == Some("event")
            && fields.get("name").and_then(Json::as_str) == Some("engine.level")
        {
            level_events += 1;
            let attrs = fields
                .get("attrs")
                .and_then(Json::as_obj)
                .expect("engine.level events carry attrs");
            assert!(attrs.get("depth").and_then(Json::as_u64).is_some());
            assert!(attrs.get("states").and_then(Json::as_u64).is_some());
        }
    }
    // 4 threads x a 24-tick hyper-period.
    assert!(
        level_events >= 24,
        "per-level events streamed from the engine, got {level_events}"
    );
}
