//! Seed corpus for the vopr chaos harness: every entry is a scenario seed
//! that a previous harness run found, shrank and printed a replay line
//! for. Replaying them pins three things at once — the generator stream
//! (the seed still produces the same system), the detection path (the
//! injected fault is still caught by the same property) and the shrinker
//! (the minimal system stays minimal and stable across runs).
//!
//! When a harness run prints `replay: polychrony vopr --replay 0x… --fault
//! f`, adding `(FaultKind, seed)` here turns that one-off finding into a
//! permanent regression test.

use polyvopr::{replay, FaultKind, VoprOptions, VoprVerdict};

/// One corpus entry: an injected fault, the scenario seed that catches it,
/// and a fragment of the property name expected to flag the violation.
struct CorpusEntry {
    fault: FaultKind,
    seed: u64,
    property_fragment: &'static str,
}

/// Findings recorded from harness runs with the default `--max-threads 5`.
/// Per-thread faults surface as alarm violations; link faults surface as
/// end-to-end response violations on the tampered connection.
const CORPUS: [CorpusEntry; 6] = [
    CorpusEntry {
        fault: FaultKind::DeadlineOverrun,
        seed: 0x73fb_1f33_5173_76f7,
        property_fragment: "never-raised",
    },
    CorpusEntry {
        fault: FaultKind::DispatchJitter,
        seed: 0xe3e0_fdad_713b_79da,
        property_fragment: "never-raised",
    },
    CorpusEntry {
        fault: FaultKind::CorruptedSchedule,
        seed: 0xdb9b_c913_eca9_c4b4,
        property_fragment: "never-raised",
    },
    CorpusEntry {
        fault: FaultKind::ConnectionLatency,
        seed: 0x9ad8_70b5_7940_a53f,
        property_fragment: "end-to-end-response",
    },
    CorpusEntry {
        fault: FaultKind::DroppedDelivery,
        seed: 0x9ca4_4a0a_c6d0_58b2,
        property_fragment: "end-to-end-response",
    },
    // Drifted counter state is flagged by the probe property that reads
    // the drifted signal — which also forces the slot concrete under the
    // interval domain's counter projection (the dual-domain oracle runs on
    // every scenario, drifted or not).
    CorpusEntry {
        fault: FaultKind::CounterDrift,
        seed: 0x5ec8_97b9_a1e7_c2fa,
        property_fragment: "dispatch_count",
    },
];

fn corpus_options(fault: FaultKind) -> VoprOptions {
    VoprOptions {
        fault: Some(fault),
        ..VoprOptions::default()
    }
}

#[test]
fn every_corpus_seed_still_detects_its_fault() {
    for entry in &CORPUS {
        let report = replay(entry.seed, &corpus_options(entry.fault), &mut |_| {});
        let VoprVerdict::Fault(case) = &report.verdict else {
            panic!(
                "corpus seed 0x{:016x} ({}) no longer detects its fault:\n{}",
                entry.seed,
                entry.fault,
                report.summary()
            );
        };
        assert_eq!(case.fault, entry.fault);
        assert_eq!(case.scenario_seed, entry.seed);
        assert!(
            case.property.contains(entry.property_fragment),
            "seed 0x{:016x}: property `{}` lost the expected `{}` fragment",
            entry.seed,
            case.property,
            entry.property_fragment
        );
        // The report always carries a replay line for the finding.
        let expected = format!(
            "replay: polychrony vopr --replay 0x{:016x} --fault {}",
            entry.seed, entry.fault
        );
        assert!(
            report.summary().contains(&expected),
            "summary lost its replay line:\n{}",
            report.summary()
        );
    }
}

#[test]
fn corpus_replays_shrink_to_stable_minimal_systems() {
    for entry in &CORPUS {
        let first = replay(entry.seed, &corpus_options(entry.fault), &mut |_| {});
        let second = replay(entry.seed, &corpus_options(entry.fault), &mut |_| {});
        assert_eq!(
            first, second,
            "replay of 0x{:016x} ({}) is not deterministic",
            entry.seed, entry.fault
        );
        let VoprVerdict::Fault(case) = &first.verdict else {
            panic!("corpus seed 0x{:016x} lost its fault", entry.seed);
        };
        // Minimality: link faults need the sender/receiver pair, per-thread
        // faults shrink the topology around the faulty thread.
        let floor = if entry.fault.needs_links() { 2 } else { 1 };
        assert!(
            case.spec.threads.len() <= floor + 1,
            "seed 0x{:016x}: shrinker left {} thread(s), expected near the {} floor:\n{}",
            entry.seed,
            case.spec.threads.len(),
            floor,
            case.spec.summary()
        );
        if entry.fault.needs_links() {
            assert_eq!(
                case.spec.connections.len(),
                1,
                "link faults shrink to a single tampered connection:\n{}",
                case.spec.summary()
            );
        }
    }
}

#[test]
fn a_clean_corpus_seed_passes_the_full_oracle_battery() {
    // Pure chaos mode on a seed with no recorded finding: the pipeline,
    // cache, monitor, lockstep, domain and replay oracles must all agree.
    let options = VoprOptions::default();
    let report = replay(0xdbfa_5755_b794_49d0, &options, &mut |_| {});
    assert!(
        matches!(report.verdict, VoprVerdict::Clean),
        "expected a clean pass:\n{}",
        report.summary()
    );
    assert_eq!(report.passed, 1);
}
