//! E3 / E4 — the AADL-to-SIGNAL translation: the system-level process of
//! Fig. 3, the thread-level process of Fig. 4 and the generated SIGNAL text.

use polychrony_core::aadl::case_study::producer_consumer_instance;
use polychrony_core::aadl::synth::{generate_instance, SyntheticSpec};
use polychrony_core::asme2ssme::Translator;
use polychrony_core::signal_moc::analysis::StaticAnalysisReport;
use polychrony_core::signal_moc::pretty::{model_to_signal, process_to_signal};
use polychrony_core::signal_moc::process::Equation;

#[test]
fn system_level_process_instantiates_processor_and_subsystems() {
    let instance = producer_consumer_instance().unwrap();
    let translated = Translator::new().translate(&instance).unwrap();
    let root = translated.model.root_process().unwrap();
    let instantiated: Vec<&str> = root
        .equations
        .iter()
        .filter_map(|eq| match eq {
            Equation::Instance { process, .. } => Some(process.as_str()),
            _ => None,
        })
        .collect();
    // Fig. 3: the root instantiates Processor1 (which contains prProdCons)
    // and the two subsystems.
    assert!(instantiated.contains(&"sysProdCons_Processor1"));
    assert!(instantiated.contains(&"sysProdCons_sysEnv"));
    assert!(instantiated.contains(&"sysProdCons_sysOperatorDisplay"));
    assert!(!instantiated.contains(&"sysProdCons_prProdCons"));
}

#[test]
fn thread_level_process_has_fig4_bundles() {
    let instance = producer_consumer_instance().unwrap();
    let translated = Translator::new().translate(&instance).unwrap();
    let name = translated
        .signal_process_for("sysProdCons.prProdCons.thProducer")
        .unwrap();
    let process = translated.model.process(name).unwrap();
    let text = process_to_signal(process);
    // ctl1 bundle inputs, ctl2 outputs and the Alarm of Fig. 4.
    for signal in [
        "Dispatch", "Resume", "Deadline", "Complete", "Error", "Alarm",
    ] {
        assert!(process.signal(signal).is_some(), "missing {signal}");
    }
    // Frozen time events for the in event ports.
    assert!(text.contains("pProdStart_frozen_time"));
    assert!(text.contains("pTimeOut_frozen_time"));
    // Ports are implemented as sub-process instances, not plain signals.
    assert!(text.contains("aadl2signal_in_event_port"));
    assert!(text.contains("aadl2signal_out_event_port"));
}

#[test]
fn generated_model_is_valid_deadlock_free_and_deterministic() {
    let instance = producer_consumer_instance().unwrap();
    let translated = Translator::new().translate(&instance).unwrap();
    translated.model.validate().unwrap();
    let flat = translated.model.flatten().unwrap();
    let report = StaticAnalysisReport::analyze(&flat).unwrap();
    assert!(report.causality_cycle.is_none());
    assert!(report.determinism.is_deterministic());
    assert!(report.clock_count >= 10);
}

#[test]
fn signal_text_preserves_aadl_names() {
    let instance = producer_consumer_instance().unwrap();
    let translated = Translator::new().translate(&instance).unwrap();
    let text = model_to_signal(&translated.model);
    // Name preservation / traceability (Section IV-E).
    for name in [
        "thProducer",
        "thConsumer",
        "thProdTimer",
        "thConsTimer",
        "prProdCons",
        "Processor1",
    ] {
        assert!(text.contains(name), "SIGNAL text lost the AADL name {name}");
    }
    assert!(
        text.lines().count() > 120,
        "expected a substantial SIGNAL model"
    );
}

#[test]
fn translation_scales_linearly_in_structure() {
    let small = Translator::new()
        .translate(&generate_instance(&SyntheticSpec::new(5, 1)).unwrap())
        .unwrap();
    let large = Translator::new()
        .translate(&generate_instance(&SyntheticSpec::new(50, 1)).unwrap())
        .unwrap();
    assert!(large.model.len() > small.model.len());
    let ratio = large.model.total_equations() as f64 / small.model.total_equations() as f64;
    assert!(
        ratio > 5.0 && ratio < 20.0,
        "equation growth should be roughly linear in thread count, ratio {ratio}"
    );
}
