#!/usr/bin/env bash
# Records a new benchmark snapshot of the exploration core — BENCH_<n>.json
# at the next free index, stamped with the current git revision — from the
# `state_space` and `batch_throughput` criterion suites. Run from anywhere;
# writes to the repository root.
#
#   scripts/bench.sh
#
# The snapshot records every report line of both suites (including the
# interval_closure_* pair that pits the interval domain's widening closure
# against bounded concrete exploration — docs/SYMBOLIC.md) plus exact
# state counts, peak frontier and wall time of the headline workloads,
# daemon warm-vs-cold and the symbolic_closure headline (see
# crates/bench/examples/bench_snapshot.rs). Numbered
# snapshots accumulate as the performance trajectory of the repo: BENCH_1
# is the baseline CI gates against, later indices track where each
# optimisation landed. CI replays the state_space suite and fails when a
# headline throughput drops more than 30% below BENCH_1.json.
set -euo pipefail
cd "$(dirname "$0")/.."

n=1
while [ -e "BENCH_${n}.json" ]; do
    n=$((n + 1))
done
out="BENCH_${n}.json"
sha="$(git rev-parse HEAD)"

capture_dir="$(mktemp -d)"
trap 'rm -rf "$capture_dir"' EXIT

cargo bench -p bench --bench state_space | tee "$capture_dir/state_space.txt"
cargo bench -p bench --bench batch_throughput | tee "$capture_dir/batch_throughput.txt"

cargo run --release -p bench --example bench_snapshot -- write \
    --sha "$sha" \
    "$capture_dir/state_space.txt" \
    "$capture_dir/batch_throughput.txt" \
    "$out"
