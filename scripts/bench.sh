#!/usr/bin/env bash
# Regenerates BENCH_1.json — the committed benchmark snapshot of the
# exploration core — from the `state_space` and `batch_throughput`
# criterion suites. Run from anywhere; writes to the repository root.
#
#   scripts/bench.sh
#
# The snapshot records every report line of both suites plus exact state
# counts, peak frontier and wall time of the two headline product
# workloads (see crates/bench/examples/bench_snapshot.rs). CI replays the
# state_space suite and fails when a headline throughput drops more than
# 30% below this snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

capture_dir="$(mktemp -d)"
trap 'rm -rf "$capture_dir"' EXIT

cargo bench -p bench --bench state_space | tee "$capture_dir/state_space.txt"
cargo bench -p bench --bench batch_throughput | tee "$capture_dir/batch_throughput.txt"

cargo run --release -p bench --example bench_snapshot -- write \
    "$capture_dir/state_space.txt" \
    "$capture_dir/batch_throughput.txt" \
    BENCH_1.json
