#!/usr/bin/env bash
# Bounded vopr smoke, the gate CI runs (see docs/VOPR.md). Three legs:
#
#   1. a fixed-seed chaos run over the full oracle battery that must come
#      back clean (exit 0, "verdict: clean");
#   2. a fault-demo run that must find an injected deadline overrun,
#      shrink it and print a replayable minimal failing system;
#   3. a replay of the seed printed by leg 2, which must reproduce the
#      same detection bit-for-bit.
#
#   scripts/vopr.sh [ITERATIONS]
#
# Budgets are small so the gate stays fast; pass a bigger ITERATIONS for
# a longer soak (the corpus in tests/vopr_corpus.rs is where findings
# worth keeping end up).
set -euo pipefail
cd "$(dirname "$0")/.."

iterations="${1:-8}"
bin=./target/release/polychrony

cargo build --release --bin polychrony

echo "== vopr chaos smoke (${iterations} iteration(s)) =="
$bin vopr --seed 5 --iterations "$iterations" | tee vopr_chaos.txt
grep -q '^verdict: clean' vopr_chaos.txt

echo "== vopr fault demo (deadline overrun) =="
$bin vopr --seed 2 --iterations "$iterations" --fault deadline-overrun | tee vopr_demo.txt
grep -q '^verdict: injected deadline-overrun detected' vopr_demo.txt
grep -q 'minimal failing system' vopr_demo.txt
grep -q '^replay: polychrony vopr --replay 0x' vopr_demo.txt

echo "== vopr replay of the printed seed =="
seed="$(sed -n 's/^replay: polychrony vopr --replay \(0x[0-9a-f]*\).*/\1/p' vopr_demo.txt)"
$bin vopr --replay "$seed" --fault deadline-overrun | tee vopr_replay.txt
diff <(grep -v '^vopr' vopr_demo.txt) <(grep -v '^vopr' vopr_replay.txt)

rm -f vopr_chaos.txt vopr_demo.txt vopr_replay.txt
echo "vopr smoke: all legs green"
