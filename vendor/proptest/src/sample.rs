//! Sampling strategies (`prop::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy drawing uniformly from a fixed list of values.
#[derive(Debug, Clone)]
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.index(self.choices.len())].clone()
    }
}

/// Builds a strategy that picks uniformly from `choices`, mirroring
/// `proptest::sample::select`.
///
/// # Panics
///
/// Panics at sampling time if `choices` is empty.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    Select { choices }
}
