//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `Some` three times out of four (the real proptest
/// default weights `Some` 3:1 as well).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.index(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Builds a strategy for `Option<T>` from a strategy for `T`, mirroring
/// `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
