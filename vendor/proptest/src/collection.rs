//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.index(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a strategy for `Vec`s of `element` with a length in `size`,
/// mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
