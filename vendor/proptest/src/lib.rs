//! Offline stub of `proptest`.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use, on
//! top of a deterministic splitmix64 sampler:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter_map`,
//!   implemented for integer and float ranges, tuples and [`strategy::Just`];
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * [`collection::vec`], [`option::of`] and [`sample::select`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Unlike the real proptest there is no shrinking and no failure
//! persistence: each `#[test]` runs `PROPTEST_CASES` (default 64)
//! deterministic cases seeded from the test name, so failures reproduce
//! exactly on re-run. Swap the `vendor/proptest` path dependency for the
//! real crate when network access is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a plain
/// `#[test]` (the `#[test]` attribute is written by the caller and
/// re-emitted) that samples every strategy [`test_runner::cases`] times
/// from a generator seeded deterministically by the test name.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let proptest_cases = $crate::test_runner::cases();
                for proptest_case in 0..proptest_cases {
                    let _ = proptest_case;
                    $(
                        let $parm =
                            $crate::strategy::Strategy::generate(&($strategy), &mut proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
