//! The [`Strategy`] trait and its core combinators and implementations.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an output type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Maps generated values through `filter`, retrying on `None`.
    fn prop_filter_map<U, F>(self, whence: &'static str, filter: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            source: self,
            filter,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    source: S,
    filter: F,
    whence: &'static str,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        // The real proptest gives up after a configurable number of
        // rejections; 10_000 draws is far beyond what the workspace's
        // strategies need while still catching a filter that never accepts.
        for _ in 0..10_000 {
            if let Some(value) = (self.filter)(self.source.generate(rng)) {
                return value;
            }
        }
        panic!("prop_filter_map rejected every sample: {}", self.whence);
    }
}

/// Strategy wrapper for [`crate::arbitrary::any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    pub(crate) marker: PhantomData<fn() -> T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start() + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // The product can round up to exactly `end`; clamp to keep the
        // half-open contract.
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
