//! Deterministic sampling state for the stub runner.

/// Deterministic random source used to sample strategies: a splitmix64
/// stream seeded from the test name, so every run of a given test explores
/// the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an index uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample an index from an empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Number of cases each property runs: `PROPTEST_CASES` env var, default 64.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}
