//! `any::<T>()` support for the primitive types the workspace draws.

use crate::strategy::Any;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Returns the canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: PhantomData,
    }
}
