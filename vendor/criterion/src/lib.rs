//! Offline stub of `criterion`.
//!
//! The container cannot reach crates.io, so this crate stands in for the
//! real Criterion harness with the API surface the workspace's nine bench
//! targets use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size` / `warm_up_time` / `measurement_time` / `throughput`),
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after a short warm-up, each bench
//! body runs for the configured measurement budget and the harness prints
//! the mean wall-clock time per iteration (plus derived throughput when
//! configured). There are no statistics, plots or baselines — swap the
//! `vendor/criterion` path dependency for the real crate when network
//! access is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so bench entry points accept both
/// string literals and explicit ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a benchmark id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Throughput annotation for a benchmark, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark body, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_iterations: u64,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let mut iterations = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iterations += 1;
            if iterations >= self.min_iterations && start.elapsed() >= self.measurement {
                break;
            }
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (kept for API compatibility; the stub
    /// uses it only as a lower bound on iterations).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up budget before measurement starts.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Declares the throughput of each following benchmark.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut body: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut bencher = self.bencher();
        body(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut body: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into_benchmark_id();
        let mut bencher = self.bencher();
        body(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Finishes the group (a no-op beyond matching the real API).
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            min_iterations: self.sample_size as u64,
            iterations: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        let iterations = bencher.iterations.max(1);
        let mean_ns = bencher.elapsed.as_nanos() as f64 / iterations as f64;
        let mut line = format!(
            "{}/{}: {:>12.1} ns/iter ({} iterations)",
            self.name, id.id, mean_ns, iterations
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let rate = n as f64 * 1e9 / mean_ns;
                line.push_str(&format!(", {rate:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let rate = n as f64 * 1e9 / mean_ns / (1024.0 * 1024.0);
                line.push_str(&format!(", {rate:.1} MiB/s"));
            }
            _ => {}
        }
        println!("{line}");
        self.harness.completed += 1;
    }
}

/// The benchmark harness, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    completed: u64,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(300),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, body);
        self
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench target with `harness = false`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
