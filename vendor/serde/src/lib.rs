//! Offline stub of `serde`.
//!
//! The build container cannot reach crates.io, so this crate stands in for
//! the real `serde`: [`Serialize`] and [`Deserialize`] are marker traits
//! with blanket implementations, and the derive macros (re-exported from
//! the stub `serde_derive`) expand to nothing. Every
//! `#[derive(Serialize, Deserialize)]` and `T: Serialize` bound in the
//! workspace therefore compiles unchanged, and the vendored stub can be
//! swapped for the real crates-io package by editing only `Cargo.toml`
//! path dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
