//! Offline stub of `serde_derive`.
//!
//! This container has no access to crates.io, so the workspace vendors a
//! minimal stand-in: the `Serialize`/`Deserialize` derive macros expand to
//! nothing, and the companion `serde` stub crate provides blanket trait
//! implementations so every `#[derive(Serialize, Deserialize)]` in the tree
//! keeps compiling. Swap the `vendor/` path dependencies for the real
//! crates-io packages once network access is available — no source change
//! in the workspace crates is required.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
