//! Offline stub of `rand`.
//!
//! The container has no crates.io access, so this crate provides the small
//! slice of the `rand` 0.8 API the workspace actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], a splitmix64 stream), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`Rng`] extension
//! methods `gen::<f64>()` / `gen::<bool>()` / `gen_range(a..b)`. The
//! workspace only uses randomness for synthetic workload generation, so
//! statistical quality beyond "uniform enough" is not required. Swap the
//! `vendor/rand` path dependency for the real crate when network access is
//! available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Core trait yielding raw random words, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators, mirroring the subset of `rand::SeedableRng` used
/// by the workspace (only [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams, which the proptest and bench harnesses rely on.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits mapped onto [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types that can be drawn uniformly from a half-open range (the stand-in
/// for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Draws a value in `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // The product can round up to exactly `hi`; clamp to keep the
        // documented half-open contract.
        let v = lo + f64::sample(rng) * (hi - lo);
        if v < hi {
            v
        } else {
            hi.next_down()
        }
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: a splitmix64
    /// stream. Fast, `no-unsafe`, and reproducible across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): a full-period 2^64 stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
