//! User-written past-time LTL properties, end to end: parse an expression,
//! check it per-thread and over the thread product, and catch an injected
//! connection fault with a property supplied as a plain string — no Rust
//! property code involved.
//!
//! Run with `cargo run --example ltl_properties`. The full grammar and
//! semantics are documented in `docs/PROPERTIES.md`.

use polychrony_core::polyverify::{Property, Verdict};
use polychrony_core::{
    connection_latency_demo, CoreError, PropertySpec, Session, SessionOptions, VerificationScope,
};

fn main() -> Result<(), CoreError> {
    // 1. User properties ride through the staged pipeline: the alarm-safety
    //    and a causality property are checked on every thread, and (in
    //    product scope) over the joint namespace, each with its own verdict.
    let mut options = SessionOptions::default();
    options.simulate.hyperperiods = 1;
    options.verify.scope = VerificationScope::Product;
    options.verify.properties = vec![
        PropertySpec::new("never raised(*Alarm*)"),
        PropertySpec::new("always (Alarm implies once Deadline)"),
        PropertySpec::new(
            "always (cProdStartTimer_sent implies cProdStartTimer_consumed within 8)",
        ),
    ];
    let verified = Session::with_options(options)?
        .parse_case_study()?
        .instantiate("sysProdCons.impl")?
        .schedule()?
        .translate()?
        .analyze()?
        .simulate()?
        .verify()?;
    let product = verified.product.as_ref().expect("product scope requested");
    println!("-- healthy case study, product scope --");
    println!("{}", product.outcome.summary());
    assert!(product.outcome.is_violation_free());

    // 2. The same end-to-end latency property, written as a string, catches
    //    an injected connection fault on its own — and the joint
    //    counterexample replays in the lockstep co-simulation.
    let property = Property::parse_ltl(
        "always (cProdStartTimer_sent implies cProdStartTimer_consumed within 8)",
    )
    .expect("the expression parses");
    let demo = connection_latency_demo(8)?;
    let (outcome, replay) =
        demo.verify_properties_and_replay(2, std::slice::from_ref(&property))?;
    println!("-- injected connection latency, user property alone --");
    println!("{}", outcome.summary());
    let Verdict::Violated(cex) = &outcome.verdicts[0].verdict else {
        panic!("the injected fault must be caught");
    };
    println!("{}", cex.render());
    let replay = replay.expect("a violation carries a replay");
    assert!(replay.reproduced, "{}", replay.detail);
    println!("lockstep replay: violation reproduced ({})", replay.detail);

    // 3. Malformed expressions fail fast with the offending span.
    let err = Property::parse_ltl("always (Deadline implies").unwrap_err();
    println!("\n-- parse error rendering --\n{err}");
    Ok(())
}
