//! Exhaustive state-space verification of the ProducerConsumer case study,
//! and a counterexample/replay demonstration on an injected deadline bug.
//!
//! ```bash
//! cargo run --example verification
//! ```
//!
//! Part 1 runs the full tool chain with the verification phase enabled:
//! every scheduled thread is model-checked for alarm freedom and deadlock
//! freedom over the complete 24-tick hyper-period.
//!
//! Part 2 tampers with the producer's schedule — the completion (`Resume`)
//! of the job guarding the first deadline is delayed past that deadline, as
//! if its execution time had overrun — and shows the checker finding the
//! violation, printing the concrete counterexample, and confirming it by
//! deterministic replay in the co-simulator.

use polychrony_core::ToolChain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the healthy case study verifies violation-free.
    let report = ToolChain::new().with_verify_workers(2).run_case_study()?;
    let verification = report.verification.as_ref().expect("verification enabled");
    println!("== State-space verification of the ProducerConsumer case study ==\n");
    println!("{}", verification.summary());
    println!(
        "violation-free: {} ({} states, {} transitions across {} threads)\n",
        if verification.is_violation_free() {
            "yes"
        } else {
            "NO"
        },
        verification.total_states(),
        verification.total_transitions(),
        verification.outcomes.len()
    );
    assert!(verification.is_violation_free());

    // Part 2: inject a deadline overrun into the producer's schedule and
    // model-check it (the same ready-made scenario the
    // `polychrony verify --inject-deadline-bug` CLI command uses).
    let demo = polychrony_core::deadline_overrun_demo(1)?;
    println!("== Injected deadline overrun in thProducer ==\n");
    println!(
        "Resume moved from tick {} to {:?}; deadline at tick {} is now missed\n",
        demo.fault.resume_moved_from, demo.fault.resume_moved_to, demo.fault.deadline_tick
    );

    let (outcome, replay) = demo.verify_and_replay(2)?;
    println!("{}", outcome.summary());
    let (_, cex) = outcome
        .violations()
        .next()
        .expect("the injected bug must be found");
    println!("{}", cex.render());

    let replay = replay.expect("a violation always carries a replay");
    println!(
        "simulator replay: {} ({})",
        if replay.reproduced {
            "violation reproduced"
        } else {
            "NOT reproduced"
        },
        replay.detail
    );
    assert!(replay.reproduced);
    Ok(())
}
