//! Scheduling analysis (E7 / E11): synthesise static non-preemptive
//! schedules for the case-study thread set under EDF, RM and fixed
//! priorities, export them as affine clocks, and compare against the
//! Cheddar-like preemptive baselines on a utilisation sweep.
//!
//! ```bash
//! cargo run --example scheduling_analysis
//! ```

use polychrony_core::sched::workload::{acceptance_ratio, random_task_set};
use polychrony_core::sched::{
    export_affine_clocks, rm_response_time_analysis, rm_utilization_bound, BaselineReport,
    SchedulingPolicy, StaticSchedule,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = polychrony_core::sched::task::case_study_task_set();
    println!("== Case-study thread set ==\n{tasks}");

    for policy in SchedulingPolicy::ALL {
        match StaticSchedule::synthesize(&tasks, policy) {
            Ok(schedule) => {
                let affine = export_affine_clocks(&tasks, &schedule)?;
                println!(
                    "{policy}: valid schedule, {} jobs over hyper-period {}, idle {} ticks, {} affine clocks",
                    schedule.entries.len(),
                    schedule.hyperperiod,
                    schedule.idle_time(),
                    affine.clock_count()
                );
                for (task, wrt) in schedule.worst_response_times() {
                    println!("    worst response time {task:<14} {wrt} ticks");
                }
            }
            Err(e) => println!("{policy}: no valid schedule ({e})"),
        }
    }

    println!("\n== Cheddar-like baseline on the same task set ==");
    let baseline = BaselineReport::analyze(&tasks);
    println!(
        "utilisation {:.3}, RM bound {:.3} ({}), RTA schedulable: {}, EDF test: {}",
        baseline.utilization,
        baseline.rm_bound,
        if baseline.rm_bound_pass {
            "pass"
        } else {
            "fail"
        },
        baseline.response_times.schedulable,
        baseline.edf_pass
    );

    println!(
        "\n== Acceptance ratio sweep (E11): static non-preemptive EDF vs preemptive RM RTA =="
    );
    println!(
        "{:<6} {:>18} {:>18}",
        "U", "static EDF", "preemptive RM RTA"
    );
    for u in [0.3, 0.5, 0.7, 0.8, 0.9, 0.95] {
        let mut rng = StdRng::seed_from_u64(2013);
        let static_edf = acceptance_ratio(&mut rng, 100, 5, u, |ts| {
            StaticSchedule::synthesize(ts, SchedulingPolicy::EarliestDeadlineFirst).is_ok()
        });
        let mut rng = StdRng::seed_from_u64(2013);
        let rta = acceptance_ratio(&mut rng, 100, 5, u, |ts| {
            rm_response_time_analysis(ts).schedulable
        });
        println!("{u:<6.2} {static_edf:>18.2} {rta:>18.2}");
    }

    let mut rng = StdRng::seed_from_u64(7);
    let example = random_task_set(&mut rng, 5, 0.6)?;
    println!(
        "\nexample random task set (U target 0.6, actual {:.2}), RM bound {:.3}:\n{example}",
        example.utilization(),
        rm_utilization_bound(example.len())
    );
    Ok(())
}
