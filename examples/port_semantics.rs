//! Port semantics (E2 / E5): demonstrate the input-compute-output execution
//! model of Fig. 2 and the in event port of Fig. 5 — values arriving after
//! an Input Time are not visible to the thread before the next Input Time,
//! and the frozen view never changes during a dispatch frame.
//!
//! ```bash
//! cargo run --example port_semantics
//! ```

use polychrony_core::asme2ssme::{in_event_port_process, out_event_port_process};
use polychrony_core::polysim::Simulator;
use polychrony_core::signal_moc::trace::Trace;
use polychrony_core::signal_moc::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 2 scenario: a 4 ms periodic thread; two values arrive after
    // the first Input Time and must wait for the next one.
    let port = in_event_port_process(4);
    let mut inputs = Trace::new();
    // Ticks 0..8 = two dispatch frames of 4 ms; freeze at dispatch (t0, t4).
    let arrivals = [true, false, true, true, false, false, false, false];
    for (t, &arrived) in arrivals.iter().enumerate() {
        inputs.set(t, "incoming", Value::Bool(arrived));
        inputs.set(t, "freeze", Value::Bool(t % 4 == 0));
    }
    let mut sim = Simulator::new(&port)?;
    let out = sim.run(&inputs)?;
    println!("== In event port (Fig. 5): freeze at each dispatch ==");
    println!("tick  arrival freeze  pending  frozen_count");
    for (t, &arrived) in arrivals.iter().enumerate() {
        println!(
            "{t:>4}  {:>7} {:>6} {:>8} {:>13}",
            arrived,
            t % 4 == 0,
            out.value(t, "pending")
                .and_then(|v| v.as_int())
                .unwrap_or(0),
            out.value(t, "frozen_count")
                .and_then(|v| v.as_int())
                .unwrap_or(0),
        );
    }
    println!(
        "\nThe arrivals at ticks 2 and 3 stay invisible (frozen_count = 1) until the\n\
         next Input Time at tick 4, exactly as Fig. 2 describes.\n"
    );

    // Out event port: production buffered until Output Time.
    let port = out_event_port_process();
    let mut inputs = Trace::new();
    let produced = [true, true, false, true, false, false];
    for (t, &p) in produced.iter().enumerate() {
        inputs.set(t, "produced", Value::Bool(p));
        inputs.set(t, "release", Value::Bool(t == 3 || t == 5));
    }
    let mut sim = Simulator::new(&port)?;
    let out = sim.run(&inputs)?;
    println!("== Out event port: values sent at Output Time ==");
    println!("tick  produced release  backlog  sent_count");
    for (t, &p) in produced.iter().enumerate() {
        println!(
            "{t:>4}  {:>8} {:>7} {:>8} {:>11}",
            p,
            t == 3 || t == 5,
            out.value(t, "backlog")
                .and_then(|v| v.as_int())
                .unwrap_or(0),
            out.value(t, "sent_count")
                .and_then(|v| v.as_int())
                .unwrap_or(0),
        );
    }

    println!("\nVCD dump of the in-port run written to stdout-friendly summary:");
    println!("{}", sim.report().profile.to_table(6));
    Ok(())
}
