//! The full ProducerConsumer case study, phase by phase (Section V of the
//! paper): AADL capture (Fig. 1), translation to SIGNAL (Figs. 3–6), static
//! analysis, scheduler synthesis with affine clocks, and VCD co-simulation
//! (E1, E3, E4, E10 in EXPERIMENTS.md).
//!
//! ```bash
//! cargo run --example producer_consumer
//! ```

use polychrony_core::aadl::case_study::producer_consumer_instance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run()
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    use polychrony_core::asme2ssme::{schedule_to_timing_trace, task_set_from_threads, Translator};
    use polychrony_core::polysim::Simulator;
    use polychrony_core::sched::{export_affine_clocks, SchedulingPolicy, StaticSchedule};
    use polychrony_core::signal_moc::analysis::StaticAnalysisReport;
    use polychrony_core::signal_moc::pretty::{model_to_signal, process_to_signal};

    // Phase 1 — AADL capture and instantiation (Fig. 1).
    let instance = producer_consumer_instance()?;
    println!("== Phase 1: AADL instance model (Fig. 1) ==");
    println!("root: {}", instance.root.path);
    for (category, count) in instance.category_counts() {
        println!("  {:<18} {}", category.keyword(), count);
    }
    let threads = instance.threads()?;
    for t in &threads {
        println!(
            "  thread {:<12} period {:>2} ms  deadline {:>2} ms  wcet {:?}",
            t.name,
            t.timing.period.map(|p| p.as_millis()).unwrap_or(0),
            t.timing
                .effective_deadline()
                .map(|d| d.as_millis())
                .unwrap_or(0),
            t.timing.execution_time_max.map(|d| d.as_millis())
        );
    }

    // Phase 2 — ASME2SSME translation (Figs. 3–6).
    let translated = Translator::new().translate(&instance)?;
    println!("\n== Phase 2: SIGNAL model (Figs. 3-6) ==");
    println!(
        "{} SIGNAL processes, {} equations",
        translated.model.len(),
        translated.model.total_equations()
    );
    let producer_process = translated
        .signal_process_for("sysProdCons.prProdCons.thProducer")
        .expect("thProducer translated");
    println!("\n-- thProducer in SIGNAL (Fig. 4) --");
    println!(
        "{}",
        process_to_signal(translated.model.process(producer_process).unwrap())
    );
    println!(
        "(full model: {} lines of SIGNAL text)",
        model_to_signal(&translated.model).lines().count()
    );

    // Phase 3 — static analysis: clock calculus, determinism, deadlock.
    let flat = translated.model.flatten()?;
    let analysis = StaticAnalysisReport::analyze(&flat)?;
    println!("\n== Phase 3: static analysis ==");
    println!(
        "clocks: {} classes ({} masters), determinism: {}, causality cycle: {:?}",
        analysis.clock_count,
        analysis.master_clock_count,
        analysis.determinism.is_deterministic(),
        analysis.causality_cycle
    );

    // Phase 4 — scheduler synthesis and affine clocks (Section V-C).
    let tasks = task_set_from_threads(&threads)?;
    let schedule = StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst)?;
    let affine = export_affine_clocks(&tasks, &schedule)?;
    println!(
        "\n== Phase 4: thread-level scheduling (hyper-period {}) ==",
        schedule.hyperperiod
    );
    println!("{}", schedule.to_table());
    println!(
        "affine clocks exported: {}, constraints verified: {}",
        affine.clock_count(),
        affine.verified_constraints
    );
    println!(
        "producer/consumer shared-Queue accesses mutually exclusive: {}",
        affine.accesses_are_exclusive("thProducer", "thConsumer")?
    );

    // Phase 5 — co-simulation with VCD output (E10).
    println!("\n== Phase 5: co-simulation ==");
    let producer = threads.iter().find(|t| t.name == "thProducer").unwrap();
    let translation = polychrony_core::asme2ssme::thread_to_process(producer_process, producer);
    let mut model =
        polychrony_core::signal_moc::process::ProcessModel::new(producer_process.to_string());
    model.add(translated.model.process(producer_process).unwrap().clone());
    for p in translated.model.processes.values() {
        if p.name.starts_with("aadl2signal_") {
            model.add(p.clone());
        }
    }
    let flat_producer = model.flatten()?;
    let inputs = schedule_to_timing_trace(
        &schedule,
        "thProducer",
        "",
        &translation.in_ports,
        &translation.out_ports,
        4,
    );
    let mut simulator = Simulator::new(&flat_producer)?;
    simulator.run(&inputs)?;
    let report = simulator.report();
    println!(
        "simulated {} instants, alarms: {}",
        report.instants, report.alarm_instants
    );
    println!("{}", report.profile.to_table(8));
    let vcd = simulator.to_vcd("thProducer", 1_000_000);
    println!("VCD dump: {} lines (first 5 shown)", vcd.lines().count());
    for line in vcd.lines().take(5) {
        println!("  {line}");
    }
    Ok(())
}
