//! Symbolic closure: the interval domain proving an unbounded-counter
//! system that the concrete engine can only pass bounded.
//!
//! ```bash
//! cargo run --example symbolic_closure
//! ```
//!
//! The process is the smallest space the explicit engine can never close:
//! a monotone step counter (`count := count$1 init 0 + 1`) mints a fresh
//! delay memory on every tick, so concrete exploration visits one new
//! state per depth level forever and any bounded run ends in
//! `passed-bounded`. No checked property reads the counter, so under
//! `--domain interval` the widening folds its tail into the abstract class
//! `≥ threshold`, the quotient space closes after a handful of states, and
//! the verdict is a genuine `proved` — bit-identical across worker counts.
//! With `--project-counters` the slot drops out of the state key entirely.
//! Design and soundness argument: docs/SYMBOLIC.md.

use polychrony_core::polyverify::{Domain, InputSpace, Property, Verdict, Verifier, VerifyOptions};
use polychrony_core::signal_moc::builder::ProcessBuilder;
use polychrony_core::signal_moc::expr::Expr;
use polychrony_core::signal_moc::process::Process;
use polychrony_core::signal_moc::value::{Value, ValueType};

/// `count := count$1 init 0 + 1`, synchronised with an input tick: one
/// fresh state per instant, forever.
fn unbounded_counter() -> Process {
    let mut b = ProcessBuilder::new("counter");
    b.input("tick", ValueType::Event);
    b.output("count", ValueType::Integer);
    b.define(
        "count",
        Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
    );
    b.synchronize(&["count", "tick"]);
    b.build().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = unbounded_counter();
    let properties = [Property::NeverRaised("*Alarm*".into())];

    println!("== Symbolic closure of an unbounded counter (docs/SYMBOLIC.md) ==\n");

    // Concrete domain: the fixpoint never closes; a depth bound is the only
    // way to terminate, and the verdict is merely bounded.
    let concrete = Verifier::new(&process, VerifyOptions::default().with_depth_bound(24))?
        .verify(&InputSpace::Free, &properties)?;
    println!("concrete, depth bound 24:");
    println!("{}\n", concrete.summary());
    assert!(matches!(
        concrete.verdicts[0].verdict,
        Verdict::PassedBounded { .. }
    ));
    assert!(concrete.stats.truncated);

    // Interval domain: the counter is invisible to the checked property,
    // so widening folds its tail and the space closes with a real proof —
    // no depth bound needed.
    let interval = Verifier::new(
        &process,
        VerifyOptions::default().with_domain(Domain::Interval),
    )?
    .verify(&InputSpace::Free, &properties)?;
    println!("interval domain, no depth bound:");
    println!("{}\n", interval.summary());
    assert!(interval.all_proved());
    assert!(!interval.stats.truncated);
    assert!(interval.stats.widened > 0);

    // Counter projection drops the slot from the state key entirely.
    let projected = Verifier::new(
        &process,
        VerifyOptions::default()
            .with_domain(Domain::Interval)
            .with_project_counters(true),
    )?
    .verify(&InputSpace::Free, &properties)?;
    println!("interval domain + counter projection:");
    println!("{}\n", projected.summary());
    assert!(projected.all_proved());
    assert_eq!(projected.stats.projected_slots, 1);
    assert!(projected.stats.states < interval.stats.states);

    // The abstract exploration inherits the engine's determinism: verdicts
    // and stats are bit-identical for every worker count.
    for workers in [2usize, 8] {
        let again = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_domain(Domain::Interval)
                .with_workers(workers),
        )?
        .verify(&InputSpace::Free, &properties)?;
        assert_eq!(again.verdicts, interval.verdicts);
        assert_eq!(again.stats.states, interval.stats.states);
        assert_eq!(again.stats.widened, interval.stats.widened);
    }
    println!("deterministic: verdicts and stats bit-identical across 1/2/8 workers");
    println!(
        "\nconcrete passed-bounded with {} states explored and no proof;",
        concrete.stats.states
    );
    println!(
        "interval proved with {} states ({} widenings), projection with {}.",
        interval.stats.states, interval.stats.widened, projected.stats.states
    );
    Ok(())
}
