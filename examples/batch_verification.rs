//! Multi-model batch verification: push the case study and a family of
//! synthetic models through the whole tool chain concurrently with
//! [`BatchRunner`], and print one timed, ordered report line per model.
//!
//! ```bash
//! cargo run --example batch_verification
//! ```

use polychrony_core::aadl::synth::SyntheticSpec;
use polychrony_core::{BatchJob, BatchRunner, CoreError, SessionOptions};

fn main() -> Result<(), CoreError> {
    // Per-job options: one simulated hyper-period, no waveform capture,
    // sequential in-job verification — the parallelism lives at the job
    // level, one shared-nothing session per job.
    let options = SessionOptions::quick();

    // The paper's case study plus five synthetic workloads of growing size
    // (4..8 threads, chained ports, shared data).
    let mut jobs = vec![BatchJob::case_study("prodcons-case-study").with_options(options.clone())];
    for threads in [4usize, 5, 6, 7, 8] {
        jobs.push(
            BatchJob::synthetic(
                format!("synthetic-{threads}t"),
                &SyntheticSpec::new(threads, 1),
            )
            .with_options(options.clone()),
        );
    }

    let runner = BatchRunner::new().with_workers(4);
    println!(
        "== Batch verification: {} models on {} workers ==\n",
        jobs.len(),
        runner.workers()
    );
    let results = runner.run(&jobs)?;
    print!("{}", results.summary());

    // Every report is a full ToolChainReport: drill into one of them.
    let case_study = results.reports[0]
        .outcome
        .as_ref()
        .expect("case study completes");
    println!(
        "\ncase study verified {} thread(s) over hyper-period {} ({} states explored)",
        case_study.simulations.len(),
        case_study.schedule.hyperperiod,
        case_study
            .verification
            .as_ref()
            .map(|v| v.total_states())
            .unwrap_or(0)
    );

    if !results.all_passed() {
        std::process::exit(2);
    }
    Ok(())
}
