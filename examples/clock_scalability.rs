//! Clock-calculus scalability (E9): the paper claims "several thousand
//! clocks can be handled by the clock calculus" and "no special size
//! limitation on transformation". This example sweeps synthetic AADL models
//! from 10 to 500 threads, translates them and measures the number of
//! clocks, equations and the wall-clock time of each phase.
//!
//! ```bash
//! cargo run --release --example clock_scalability
//! ```

use std::time::Instant;

use polychrony_core::aadl::synth::{generate_instance, generate_source, SyntheticSpec};
use polychrony_core::asme2ssme::Translator;
use polychrony_core::signal_moc::clockcalc::ClockCalculus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "threads", "aadl_loc", "processes", "equations", "clocks", "translate", "clock_calc"
    );
    for threads in [10usize, 25, 50, 100, 250, 500] {
        let spec = SyntheticSpec::new(threads, 2);
        let source_lines = generate_source(&spec).lines().count();
        let instance = generate_instance(&spec)?;

        let t0 = Instant::now();
        let translated = Translator::new().translate(&instance)?;
        let translate_time = t0.elapsed();

        let flat = translated.model.flatten()?;
        let t1 = Instant::now();
        let calculus = ClockCalculus::analyze(&flat)?;
        let calc_time = t1.elapsed();

        println!(
            "{threads:>8} {source_lines:>10} {:>10} {:>10} {:>12} {:>12.2?} {:>12.2?}",
            translated.model.len(),
            translated.model.total_equations(),
            calculus.clock_count(),
            translate_time,
            calc_time,
        );
    }
    println!(
        "\nThe clock count grows linearly with the model size and the clock calculus\n\
         remains tractable well past a thousand clocks, matching the paper's claim."
    );
    Ok(())
}
