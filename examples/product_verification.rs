//! Compositional product verification of the ProducerConsumer case study,
//! and a cross-thread counterexample demonstration on an injected
//! connection-latency bug.
//!
//! ```bash
//! cargo run --example product_verification
//! ```
//!
//! Part 1 runs the pipeline with [`VerificationScope::Product`]: besides
//! the per-thread checks, the synchronous product of the four communicating
//! threads is explored, with every event-port connection treated as a
//! synchronising action (the sender's scheduled emission fixes the matching
//! receiver input) and checked against an end-to-end response property
//! bounded by the receiver's period.
//!
//! Part 2 tampers with the `cProdStartTimer` connection — every start-timer
//! event the producer sends is delayed by 8 ticks, pushing it past the
//! timer thread's input freeze — and shows the product checker finding the
//! cross-thread violation (which no per-thread property can see), printing
//! the joint counterexample, projecting it back onto one thread, and
//! confirming it by lockstep co-simulation of the constituent threads.

use polychrony_core::{ToolChain, VerificationScope};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the healthy case-study product verifies violation-free.
    let report = ToolChain::new()
        .with_hyperperiods(1)
        .with_verify_scope(VerificationScope::Product)
        .run_case_study()?;
    let verification = report.verification.as_ref().expect("verification enabled");
    let product = verification.product.as_ref().expect("product scope");
    println!("== Product verification of the ProducerConsumer case study ==\n");
    println!("{}", product.summary());
    println!(
        "joint verdict: {} ({} components, {} connections, {} states)\n",
        if product.is_violation_free() {
            "no cross-thread violation"
        } else {
            "VIOLATED"
        },
        product.components.len(),
        product.connections.len(),
        product.outcome.stats.states,
    );
    assert!(product.is_violation_free());

    // Part 2: inject a connection-latency bug (the same ready-made scenario
    // the `polychrony verify --inject-connection-bug` CLI command uses).
    let demo = polychrony_core::connection_latency_demo(8)?;
    println!("== Injected connection latency on cProdStartTimer ==\n");
    println!(
        "link `{}` now delivers {} tick(s) late: the sent event misses the \
         timer thread's input freeze\n",
        demo.fault.link, demo.fault.added_latency
    );

    let (outcome, replay) = demo.verify_and_replay(2)?;
    println!("{}", outcome.summary());
    let (_, cex) = outcome
        .violations()
        .next()
        .expect("the injected connection bug must be found");
    println!("{}", cex.render());

    // Project the joint counterexample back onto the receiving thread: a
    // per-thread trace that replays in a plain simulator.
    let verifier = polychrony_core::polyverify::ProductVerifier::new(
        demo.system.clone(),
        polychrony_core::polyverify::VerifyOptions::default(),
    )?;
    let projected = verifier
        .project(cex, "thProdTimer")
        .expect("thProdTimer is a product component");
    println!(
        "projection onto thProdTimer: {} instants, {} signals\n",
        projected.len(),
        projected.signals().len()
    );

    let replay = replay.expect("a violation always carries a replay");
    println!(
        "lockstep co-simulation replay: {} ({})",
        if replay.reproduced {
            "violation reproduced"
        } else {
            "NOT reproduced"
        },
        replay.detail
    );
    assert!(replay.reproduced);
    Ok(())
}
