//! Quickstart: run the complete polychronous analysis and validation tool
//! chain on the paper's ProducerConsumer avionic case study and print the
//! resulting report.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use polychrony_core::{CoreError, ToolChain};

fn main() -> Result<(), CoreError> {
    let report = ToolChain::new().run_case_study()?;

    println!("== Polychronous analysis of the ProducerConsumer case study ==\n");
    println!("{}", report.summary());

    println!("-- task set --\n{}", report.task_set_summary);
    println!("-- static schedule --\n{}", report.schedule.to_table());

    println!(
        "all checks passed: {}",
        if report.all_checks_passed() {
            "yes"
        } else {
            "NO"
        }
    );
    Ok(())
}
