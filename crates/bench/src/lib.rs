//! Benchmark harness crate: see the `benches/` directory for the per-experiment Criterion benchmarks.
