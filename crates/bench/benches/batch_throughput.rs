//! E12 — batch verification throughput: models per second of the
//! `BatchRunner` worker pool as the worker count grows, the perf baseline
//! of the multi-model verification service direction.
//!
//! Each job runs a complete staged chain (parse → instantiate → schedule →
//! translate → analyse → simulate → verify) on its own shared-nothing
//! session; the pool only controls how many jobs are in flight.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use aadl::synth::SyntheticSpec;
use polychrony_core::{BatchJob, BatchRunner, SessionOptions};

/// A fixed six-job workload: the case study plus synthetic models of 4, 6
/// and 8 threads, all with a one-hyper-period horizon and no VCD so the
/// measurement is dominated by the pipeline, not by waveform formatting.
fn workload() -> Vec<BatchJob> {
    let options = SessionOptions::quick();
    let mut jobs = vec![BatchJob::case_study("case-study").with_options(options.clone())];
    for (i, threads) in [4usize, 6, 8, 4, 6].into_iter().enumerate() {
        jobs.push(
            BatchJob::synthetic(
                format!("synthetic-{threads}t-{i}"),
                &SyntheticSpec::new(threads, 1),
            )
            .with_options(options.clone()),
        );
    }
    jobs
}

fn bench_batch_throughput(c: &mut Criterion) {
    let jobs = workload();

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(jobs.len() as u64));

    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let results = BatchRunner::new()
                        .with_workers(workers)
                        .run(black_box(&jobs))
                        .expect("batch run succeeds");
                    assert!(results.all_passed());
                    black_box(results)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
