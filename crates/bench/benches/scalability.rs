//! E9 — scalability of the tool chain: parse + instantiate + translate +
//! clock calculus for synthetic AADL models of growing size ("several
//! thousand clocks can be handled by the clock calculus", Section IV-E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use aadl::synth::{generate_instance, generate_source, SyntheticSpec};
use aadl::{parse_package, InstanceModel};
use asme2ssme::Translator;
use signal_moc::clockcalc::ClockCalculus;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for threads in [10usize, 50, 200] {
        let spec = SyntheticSpec::new(threads, 2);
        let source = generate_source(&spec);
        group.throughput(Throughput::Bytes(source.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("parse_instantiate", threads),
            &source,
            |b, src| {
                b.iter(|| {
                    let pkg = parse_package(black_box(src)).unwrap();
                    InstanceModel::instantiate(&pkg, "top.impl").unwrap()
                })
            },
        );

        let instance = generate_instance(&spec).unwrap();
        group.bench_with_input(
            BenchmarkId::new("translate", threads),
            &instance,
            |b, inst| b.iter(|| Translator::new().translate(black_box(inst)).unwrap()),
        );

        let translated = Translator::new().translate(&instance).unwrap();
        let flat = translated.model.flatten().unwrap();
        group.bench_with_input(
            BenchmarkId::new("clock_calculus", threads),
            &flat,
            |b, flat| b.iter(|| ClockCalculus::analyze(black_box(flat)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
