//! E10 — co-simulation throughput: instants per second when simulating the
//! scheduled thProducer thread over a growing number of hyper-periods, plus
//! the cost of the VCD export.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use aadl::case_study::producer_consumer_instance;
use asme2ssme::{schedule_to_timing_trace, task_set_from_threads, thread_to_process, Translator};
use polysim::Simulator;
use sched::{SchedulingPolicy, StaticSchedule};
use signal_moc::process::ProcessModel;

fn bench_simulation(c: &mut Criterion) {
    let instance = producer_consumer_instance().unwrap();
    let threads = instance.threads().unwrap();
    let tasks = task_set_from_threads(&threads).unwrap();
    let schedule =
        StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let translated = Translator::new().translate(&instance).unwrap();
    let producer = threads.iter().find(|t| t.name == "thProducer").unwrap();
    let process_name = translated
        .signal_process_for("sysProdCons.prProdCons.thProducer")
        .unwrap();
    let mut model = ProcessModel::new(process_name.to_string());
    model.add(translated.model.process(process_name).unwrap().clone());
    for p in translated.model.processes.values() {
        if p.name.starts_with("aadl2signal_") {
            model.add(p.clone());
        }
    }
    let flat = model.flatten().unwrap();
    let translation = thread_to_process(process_name, producer);

    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for hyperperiods in [1u64, 10, 50] {
        let inputs = schedule_to_timing_trace(
            &schedule,
            "thProducer",
            "",
            &translation.in_ports,
            &translation.out_ports,
            hyperperiods,
        );
        group.throughput(Throughput::Elements(inputs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("thProducer_instants", hyperperiods),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let mut sim = Simulator::new(&flat).unwrap();
                    sim.run(black_box(inputs)).unwrap()
                })
            },
        );
    }

    let inputs = schedule_to_timing_trace(
        &schedule,
        "thProducer",
        "",
        &translation.in_ports,
        &translation.out_ports,
        10,
    );
    let mut sim = Simulator::new(&flat).unwrap();
    sim.run(&inputs).unwrap();
    group.bench_function("vcd_export_10_hyperperiods", |b| {
        b.iter(|| sim.to_vcd(black_box("thProducer"), 1_000_000))
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
