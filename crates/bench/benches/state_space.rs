//! E11 — state-space exploration throughput: states per second of the
//! parallel breadth-first reachability engine as the worker count grows
//! (the scale knob of `polyverify`), plus the scheduled exploration of the
//! case-study producer over its hyper-period.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use aadl::case_study::producer_consumer_instance;
use asme2ssme::thread_under_schedule;
use polyverify::{InputSpace, Property, Verifier, VerifyOptions};
use sched::SchedulingPolicy;
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::value::{Value, ValueType};

/// A bank of `width` per-input miss counters: counter `i` increments while
/// input `d<i>` holds and resets when it drops, so the free exploration
/// reaches one state per combination of counter values — a state space that
/// grows combinatorially with the depth bound, which is what the
/// worker-scaling measurement needs.
fn wide_watcher(width: usize) -> Process {
    let mut b = ProcessBuilder::new("wide");
    let mut sync_names = Vec::new();
    for i in 0..width {
        let d = format!("d{i}");
        let counter = format!("c{i}");
        b.input(&d, ValueType::Boolean);
        b.local(&counter, ValueType::Integer);
        let prev = Expr::delay(Expr::var(&counter), Value::Int(0));
        b.define(
            &counter,
            Expr::default(
                Expr::when(Expr::add(prev, Expr::int(1)), Expr::var(&d)),
                Expr::int(0),
            ),
        );
        sync_names.push(d);
        sync_names.push(counter);
    }
    b.output("Alarm", ValueType::Boolean);
    b.define("Alarm", Expr::ge(Expr::var("c0"), Expr::int(1_000)));
    let mut sync: Vec<&str> = sync_names.iter().map(String::as_str).collect();
    sync.push("Alarm");
    b.synchronize(&sync);
    b.build().unwrap()
}

fn bench_state_space(c: &mut Criterion) {
    let process = wide_watcher(3);
    let properties = [Property::NeverRaised("*Alarm*".into())];

    let mut group = c.benchmark_group("state_space");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    // Worker scaling on the free-input exploration of the wide watcher.
    let depth = 6usize;
    for workers in [1usize, 2, 4] {
        let verifier = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_workers(workers)
                .with_depth_bound(depth),
        )
        .unwrap();
        let states = verifier
            .verify(&InputSpace::Free, &properties)
            .unwrap()
            .stats
            .states;
        group.throughput(Throughput::Elements(states as u64));
        group.bench_with_input(
            BenchmarkId::new("free_bfs_workers", workers),
            &verifier,
            |b, verifier| {
                b.iter(|| {
                    verifier
                        .verify(black_box(&InputSpace::Free), black_box(&properties))
                        .unwrap()
                })
            },
        );
    }

    // Scheduled exploration of the case-study producer over one
    // hyper-period (the pipeline's verification phase).
    let instance = producer_consumer_instance().unwrap();
    let (thread_model, schedule) = thread_under_schedule(
        &instance,
        "thProducer",
        SchedulingPolicy::EarliestDeadlineFirst,
    )
    .unwrap();
    let flat = thread_model.flat.clone();
    let inputs = thread_model.timing_trace(&schedule, 1);
    let space = InputSpace::Scheduled(inputs);
    let scheduled_properties = [
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier = Verifier::new(
        &flat,
        VerifyOptions::default()
            .with_workers(2)
            .with_depth_bound(24),
    )
    .unwrap();
    group.throughput(Throughput::Elements(24));
    group.bench_function("scheduled_producer_hyperperiod", |b| {
        b.iter(|| {
            verifier
                .verify(black_box(&space), black_box(&scheduled_properties))
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_state_space);
criterion_main!(benches);
