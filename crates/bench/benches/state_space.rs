//! E11 — state-space exploration throughput: states per second of the
//! parallel breadth-first reachability engine as the worker count grows
//! (the scale knob of `polyverify`), plus the scheduled exploration of the
//! case-study producer over its hyper-period.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use aadl::case_study::producer_consumer_instance;
use asme2ssme::{system_under_schedule, thread_under_schedule};
use polychrony_core::affine_clocks::AffineRelation;
use polychrony_core::port_link_for;
use polyverify::{
    DispatchFeasibility, Domain, FrontierMode, InputSpace, PortLink, ProductComponent,
    ProductSystem, ProductVerifier, Property, Verifier, VerifyOptions,
};
use sched::SchedulingPolicy;
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::Trace;
use signal_moc::value::{Value, ValueType};

/// A bank of `width` per-input miss counters: counter `i` increments while
/// input `d<i>` holds and resets when it drops, so the free exploration
/// reaches one state per combination of counter values — a state space that
/// grows combinatorially with the depth bound, which is what the
/// worker-scaling measurement needs.
fn wide_watcher(width: usize) -> Process {
    let mut b = ProcessBuilder::new("wide");
    let mut sync_names = Vec::new();
    for i in 0..width {
        let d = format!("d{i}");
        let counter = format!("c{i}");
        b.input(&d, ValueType::Boolean);
        b.local(&counter, ValueType::Integer);
        let prev = Expr::delay(Expr::var(&counter), Value::Int(0));
        b.define(
            &counter,
            Expr::default(
                Expr::when(Expr::add(prev, Expr::int(1)), Expr::var(&d)),
                Expr::int(0),
            ),
        );
        sync_names.push(d);
        sync_names.push(counter);
    }
    b.output("Alarm", ValueType::Boolean);
    b.define("Alarm", Expr::ge(Expr::var("c0"), Expr::int(1_000)));
    let mut sync: Vec<&str> = sync_names.iter().map(String::as_str).collect();
    sync.push("Alarm");
    b.synchronize(&sync);
    b.build().unwrap()
}

/// A bounded observable toggle plus an unbounded invisible step counter —
/// the symbolic-closure workload. Concretely the space never closes (the
/// counter mints a fresh state per tick); under the interval domain the
/// widening folds the counter tail and exploration finishes with `proved`.
fn toggle_with_invisible_counter() -> Process {
    let mut b = ProcessBuilder::new("toggle");
    b.input("d", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("flag", ValueType::Boolean);
    b.local("total", ValueType::Integer);
    b.define(
        "flag",
        Expr::not(Expr::delay(Expr::var("flag"), Value::Bool(false))),
    );
    b.define(
        "total",
        Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
    );
    b.define(
        "Alarm",
        Expr::and(Expr::var("d"), Expr::not(Expr::var("d"))),
    );
    b.synchronize(&["d", "flag", "total", "Alarm"]);
    b.build().unwrap()
}

/// The case-study product (all translated threads under the joint EDF
/// schedule, event-port connections wired), explored over `hyperperiods`
/// repetitions of the hyper-period — the headline workload of the
/// exploration core.
fn case_study_product(hyperperiods: usize) -> (ProductVerifier, Vec<Property>, usize) {
    case_study_product_with(hyperperiods, |options| options)
}

/// Same workload with a caller-tuned [`VerifyOptions`] (frontier mode,
/// memoisation, …) applied on top of the depth bound.
fn case_study_product_with(
    hyperperiods: usize,
    tune: impl FnOnce(VerifyOptions) -> VerifyOptions,
) -> (ProductVerifier, Vec<Property>, usize) {
    let instance = producer_consumer_instance().unwrap();
    let (models, schedule, connections) =
        system_under_schedule(&instance, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let components: Vec<ProductComponent> = models
        .iter()
        .map(|model| ProductComponent {
            name: model.thread_name.clone(),
            process: model.flat.clone(),
            schedule: model.timing_trace(&schedule, 1),
        })
        .collect();
    let links: Vec<PortLink> = connections.iter().map(port_link_for).collect();
    let system = ProductSystem::new(components, links).unwrap();
    let bound = system.horizon() * hyperperiods;
    let properties = vec![
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier = ProductVerifier::new(
        system,
        tune(VerifyOptions::default().with_depth_bound(bound)),
    )
    .unwrap();
    (verifier, properties, bound)
}

/// A synthetic three-stage pipeline product: each stage counts the events
/// delivered on its `in_in` port, and the stages are chained by two
/// latency-1 links. The per-stage counters keep the joint state changing
/// every tick, so the exploration runs the full depth bound.
fn synthetic_3thread_product(
    horizon: usize,
    hyperperiods: usize,
) -> (ProductVerifier, Vec<Property>, usize) {
    fn stage(name: &str) -> Process {
        let mut b = ProcessBuilder::new(name);
        b.input("Dispatch", ValueType::Boolean);
        b.input("out_output_time", ValueType::Boolean);
        b.input("in_in", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("seen", ValueType::Integer);
        let prev = Expr::delay(Expr::var("seen"), Value::Int(0));
        b.define(
            "seen",
            Expr::add(
                prev,
                Expr::default(Expr::when(Expr::int(1), Expr::var("in_in")), Expr::int(0)),
            ),
        );
        b.define("Alarm", Expr::ge(Expr::var("seen"), Expr::int(1_000_000)));
        b.synchronize(&["Dispatch", "out_output_time", "in_in", "seen", "Alarm"]);
        b.build().unwrap()
    }
    let mut components = Vec::new();
    for (i, emit_every) in [3usize, 4, 6].into_iter().enumerate() {
        let name = format!("s{i}");
        let mut schedule = Trace::new();
        for t in 0..horizon {
            schedule.set(t, "Dispatch", Value::Bool(t % emit_every == 0));
            schedule.set(t, "out_output_time", Value::Bool(t % emit_every == 1));
            schedule.set(t, "in_in", Value::Bool(false));
        }
        components.push(ProductComponent {
            name,
            process: stage(&format!("stage{i}")),
            schedule,
        });
    }
    let links = vec![
        PortLink {
            name: "l01".into(),
            source: "s0".into(),
            source_signal: "out_output_time".into(),
            target: "s1".into(),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 1,
        },
        PortLink {
            name: "l12".into(),
            source: "s1".into(),
            source_signal: "out_output_time".into(),
            target: "s2".into(),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 1,
        },
    ];
    let system = ProductSystem::new(components, links).unwrap();
    let bound = horizon * hyperperiods;
    let properties = vec![
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier =
        ProductVerifier::new(system, VerifyOptions::default().with_depth_bound(bound)).unwrap();
    (verifier, properties, bound)
}

fn bench_state_space(c: &mut Criterion) {
    let process = wide_watcher(3);
    let properties = [Property::NeverRaised("*Alarm*".into())];

    let mut group = c.benchmark_group("state_space");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    // Worker scaling on the free-input exploration of the wide watcher.
    let depth = 6usize;
    for workers in [1usize, 2, 4] {
        let verifier = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_workers(workers)
                .with_depth_bound(depth),
        )
        .unwrap();
        let states = verifier
            .verify(&InputSpace::Free, &properties)
            .unwrap()
            .stats
            .states;
        group.throughput(Throughput::Elements(states as u64));
        group.bench_with_input(
            BenchmarkId::new("free_bfs_workers", workers),
            &verifier,
            |b, verifier| {
                b.iter(|| {
                    verifier
                        .verify(black_box(&InputSpace::Free), black_box(&properties))
                        .unwrap()
                })
            },
        );
    }

    // Frontier-discipline comparison on the same free exploration: the
    // level-barrier chunks versus the default work-stealing deques, at the
    // same worker count.
    for (label, frontier) in [
        ("barrier", FrontierMode::Barrier),
        ("work_stealing", FrontierMode::WorkStealing),
    ] {
        let verifier = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_workers(2)
                .with_depth_bound(depth)
                .with_frontier(frontier),
        )
        .unwrap();
        let states = verifier
            .verify(&InputSpace::Free, &properties)
            .unwrap()
            .stats
            .states;
        group.throughput(Throughput::Elements(states as u64));
        group.bench_with_input(
            BenchmarkId::new("free_bfs_frontier", label),
            &verifier,
            |b, verifier| {
                b.iter(|| {
                    verifier
                        .verify(black_box(&InputSpace::Free), black_box(&properties))
                        .unwrap()
                })
            },
        );
    }

    // Clock-calculus pruning: the same free exploration under a
    // dispatch-feasibility oracle that pins each watched input to an affine
    // clock (d0 on (2,0), d1 on (3,0), d2 on (4,0)), so candidate
    // valuations off those clocks are skipped before enumeration.
    {
        let mut oracle = DispatchFeasibility::new();
        oracle.insert("d0", AffineRelation::new(2, 0).unwrap());
        oracle.insert("d1", AffineRelation::new(3, 0).unwrap());
        oracle.insert("d2", AffineRelation::new(4, 0).unwrap());
        let verifier = Verifier::new(
            &process,
            VerifyOptions::default()
                .with_workers(2)
                .with_depth_bound(depth)
                .with_oracle(oracle),
        )
        .unwrap();
        let stats = verifier
            .verify(&InputSpace::Free, &properties)
            .unwrap()
            .stats;
        assert!(stats.pruned > 0, "the oracle should prune candidates");
        group.throughput(Throughput::Elements(stats.states as u64));
        group.bench_function("free_bfs_pruned_oracle", |b| {
            b.iter(|| {
                verifier
                    .verify(black_box(&InputSpace::Free), black_box(&properties))
                    .unwrap()
            })
        });
    }

    // Symbolic closure (docs/SYMBOLIC.md): the interval domain folding an
    // unbounded invisible counter into a closed quotient with a genuine
    // proof, versus the concrete engine exploring the same process to a
    // depth bound and only passing bounded.
    {
        let toggle = toggle_with_invisible_counter();
        let interval = Verifier::new(
            &toggle,
            VerifyOptions::default()
                .with_workers(2)
                .with_domain(Domain::Interval),
        )
        .unwrap();
        let outcome = interval.verify(&InputSpace::Free, &properties).unwrap();
        assert!(outcome.all_proved(), "the quotient space must close");
        assert!(outcome.stats.widened > 0, "the counter must widen");
        group.throughput(Throughput::Elements(outcome.stats.states as u64));
        group.bench_function("interval_closure_proved", |b| {
            b.iter(|| {
                interval
                    .verify(black_box(&InputSpace::Free), black_box(&properties))
                    .unwrap()
            })
        });

        let concrete = Verifier::new(
            &toggle,
            VerifyOptions::default()
                .with_workers(2)
                .with_depth_bound(24),
        )
        .unwrap();
        let states = concrete
            .verify(&InputSpace::Free, &properties)
            .unwrap()
            .stats
            .states;
        group.throughput(Throughput::Elements(states as u64));
        group.bench_function("interval_closure_concrete_bounded", |b| {
            b.iter(|| {
                concrete
                    .verify(black_box(&InputSpace::Free), black_box(&properties))
                    .unwrap()
            })
        });
    }

    // Scheduled exploration of the case-study producer over one
    // hyper-period (the pipeline's verification phase).
    let instance = producer_consumer_instance().unwrap();
    let (thread_model, schedule) = thread_under_schedule(
        &instance,
        "thProducer",
        SchedulingPolicy::EarliestDeadlineFirst,
    )
    .unwrap();
    let flat = thread_model.flat.clone();
    let inputs = thread_model.timing_trace(&schedule, 1);
    let space = InputSpace::Scheduled(inputs);
    let scheduled_properties = [
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier = Verifier::new(
        &flat,
        VerifyOptions::default()
            .with_workers(2)
            .with_depth_bound(24),
    )
    .unwrap();
    group.throughput(Throughput::Elements(24));
    group.bench_function("scheduled_producer_hyperperiod", |b| {
        b.iter(|| {
            verifier
                .verify(black_box(&space), black_box(&scheduled_properties))
                .unwrap()
        })
    });

    // The case-study product over four hyper-periods: the headline workload
    // (the acceptance metric of the exploration-core refactor tracks its
    // states/sec).
    let (product, product_properties, _) = case_study_product(4);
    let states = product.verify(&product_properties).unwrap().stats.states;
    group.throughput(Throughput::Elements(states as u64));
    group.bench_function("case_study_product", |b| {
        b.iter(|| product.verify(black_box(&product_properties)).unwrap())
    });

    // The same product with the per-component step memoisation disabled —
    // the cost of re-evaluating every component at every joint instant.
    let (product_no_memo, _, _) = case_study_product_with(4, |o| o.with_pruning(false));
    group.throughput(Throughput::Elements(states as u64));
    group.bench_function("case_study_product_no_memo", |b| {
        b.iter(|| {
            product_no_memo
                .verify(black_box(&product_properties))
                .unwrap()
        })
    });

    // A synthetic three-stage pipeline product whose per-stage counters keep
    // the joint state fresh for the whole depth bound.
    let (synthetic, synthetic_properties, _) = synthetic_3thread_product(12, 4);
    let states = synthetic
        .verify(&synthetic_properties)
        .unwrap()
        .stats
        .states;
    group.throughput(Throughput::Elements(states as u64));
    group.bench_function("synthetic_3thread_product", |b| {
        b.iter(|| synthetic.verify(black_box(&synthetic_properties)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_state_space);
criterion_main!(benches);
