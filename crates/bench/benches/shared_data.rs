//! E6 — shared data (`fifo_reset`): execution cost of the shared Queue under
//! the case-study access pattern (producer every 4 ticks, consumer every 6)
//! for growing horizons, plus the mutual-exclusion verification on the
//! affine export.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use asme2ssme::shared_data_process;
use sched::task::case_study_task_set;
use sched::{export_affine_clocks, SchedulingPolicy, StaticSchedule};
use signal_moc::eval::Evaluator;
use signal_moc::trace::Trace;
use signal_moc::value::Value;

fn queue_inputs(ticks: usize) -> Trace {
    let mut trace = Trace::new();
    for t in 0..ticks {
        trace.set(t, "write", Value::Bool(t % 4 == 1));
        trace.set(t, "read", Value::Bool(t % 6 == 3));
        trace.set(t, "reset", Value::Bool(t % 96 == 95));
    }
    trace
}

fn bench_shared_data(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_data");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let process = shared_data_process();
    for ticks in [24usize, 240, 2400] {
        let inputs = queue_inputs(ticks);
        group.throughput(Throughput::Elements(ticks as u64));
        group.bench_with_input(
            BenchmarkId::new("fifo_reset", ticks),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    Evaluator::new(&process)
                        .unwrap()
                        .run(black_box(inputs))
                        .unwrap()
                })
            },
        );
    }

    // Mutual-exclusion verification of the Queue access clocks on the
    // exported schedule.
    let tasks = case_study_task_set();
    let schedule =
        StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let export = export_affine_clocks(&tasks, &schedule).unwrap();
    group.bench_function("queue_access_exclusion_check", |b| {
        b.iter(|| {
            export
                .accesses_are_exclusive(black_box("thProducer"), black_box("thConsumer"))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shared_data);
criterion_main!(benches);
