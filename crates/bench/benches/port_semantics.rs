//! E5 — in/out event port semantics: cost of executing the
//! `in_event_port` / `out_event_port` library processes for growing queue
//! sizes and trace lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use asme2ssme::{in_event_port_process, out_event_port_process};
use signal_moc::eval::Evaluator;
use signal_moc::trace::Trace;
use signal_moc::value::Value;

fn port_inputs(len: usize) -> Trace {
    let mut trace = Trace::new();
    for t in 0..len {
        trace.set(t, "incoming", Value::Bool(t % 3 != 0));
        trace.set(t, "freeze", Value::Bool(t % 4 == 0));
        trace.set(t, "produced", Value::Bool(t % 2 == 0));
        trace.set(t, "release", Value::Bool(t % 4 == 3));
    }
    trace
}

fn bench_ports(c: &mut Criterion) {
    let mut group = c.benchmark_group("port_semantics");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for queue_size in [1usize, 4, 16] {
        let process = in_event_port_process(queue_size);
        let inputs = port_inputs(256);
        group.throughput(Throughput::Elements(inputs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("in_event_port", queue_size),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    Evaluator::new(&process)
                        .unwrap()
                        .run(black_box(inputs))
                        .unwrap()
                })
            },
        );
    }

    let out_port = out_event_port_process();
    for len in [64usize, 512] {
        let inputs = port_inputs(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(
            BenchmarkId::new("out_event_port", len),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    Evaluator::new(&out_port)
                        .unwrap()
                        .run(black_box(inputs))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ports);
criterion_main!(benches);
