//! E7 — static scheduler synthesis and affine-clock export for the
//! case-study thread set and for growing synthetic task sets, under EDF, RM
//! and fixed priorities (also the ablation: synthesis alone vs synthesis +
//! affine export + verification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::task::case_study_task_set;
use sched::workload::random_task_set;
use sched::{export_affine_clocks, SchedulingPolicy, StaticSchedule};

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_synthesis");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let tasks = case_study_task_set();
    for policy in SchedulingPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("case_study", policy.short_name()),
            &policy,
            |b, &policy| b.iter(|| StaticSchedule::synthesize(black_box(&tasks), policy).unwrap()),
        );
    }
    // Ablation: schedule synthesis alone vs synthesis followed by affine
    // export and synchronizability verification.
    group.bench_function("case_study/EDF_plus_affine_export", |b| {
        b.iter(|| {
            let schedule = StaticSchedule::synthesize(
                black_box(&tasks),
                SchedulingPolicy::EarliestDeadlineFirst,
            )
            .unwrap();
            export_affine_clocks(&tasks, &schedule).unwrap()
        })
    });

    for n in [5usize, 10, 20] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let ts = random_task_set(&mut rng, n, 0.6).unwrap();
        group.bench_with_input(BenchmarkId::new("random_edf", n), &ts, |b, ts| {
            b.iter(|| {
                StaticSchedule::synthesize(black_box(ts), SchedulingPolicy::EarliestDeadlineFirst)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
