//! E8 / E9 — clock calculus cost: determinism identification on the
//! translated case study and on compiled automata.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use aadl::case_study::producer_consumer_instance;
use asme2ssme::Translator;
use signal_moc::analysis::StaticAnalysisReport;
use signal_moc::automaton::Automaton;
use signal_moc::clockcalc::ClockCalculus;

fn bench_clock_calculus(c: &mut Criterion) {
    let instance = producer_consumer_instance().unwrap();
    let translated = Translator::new().translate(&instance).unwrap();
    let flat = translated.model.flatten().unwrap();

    let mut group = c.benchmark_group("clock_calculus");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("case_study_flat_model", |b| {
        b.iter(|| ClockCalculus::analyze(black_box(&flat)).unwrap())
    });
    group.bench_function("case_study_static_analysis", |b| {
        b.iter(|| StaticAnalysisReport::analyze(black_box(&flat)).unwrap())
    });

    // Determinism identification on automata of growing size (E8).
    for states in [2usize, 8, 32] {
        let mut automaton = Automaton::new("modes", "s0");
        for i in 0..states {
            automaton.add_prioritized_transition(
                format!("s{i}"),
                format!("s{}", (i + 1) % states),
                format!("g{i}"),
                Some(0),
            );
            automaton.add_prioritized_transition(format!("s{i}"), "s0", format!("h{i}"), Some(1));
        }
        let process = automaton.to_process().unwrap();
        group.bench_with_input(
            BenchmarkId::new("automaton_determinism", states),
            &process,
            |b, p| b.iter(|| ClockCalculus::analyze(black_box(p)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clock_calculus);
criterion_main!(benches);
