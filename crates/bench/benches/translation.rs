//! E3 / E4 — ASME2SSME translation cost: the case study (Figs. 3–6) and the
//! end-to-end tool chain, plus the SIGNAL pretty printing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use aadl::case_study::producer_consumer_instance;
use asme2ssme::Translator;
use polychrony_core::ToolChain;
use signal_moc::pretty::model_to_signal;

fn bench_translation(c: &mut Criterion) {
    let instance = producer_consumer_instance().unwrap();

    let mut group = c.benchmark_group("translation");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("case_study_translate", |b| {
        b.iter(|| Translator::new().translate(black_box(&instance)).unwrap())
    });

    let translated = Translator::new().translate(&instance).unwrap();
    group.bench_function("case_study_flatten", |b| {
        b.iter(|| black_box(&translated.model).flatten().unwrap())
    });
    group.bench_function("case_study_pretty_print", |b| {
        b.iter(|| model_to_signal(black_box(&translated.model)))
    });
    // Verification is disabled here to keep this measurement comparable
    // with pre-polyverify baselines; the model-checking cost is measured
    // separately below and in the state_space bench suite.
    group.bench_function("end_to_end_tool_chain_1_hyperperiod", |b| {
        b.iter(|| {
            ToolChain::new()
                .with_hyperperiods(1)
                .with_verification(false)
                .run_instance(black_box(&instance))
                .unwrap()
        })
    });
    group.bench_function("end_to_end_tool_chain_with_verification", |b| {
        b.iter(|| {
            ToolChain::new()
                .with_hyperperiods(1)
                .run_instance(black_box(&instance))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
