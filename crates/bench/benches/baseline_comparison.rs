//! E11 — comparison with the Cheddar-like baselines: cost and acceptance of
//! the static non-preemptive synthesis vs utilisation-bound, response-time
//! analysis and preemptive simulation, across a utilisation sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::workload::random_task_set;
use sched::{
    preemptive_simulation, rm_response_time_analysis, BaselineReport, SchedulingPolicy,
    StaticSchedule, TaskSet,
};

fn sample_sets(utilization: f64) -> Vec<TaskSet> {
    let mut rng = StdRng::seed_from_u64((utilization * 1000.0) as u64);
    (0..20)
        .map(|_| random_task_set(&mut rng, 6, utilization).unwrap())
        .collect()
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for &utilization in &[0.5f64, 0.8, 0.95] {
        let sets = sample_sets(utilization);
        let label = format!("U{utilization:.2}");
        group.bench_with_input(
            BenchmarkId::new("static_nonpreemptive_edf", &label),
            &sets,
            |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .filter(|ts| {
                            StaticSchedule::synthesize(
                                black_box(ts),
                                SchedulingPolicy::EarliestDeadlineFirst,
                            )
                            .is_ok()
                        })
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rm_response_time_analysis", &label),
            &sets,
            |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .filter(|ts| rm_response_time_analysis(black_box(ts)).schedulable)
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("preemptive_edf_simulation", &label),
            &sets,
            |b, sets| {
                b.iter(|| {
                    sets.iter()
                        .filter(|ts| {
                            preemptive_simulation(
                                black_box(ts),
                                SchedulingPolicy::EarliestDeadlineFirst,
                            )
                            .schedulable
                        })
                        .count()
                })
            },
        );
    }

    let tasks = sched::task::case_study_task_set();
    group.bench_function("case_study_full_baseline_report", |b| {
        b.iter(|| BaselineReport::analyze(black_box(&tasks)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
