//! E1 / E9 — AADL front-end throughput: lexing + parsing + instantiation of
//! the case study and of synthetic packages of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use aadl::case_study::PRODUCER_CONSUMER_AADL;
use aadl::synth::{generate_source, SyntheticSpec};
use aadl::{parse_package, InstanceModel};

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    group.throughput(Throughput::Bytes(PRODUCER_CONSUMER_AADL.len() as u64));
    group.bench_function("case_study_parse", |b| {
        b.iter(|| parse_package(black_box(PRODUCER_CONSUMER_AADL)).unwrap())
    });
    let package = parse_package(PRODUCER_CONSUMER_AADL).unwrap();
    group.bench_function("case_study_instantiate", |b| {
        b.iter(|| InstanceModel::instantiate(black_box(&package), "sysProdCons.impl").unwrap())
    });

    for threads in [10usize, 100, 500] {
        let source = generate_source(&SyntheticSpec::new(threads, 2));
        group.throughput(Throughput::Bytes(source.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("synthetic_parse", threads),
            &source,
            |b, src| b.iter(|| parse_package(black_box(src)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
