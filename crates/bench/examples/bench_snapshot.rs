//! Benchmark snapshot tool behind `scripts/bench.sh` and the CI smoke gate.
//!
//! Two modes:
//!
//! ```bash
//! bench_snapshot write <criterion-output>... <out.json>
//! bench_snapshot check <criterion-output> <baseline.json>
//! ```
//!
//! `write` parses the report lines of the vendored criterion harness
//! (`{group}/{id}: {mean} ns/iter ({n} iterations), {rate} elem/s`) from
//! the captured `cargo bench` output, re-runs the two headline product
//! workloads once to record exact state counts, peak frontier and wall
//! time, and emits `BENCH_1.json` (one benchmark entry per line, so the
//! file diffs and greps cleanly without a JSON parser).
//!
//! `check` re-parses a fresh `cargo bench --bench state_space` capture and
//! fails (exit 1) when the throughput of a headline benchmark drops more
//! than 30% below the committed baseline.

use std::process::ExitCode;
use std::time::Instant;

use aadl::case_study::producer_consumer_instance;
use asme2ssme::system_under_schedule;
use polychrony_core::port_link_for;
use polyverify::{
    PortLink, ProductComponent, ProductSystem, ProductVerifier, Property, VerifyOptions,
};
use sched::SchedulingPolicy;
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::Trace;
use signal_moc::value::{Value, ValueType};

/// Throughput below this fraction of the committed baseline fails `check`.
const REGRESSION_FLOOR: f64 = 0.7;

/// The benchmarks gated by `check`: only the case-study product — the
/// acceptance workload of the exploration core. The synthetic product runs
/// in ~300µs per iteration and its measured rate swings far more than 30%
/// between runs of a loaded single-core CI box, so it is recorded in the
/// snapshot but not gated.
const HEADLINE_IDS: [&str; 1] = ["state_space/case_study_product"];

/// States/sec of the case-study product measured on the pre-refactor
/// exploration core (level-barrier BFS, byte-vector state keys, no
/// memoisation) — the fixed reference point of the benchmark trajectory.
const PRE_REFACTOR_CASE_STUDY_ELEM_PER_S: f64 = 1487.0;

/// Builds one headline workload: a configured verifier plus its checked
/// properties.
type WorkloadBuilder = fn() -> (ProductVerifier, Vec<Property>);

/// One parsed criterion report line.
struct BenchLine {
    id: String,
    ns_per_iter: f64,
    elem_per_s: Option<f64>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("write") if args.len() >= 3 => write(&args[1..args.len() - 1], &args[args.len() - 1]),
        Some("check") if args.len() == 3 => check(&args[1], &args[2]),
        _ => Err("usage: bench_snapshot write <capture>... <out.json> | \
                  bench_snapshot check <capture> <baseline.json>"
            .to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_snapshot: {msg}");
            ExitCode::from(1)
        }
    }
}

/// Parses every criterion report line of the captured bench outputs.
fn parse_captures(paths: &[String]) -> Result<Vec<BenchLine>, String> {
    let mut lines = Vec::new();
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        for line in text.lines() {
            if let Some(parsed) = parse_line(line) {
                lines.push(parsed);
            }
        }
    }
    if lines.is_empty() {
        return Err(format!(
            "no criterion report lines found in {}",
            paths.join(", ")
        ));
    }
    Ok(lines)
}

/// Parses `{group}/{id}: {mean} ns/iter ({n} iterations)[, {rate} elem/s]`.
fn parse_line(line: &str) -> Option<BenchLine> {
    let (id, rest) = line.split_once(": ")?;
    if !id.contains('/') || id.contains(' ') {
        return None;
    }
    let (mean, rest) = rest.trim_start().split_once(" ns/iter")?;
    let ns_per_iter: f64 = mean.trim().parse().ok()?;
    let elem_per_s = rest
        .split_once(", ")
        .and_then(|(_, rate)| rate.strip_suffix(" elem/s"))
        .and_then(|rate| rate.trim().parse().ok());
    Some(BenchLine {
        id: id.to_string(),
        ns_per_iter,
        elem_per_s,
    })
}

fn write(captures: &[String], out_path: &str) -> Result<(), String> {
    let lines = parse_captures(captures)?;
    let mut json = String::from("{\n  \"schema\": \"polychrony-bench-v1\",\n");
    json.push_str("  \"benchmarks\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { "" } else { "," };
        match line.elem_per_s {
            Some(rate) => json.push_str(&format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"elem_per_s\": {:.0}}}{sep}\n",
                line.id, line.ns_per_iter, rate
            )),
            None => json.push_str(&format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}\n",
                line.id, line.ns_per_iter
            )),
        }
    }
    json.push_str("  ],\n  \"headline\": [\n");

    let workloads: [(&str, WorkloadBuilder); 2] = [
        ("case_study_product", case_study_product),
        ("synthetic_3thread_product", synthetic_3thread_product),
    ];
    for (i, (name, build)) in workloads.iter().enumerate() {
        let (verifier, properties) = build();
        let start = Instant::now();
        let outcome = verifier
            .verify(&properties)
            .map_err(|e| format!("{name} verification failed: {e}"))?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = &outcome.stats;
        let states_per_sec = stats.states as f64 / (wall_ms / 1e3);
        let sep = if i + 1 == workloads.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"id\": \"{name}\", \"states\": {}, \"transitions\": {}, \
             \"depth\": {}, \"peak_frontier\": {}, \"pruned\": {}, \
             \"wall_ms\": {wall_ms:.2}, \"states_per_sec\": {states_per_sec:.0}}}{sep}\n",
            stats.states, stats.transitions, stats.depth, stats.peak_frontier, stats.pruned
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"reference\": {{\"id\": \"state_space/case_study_product\", \
         \"pre_refactor_elem_per_s\": {PRE_REFACTOR_CASE_STUDY_ELEM_PER_S:.0}}}\n}}\n"
    ));
    std::fs::write(out_path, &json).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    println!("wrote {out_path} ({} benchmark entries)", lines.len());
    Ok(())
}

fn check(capture: &str, baseline_path: &str) -> Result<(), String> {
    let current = parse_captures(&[capture.to_string()])?;
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
    let mut failures = Vec::new();
    for id in HEADLINE_IDS {
        let Some(reference) = baseline_rate(&baseline, id) else {
            return Err(format!(
                "`{baseline_path}` has no elem_per_s entry for {id}"
            ));
        };
        let Some(measured) = current
            .iter()
            .find(|line| line.id == id)
            .and_then(|line| line.elem_per_s)
        else {
            return Err(format!("the bench capture has no elem/s line for {id}"));
        };
        let ratio = measured / reference;
        println!(
            "{id}: {measured:.0} elem/s vs baseline {reference:.0} elem/s ({:.0}%)",
            ratio * 100.0
        );
        if ratio < REGRESSION_FLOOR {
            failures.push(format!(
                "{id} regressed to {:.0}% of the committed baseline (floor {:.0}%)",
                ratio * 100.0,
                REGRESSION_FLOOR * 100.0
            ));
        }
    }
    if failures.is_empty() {
        println!("bench smoke passed: no headline throughput regression beyond 30%");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Extracts `"elem_per_s": N` from the baseline entry for `id` (the file is
/// written one benchmark entry per line precisely so this stays a line
/// scan, not a JSON parser).
fn baseline_rate(baseline: &str, id: &str) -> Option<f64> {
    let needle = format!("\"id\": \"{id}\"");
    baseline
        .lines()
        .find(|line| line.contains(&needle))?
        .split_once("\"elem_per_s\": ")?
        .1
        .trim_end_matches(['}', ',', ' '])
        .parse()
        .ok()
}

// The two headline workloads, mirroring `benches/state_space.rs` (the
// bench target and this example cannot share code without giving the bench
// crate a library; the duplication is the cheaper coupling).

/// The case-study product over four hyper-periods.
fn case_study_product() -> (ProductVerifier, Vec<Property>) {
    let instance = producer_consumer_instance().unwrap();
    let (models, schedule, connections) =
        system_under_schedule(&instance, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let components: Vec<ProductComponent> = models
        .iter()
        .map(|model| ProductComponent {
            name: model.thread_name.clone(),
            process: model.flat.clone(),
            schedule: model.timing_trace(&schedule, 1),
        })
        .collect();
    let links: Vec<PortLink> = connections.iter().map(port_link_for).collect();
    let system = ProductSystem::new(components, links).unwrap();
    let bound = system.horizon() * 4;
    let properties = vec![
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier =
        ProductVerifier::new(system, VerifyOptions::default().with_depth_bound(bound)).unwrap();
    (verifier, properties)
}

/// The synthetic three-stage pipeline product (horizon 12, four repeats).
fn synthetic_3thread_product() -> (ProductVerifier, Vec<Property>) {
    fn stage(name: &str) -> Process {
        let mut b = ProcessBuilder::new(name);
        b.input("Dispatch", ValueType::Boolean);
        b.input("out_output_time", ValueType::Boolean);
        b.input("in_in", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("seen", ValueType::Integer);
        let prev = Expr::delay(Expr::var("seen"), Value::Int(0));
        b.define(
            "seen",
            Expr::add(
                prev,
                Expr::default(Expr::when(Expr::int(1), Expr::var("in_in")), Expr::int(0)),
            ),
        );
        b.define("Alarm", Expr::ge(Expr::var("seen"), Expr::int(1_000_000)));
        b.synchronize(&["Dispatch", "out_output_time", "in_in", "seen", "Alarm"]);
        b.build().unwrap()
    }
    let horizon = 12usize;
    let mut components = Vec::new();
    for (i, emit_every) in [3usize, 4, 6].into_iter().enumerate() {
        let name = format!("s{i}");
        let mut schedule = Trace::new();
        for t in 0..horizon {
            schedule.set(t, "Dispatch", Value::Bool(t % emit_every == 0));
            schedule.set(t, "out_output_time", Value::Bool(t % emit_every == 1));
            schedule.set(t, "in_in", Value::Bool(false));
        }
        components.push(ProductComponent {
            name,
            process: stage(&format!("stage{i}")),
            schedule,
        });
    }
    let links = vec![
        PortLink {
            name: "l01".into(),
            source: "s0".into(),
            source_signal: "out_output_time".into(),
            target: "s1".into(),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 1,
        },
        PortLink {
            name: "l12".into(),
            source: "s1".into(),
            source_signal: "out_output_time".into(),
            target: "s2".into(),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 1,
        },
    ];
    let system = ProductSystem::new(components, links).unwrap();
    let bound = horizon * 4;
    let properties = vec![
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier =
        ProductVerifier::new(system, VerifyOptions::default().with_depth_bound(bound)).unwrap();
    (verifier, properties)
}
