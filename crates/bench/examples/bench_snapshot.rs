//! Benchmark snapshot tool behind `scripts/bench.sh` and the CI smoke gate.
//!
//! Three modes:
//!
//! ```bash
//! bench_snapshot write [--sha SHA] <criterion-output>... <out.json>
//! bench_snapshot check <criterion-output> <baseline.json>
//! bench_snapshot overhead [reps]
//! ```
//!
//! `write` parses the report lines of the vendored criterion harness
//! (`{group}/{id}: {mean} ns/iter ({n} iterations), {rate} elem/s`) from
//! the captured `cargo bench` output, re-runs the two headline product
//! workloads once to record exact state counts, peak frontier and wall
//! time, measures the `daemon_warm_vs_cold` headline (an 8-variant
//! verification sweep over one model, uncached vs. through the
//! content-addressed artifact cache — asserting report equality and the
//! ≥3x warm speedup on the way), measures the `symbolic_closure` headline
//! (an unbounded invisible counter: concrete bounded exploration vs. the
//! interval domain closing the quotient with a proof — docs/SYMBOLIC.md),
//! and emits a `BENCH_<n>.json` snapshot
//! (one benchmark entry per line, so the file diffs and greps cleanly
//! without a JSON parser); `--sha` stamps the snapshot with the git
//! revision it was measured at.
//!
//! `check` re-parses a fresh `cargo bench --bench state_space` capture and
//! fails (exit 1) when the throughput of a headline benchmark drops more
//! than 30% below the committed baseline.
//!
//! `overhead` measures the telemetry cost on the case-study product: it
//! runs the workload `reps` times (default 5) under each collection mode
//! (noop, counters, full), takes the best wall time per mode — a paired,
//! in-process comparison, so the result is portable across machines where
//! a committed absolute baseline would not be — and fails (exit 1) when
//! `counters` collection costs more than 5% over `noop`. The `full` row is
//! reported for the docs but not gated (event buffering is expected to
//! cost more, and anyone turning it on asked for a trace).

use std::process::ExitCode;
use std::time::Instant;

use aadl::case_study::producer_consumer_instance;
use asme2ssme::system_under_schedule;
use polychrony_core::{
    port_link_for, ArtifactCache, BatchJob, CacheOutcome, PropertySpec, SessionOptions,
};
use polyverify::FrontierMode;
use polyverify::{
    Collector, Domain, InputSpace, PortLink, ProductComponent, ProductSystem, ProductVerifier,
    Property, Verifier, VerifyOptions,
};
use sched::SchedulingPolicy;
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::Trace;
use signal_moc::value::{Value, ValueType};

/// Throughput below this fraction of the committed baseline fails `check`.
const REGRESSION_FLOOR: f64 = 0.7;

/// `overhead` fails when `counters` collection costs more than this factor
/// over `noop` on the case-study product (the ~one-relaxed-atomic-per-state
/// budget of the Counters mode).
const OVERHEAD_CEILING: f64 = 1.05;

/// The benchmarks gated by `check`: only the case-study product — the
/// acceptance workload of the exploration core. The synthetic product runs
/// in ~300µs per iteration and its measured rate swings far more than 30%
/// between runs of a loaded single-core CI box, so it is recorded in the
/// snapshot but not gated.
const HEADLINE_IDS: [&str; 1] = ["state_space/case_study_product"];

/// States/sec of the case-study product measured on the pre-refactor
/// exploration core (level-barrier BFS, byte-vector state keys, no
/// memoisation) — the fixed reference point of the benchmark trajectory.
const PRE_REFACTOR_CASE_STUDY_ELEM_PER_S: f64 = 1487.0;

/// Builds one headline workload: a configured verifier plus its checked
/// properties, with the given collector installed on the engine.
type WorkloadBuilder = fn(&Collector) -> (ProductVerifier, Vec<Property>);

/// One parsed criterion report line.
struct BenchLine {
    id: String,
    ns_per_iter: f64,
    elem_per_s: Option<f64>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("write") if args.len() >= 3 => {
            let (sha, rest) = match args.get(1).map(String::as_str) {
                Some("--sha") if args.len() >= 5 => (Some(args[2].as_str()), &args[3..]),
                _ => (None, &args[1..]),
            };
            write(&rest[..rest.len() - 1], &rest[rest.len() - 1], sha)
        }
        Some("check") if args.len() == 3 => check(&args[1], &args[2]),
        Some("overhead") if args.len() <= 2 => {
            let reps = match args.get(1) {
                Some(n) => n
                    .parse()
                    .map_err(|_| format!("invalid rep count `{n}`"))
                    .and_then(|n: usize| {
                        if n == 0 {
                            Err("rep count must be at least 1".to_string())
                        } else {
                            Ok(n)
                        }
                    }),
                None => Ok(5),
            };
            reps.and_then(overhead)
        }
        _ => Err(
            "usage: bench_snapshot write [--sha SHA] <capture>... <out.json> | \
                  bench_snapshot check <capture> <baseline.json> | \
                  bench_snapshot overhead [reps]"
                .to_string(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_snapshot: {msg}");
            ExitCode::from(1)
        }
    }
}

/// Parses every criterion report line of the captured bench outputs.
fn parse_captures(paths: &[String]) -> Result<Vec<BenchLine>, String> {
    let mut lines = Vec::new();
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        for line in text.lines() {
            if let Some(parsed) = parse_line(line) {
                lines.push(parsed);
            }
        }
    }
    if lines.is_empty() {
        return Err(format!(
            "no criterion report lines found in {}",
            paths.join(", ")
        ));
    }
    Ok(lines)
}

/// Parses `{group}/{id}: {mean} ns/iter ({n} iterations)[, {rate} elem/s]`.
fn parse_line(line: &str) -> Option<BenchLine> {
    let (id, rest) = line.split_once(": ")?;
    if !id.contains('/') || id.contains(' ') {
        return None;
    }
    let (mean, rest) = rest.trim_start().split_once(" ns/iter")?;
    let ns_per_iter: f64 = mean.trim().parse().ok()?;
    let elem_per_s = rest
        .split_once(", ")
        .and_then(|(_, rate)| rate.strip_suffix(" elem/s"))
        .and_then(|rate| rate.trim().parse().ok());
    Some(BenchLine {
        id: id.to_string(),
        ns_per_iter,
        elem_per_s,
    })
}

fn write(captures: &[String], out_path: &str, sha: Option<&str>) -> Result<(), String> {
    let lines = parse_captures(captures)?;
    let mut json = String::from("{\n  \"schema\": \"polychrony-bench-v1\",\n");
    if let Some(sha) = sha {
        json.push_str(&format!("  \"git_sha\": \"{sha}\",\n"));
    }
    json.push_str("  \"benchmarks\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { "" } else { "," };
        match line.elem_per_s {
            Some(rate) => json.push_str(&format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"elem_per_s\": {:.0}}}{sep}\n",
                line.id, line.ns_per_iter, rate
            )),
            None => json.push_str(&format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}\n",
                line.id, line.ns_per_iter
            )),
        }
    }
    json.push_str("  ],\n  \"headline\": [\n");

    let workloads: [(&str, WorkloadBuilder); 2] = [
        ("case_study_product", case_study_product),
        ("synthetic_3thread_product", synthetic_3thread_product),
    ];
    for (i, (name, build)) in workloads.iter().enumerate() {
        let (verifier, properties) = build(&Collector::noop());
        let start = Instant::now();
        let outcome = verifier
            .verify(&properties)
            .map_err(|e| format!("{name} verification failed: {e}"))?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = &outcome.stats;
        let states_per_sec = stats.states as f64 / (wall_ms / 1e3);
        let _ = i;
        json.push_str(&format!(
            "    {{\"id\": \"{name}\", \"states\": {}, \"transitions\": {}, \
             \"depth\": {}, \"peak_frontier\": {}, \"pruned\": {}, \
             \"wall_ms\": {wall_ms:.2}, \"states_per_sec\": {states_per_sec:.0}}},\n",
            stats.states, stats.transitions, stats.depth, stats.peak_frontier, stats.pruned
        ));
    }
    let closure = symbolic_closure_headline()?;
    json.push_str(&format!(
        "    {{\"id\": \"symbolic_closure\", \"concrete_bounded_states\": {}, \
         \"interval_states\": {}, \"widened\": {}, \"projected_states\": {}, \
         \"proved\": true, \"wall_ms\": {:.2}}}\n",
        closure.concrete_states,
        closure.interval_states,
        closure.widened,
        closure.projected_states,
        closure.wall_ms
    ));
    let daemon = daemon_warm_vs_cold()?;
    json.push_str(&format!(
        "  ],\n  \"daemon\": {{\"id\": \"daemon_warm_vs_cold\", \"variants\": {}, \
         \"cold_ms\": {:.2}, \"warm_ms\": {:.2}, \"speedup\": {:.2}, \
         \"reports_identical\": true}},\n",
        daemon.variants, daemon.cold_ms, daemon.warm_ms, daemon.speedup
    ));
    json.push_str(&format!(
        "  \"reference\": {{\"id\": \"state_space/case_study_product\", \
         \"pre_refactor_elem_per_s\": {PRE_REFACTOR_CASE_STUDY_ELEM_PER_S:.0}}}\n}}\n"
    ));
    std::fs::write(out_path, &json).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    println!("wrote {out_path} ({} benchmark entries)", lines.len());
    Ok(())
}

fn check(capture: &str, baseline_path: &str) -> Result<(), String> {
    let current = parse_captures(&[capture.to_string()])?;
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
    let mut failures = Vec::new();
    for id in HEADLINE_IDS {
        let Some(reference) = baseline_rate(&baseline, id) else {
            return Err(format!(
                "`{baseline_path}` has no elem_per_s entry for {id}"
            ));
        };
        let Some(measured) = current
            .iter()
            .find(|line| line.id == id)
            .and_then(|line| line.elem_per_s)
        else {
            return Err(format!("the bench capture has no elem/s line for {id}"));
        };
        let ratio = measured / reference;
        println!(
            "{id}: {measured:.0} elem/s vs baseline {reference:.0} elem/s ({:.0}%)",
            ratio * 100.0
        );
        if ratio < REGRESSION_FLOOR {
            failures.push(format!(
                "{id} regressed to {:.0}% of the committed baseline (floor {:.0}%)",
                ratio * 100.0,
                REGRESSION_FLOOR * 100.0
            ));
        }
    }
    if failures.is_empty() {
        println!("bench smoke passed: no headline throughput regression beyond 30%");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Measures collection overhead on the case-study product. Per mode, the
/// workload is rebuilt with a fresh collector and verified `reps` times;
/// the best wall time per mode feeds the comparison, squeezing scheduler
/// noise out before the ratio is taken.
fn overhead(reps: usize) -> Result<(), String> {
    type CollectorFactory = fn() -> Collector;
    let modes: [(&str, CollectorFactory); 3] = [
        ("noop", Collector::noop),
        ("counters", Collector::counters),
        ("full", Collector::full),
    ];
    let mut results: Vec<(&str, f64, usize)> = Vec::new();
    for (name, make_collector) in modes {
        let mut best_wall_s = f64::INFINITY;
        let mut states = 0usize;
        for _ in 0..reps {
            let collector = make_collector();
            let (verifier, properties) = case_study_product(&collector);
            let start = Instant::now();
            let outcome = verifier
                .verify(&properties)
                .map_err(|e| format!("{name} verification failed: {e}"))?;
            best_wall_s = best_wall_s.min(start.elapsed().as_secs_f64());
            states = outcome.stats.states;
        }
        results.push((name, best_wall_s, states));
    }

    let noop_states = results[0].2;
    for (name, _, states) in &results {
        if *states != noop_states {
            return Err(format!(
                "collection mode changed the result: {name} explored {states} \
                 states, noop explored {noop_states}"
            ));
        }
    }

    let noop_wall_s = results[0].1;
    println!("telemetry overhead, case_study_product, best of {reps} rep(s):");
    println!("  mode      wall_ms  states/s  vs_noop");
    for (name, wall_s, states) in &results {
        println!(
            "  {name:<8} {:>8.2} {:>9.0} {:>7.3}x",
            wall_s * 1e3,
            *states as f64 / wall_s,
            wall_s / noop_wall_s
        );
    }

    let counters_ratio = results[1].1 / noop_wall_s;
    if counters_ratio > OVERHEAD_CEILING {
        return Err(format!(
            "counters mode costs {counters_ratio:.3}x over noop \
             (ceiling {OVERHEAD_CEILING:.2}x)"
        ));
    }
    println!(
        "overhead gate passed: counters is {counters_ratio:.3}x noop \
         (ceiling {OVERHEAD_CEILING:.2}x)"
    );
    Ok(())
}

struct DaemonHeadline {
    variants: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
}

/// Measurements of the `symbolic_closure` headline.
struct SymbolicClosureHeadline {
    concrete_states: usize,
    interval_states: usize,
    widened: usize,
    projected_states: usize,
    wall_ms: f64,
}

/// The `symbolic_closure` headline (docs/SYMBOLIC.md): an unbounded
/// invisible counter explored concretely to a depth bound (never closes,
/// `passed-bounded`) and under the interval domain (widening closes the
/// quotient with a genuine `proved`), plus the `--project-counters`
/// variant. Fails unless the interval runs really prove and really widen.
fn symbolic_closure_headline() -> Result<SymbolicClosureHeadline, String> {
    let mut b = ProcessBuilder::new("toggle");
    b.input("d", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("flag", ValueType::Boolean);
    b.local("total", ValueType::Integer);
    b.define(
        "flag",
        Expr::not(Expr::delay(Expr::var("flag"), Value::Bool(false))),
    );
    b.define(
        "total",
        Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
    );
    b.define(
        "Alarm",
        Expr::and(Expr::var("d"), Expr::not(Expr::var("d"))),
    );
    b.synchronize(&["d", "flag", "total", "Alarm"]);
    let process = b.build().map_err(|e| format!("toggle fixture: {e}"))?;
    let properties = [Property::NeverRaised("*Alarm*".into())];
    let run = |options: VerifyOptions| {
        Verifier::new(&process, options)
            .map_err(|e| format!("symbolic_closure verifier: {e}"))?
            .verify(&InputSpace::Free, &properties)
            .map_err(|e| format!("symbolic_closure verification: {e}"))
    };
    let concrete = run(VerifyOptions::default()
        .with_workers(2)
        .with_depth_bound(24))?;
    let start = Instant::now();
    let interval = run(VerifyOptions::default()
        .with_workers(2)
        .with_domain(Domain::Interval))?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let projected = run(VerifyOptions::default()
        .with_workers(2)
        .with_domain(Domain::Interval)
        .with_project_counters(true))?;
    if !interval.all_proved() || !projected.all_proved() {
        return Err("symbolic_closure: the interval domain failed to prove".into());
    }
    if interval.stats.widened == 0 {
        return Err("symbolic_closure: nothing widened".into());
    }
    Ok(SymbolicClosureHeadline {
        concrete_states: concrete.stats.states,
        interval_states: interval.stats.states,
        widened: interval.stats.widened,
        projected_states: projected.stats.states,
        wall_ms,
    })
}

/// The `daemon_warm_vs_cold` headline: the same model swept through 8
/// verification-option variants, first uncached (every variant pays the
/// full parse-through-simulate front end), then through a pre-warmed
/// [`ArtifactCache`] (every variant reuses the simulated artifact and
/// re-runs only verification). Fails unless every warm report is
/// bit-identical to its cold twin and the sweep is at least 3x faster.
fn daemon_warm_vs_cold() -> Result<DaemonHeadline, String> {
    let mut jobs = Vec::new();
    for frontier in [FrontierMode::WorkStealing, FrontierMode::Barrier] {
        for pruning in [true, false] {
            for with_property in [false, true] {
                // Tool-chain default front end (four simulated
                // hyper-periods, VCD capture) — the service-shaped
                // workload the cache exists for — with a cheap verify
                // phase per variant: the case study explores ~25 states
                // per thread, so one in-process worker and a small
                // interner pre-allocation fit it.
                let mut options = SessionOptions::default();
                options.verify.workers = 1;
                options.verify.frontier = frontier;
                options.verify.pruning = pruning;
                options.verify.interner_capacity = 64;
                if with_property {
                    options.verify.properties = vec![PropertySpec::new("never raised(*Alarm*)")];
                }
                let name = format!(
                    "sweep-{frontier:?}-prune{}-p{}",
                    u8::from(pruning),
                    u8::from(with_property)
                );
                jobs.push(BatchJob::case_study(name).with_options(options));
            }
        }
    }

    // Best-of-N per side, like the `overhead` gate: one sweep is ~tens of
    // milliseconds, so a single timing is at the mercy of the scheduler.
    const REPS: usize = 5;
    let mut cold = Vec::new();
    let mut cold_ms = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        cold = jobs
            .iter()
            .map(|job| job.run().map_err(|e| format!("cold run failed: {e}")))
            .collect::<Result<_, _>>()?;
        cold_ms = cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }

    let cache = ArtifactCache::new();
    jobs[0]
        .run_cached(&cache)
        .map_err(|e| format!("cache priming failed: {e}"))?;
    let mut warm = Vec::new();
    let mut warm_ms = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        warm = jobs
            .iter()
            .map(|job| {
                job.run_cached(&cache)
                    .map_err(|e| format!("warm run failed: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }

    for (i, (cold_report, (warm_report, outcome))) in cold.iter().zip(&warm).enumerate() {
        if *outcome != CacheOutcome::SimulatedHit {
            return Err(format!(
                "sweep variant {i} did not hit the simulated cache (got {outcome})"
            ));
        }
        if cold_report != warm_report {
            return Err(format!(
                "sweep variant {i}: warm report diverges from the cold run"
            ));
        }
    }

    let speedup = cold_ms / warm_ms;
    println!(
        "daemon_warm_vs_cold: {} variants, cold {cold_ms:.2} ms, warm {warm_ms:.2} ms \
         ({speedup:.2}x)",
        jobs.len()
    );
    if speedup < 3.0 {
        return Err(format!(
            "warm-cache sweep is only {speedup:.2}x faster than cold (floor 3x)"
        ));
    }
    Ok(DaemonHeadline {
        variants: jobs.len(),
        cold_ms,
        warm_ms,
        speedup,
    })
}

/// Extracts `"elem_per_s": N` from the baseline entry for `id` (the file is
/// written one benchmark entry per line precisely so this stays a line
/// scan, not a JSON parser).
fn baseline_rate(baseline: &str, id: &str) -> Option<f64> {
    let needle = format!("\"id\": \"{id}\"");
    baseline
        .lines()
        .find(|line| line.contains(&needle))?
        .split_once("\"elem_per_s\": ")?
        .1
        .trim_end_matches(['}', ',', ' '])
        .parse()
        .ok()
}

// The two headline workloads, mirroring `benches/state_space.rs` (the
// bench target and this example cannot share code without giving the bench
// crate a library; the duplication is the cheaper coupling).

/// The case-study product over four hyper-periods.
fn case_study_product(collector: &Collector) -> (ProductVerifier, Vec<Property>) {
    let instance = producer_consumer_instance().unwrap();
    let (models, schedule, connections) =
        system_under_schedule(&instance, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
    let components: Vec<ProductComponent> = models
        .iter()
        .map(|model| ProductComponent {
            name: model.thread_name.clone(),
            process: model.flat.clone(),
            schedule: model.timing_trace(&schedule, 1),
        })
        .collect();
    let links: Vec<PortLink> = connections.iter().map(port_link_for).collect();
    let system = ProductSystem::new(components, links).unwrap();
    let bound = system.horizon() * 4;
    let properties = vec![
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier = ProductVerifier::new(
        system,
        VerifyOptions::default()
            .with_depth_bound(bound)
            .with_collector(collector.clone()),
    )
    .unwrap();
    (verifier, properties)
}

/// The synthetic three-stage pipeline product (horizon 12, four repeats).
fn synthetic_3thread_product(collector: &Collector) -> (ProductVerifier, Vec<Property>) {
    fn stage(name: &str) -> Process {
        let mut b = ProcessBuilder::new(name);
        b.input("Dispatch", ValueType::Boolean);
        b.input("out_output_time", ValueType::Boolean);
        b.input("in_in", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("seen", ValueType::Integer);
        let prev = Expr::delay(Expr::var("seen"), Value::Int(0));
        b.define(
            "seen",
            Expr::add(
                prev,
                Expr::default(Expr::when(Expr::int(1), Expr::var("in_in")), Expr::int(0)),
            ),
        );
        b.define("Alarm", Expr::ge(Expr::var("seen"), Expr::int(1_000_000)));
        b.synchronize(&["Dispatch", "out_output_time", "in_in", "seen", "Alarm"]);
        b.build().unwrap()
    }
    let horizon = 12usize;
    let mut components = Vec::new();
    for (i, emit_every) in [3usize, 4, 6].into_iter().enumerate() {
        let name = format!("s{i}");
        let mut schedule = Trace::new();
        for t in 0..horizon {
            schedule.set(t, "Dispatch", Value::Bool(t % emit_every == 0));
            schedule.set(t, "out_output_time", Value::Bool(t % emit_every == 1));
            schedule.set(t, "in_in", Value::Bool(false));
        }
        components.push(ProductComponent {
            name,
            process: stage(&format!("stage{i}")),
            schedule,
        });
    }
    let links = vec![
        PortLink {
            name: "l01".into(),
            source: "s0".into(),
            source_signal: "out_output_time".into(),
            target: "s1".into(),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 1,
        },
        PortLink {
            name: "l12".into(),
            source: "s1".into(),
            source_signal: "out_output_time".into(),
            target: "s2".into(),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 1,
        },
    ];
    let system = ProductSystem::new(components, links).unwrap();
    let bound = horizon * 4;
    let properties = vec![
        Property::NeverRaised("*Alarm*".into()),
        Property::DeadlockFree,
    ];
    let verifier = ProductVerifier::new(
        system,
        VerifyOptions::default()
            .with_depth_bound(bound)
            .with_collector(collector.clone()),
    )
    .unwrap();
    (verifier, properties)
}
