//! Greedy deterministic shrinking of failing systems.
//!
//! Given a [`SystemSpec`] and a reproduction predicate, [`shrink`] tries a
//! fixed catalogue of reductions — drop a thread, drop a connection, step
//! a period down the menu, reset WCETs, shrink the verification window and
//! worker count — adopting the first candidate that still reproduces the
//! finding and restarting until no candidate does (or the budget runs
//! out). The candidate order is fixed, so the same finding always shrinks
//! to the same minimal system.

use crate::gen::{SystemSpec, PERIOD_MENU_MS};

/// All one-step reductions of `spec`, most aggressive first (dropping a
/// whole thread beats trimming a period).
fn candidates(spec: &SystemSpec) -> Vec<SystemSpec> {
    let mut out = Vec::new();
    if spec.threads.len() > 1 {
        for dropped in 0..spec.threads.len() {
            let mut candidate = spec.clone();
            candidate.threads.remove(dropped);
            candidate
                .connections
                .retain(|c| c.from != dropped && c.to != dropped);
            for connection in &mut candidate.connections {
                if connection.from > dropped {
                    connection.from -= 1;
                }
                if connection.to > dropped {
                    connection.to -= 1;
                }
            }
            out.push(candidate);
        }
    }
    for dropped in 0..spec.connections.len() {
        let mut candidate = spec.clone();
        candidate.connections.remove(dropped);
        out.push(candidate);
    }
    for (i, thread) in spec.threads.iter().enumerate() {
        if let Some(position) = PERIOD_MENU_MS.iter().position(|&p| p == thread.period_ms) {
            if position > 0 {
                let mut candidate = spec.clone();
                candidate.threads[i].period_ms = PERIOD_MENU_MS[position - 1];
                candidate.threads[i].wcet_ms = candidate.threads[i]
                    .wcet_ms
                    .min(candidate.threads[i].period_ms);
                out.push(candidate);
            }
        }
    }
    for (i, thread) in spec.threads.iter().enumerate() {
        if thread.wcet_ms > 1 {
            let mut candidate = spec.clone();
            candidate.threads[i].wcet_ms = 1;
            out.push(candidate);
        }
    }
    if spec.hyperperiods > 1 {
        let mut candidate = spec.clone();
        candidate.hyperperiods = 1;
        out.push(candidate);
    }
    if spec.workers > 1 {
        let mut candidate = spec.clone();
        candidate.workers = 1;
        out.push(candidate);
    }
    out
}

/// Shrinks `spec` while `reproduces` holds, spending at most `budget`
/// candidate checks. Returns the minimal spec and the number of
/// candidates checked.
pub fn shrink<F>(spec: SystemSpec, reproduces: F, budget: usize) -> (SystemSpec, usize)
where
    F: Fn(&SystemSpec) -> bool,
{
    let mut current = spec;
    let mut attempts = 0;
    'adopt: loop {
        for candidate in candidates(&current) {
            if attempts >= budget {
                break 'adopt;
            }
            attempts += 1;
            if reproduces(&candidate) {
                current = candidate;
                continue 'adopt;
            }
        }
        break;
    }
    (current, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ConnectionSpec, ThreadSpec};

    fn wide_spec() -> SystemSpec {
        SystemSpec {
            threads: vec![
                ThreadSpec {
                    period_ms: 32,
                    wcet_ms: 2,
                },
                ThreadSpec {
                    period_ms: 16,
                    wcet_ms: 1,
                },
                ThreadSpec {
                    period_ms: 8,
                    wcet_ms: 1,
                },
            ],
            connections: vec![ConnectionSpec { from: 0, to: 2 }],
            workers: 2,
            hyperperiods: 2,
        }
    }

    #[test]
    fn an_always_reproducing_finding_shrinks_to_one_minimal_thread() {
        let (minimal, attempts) = shrink(wide_spec(), |_| true, 500);
        assert_eq!(minimal.threads.len(), 1);
        assert!(minimal.connections.is_empty());
        assert_eq!(minimal.threads[0].period_ms, 4);
        assert_eq!(minimal.threads[0].wcet_ms, 1);
        assert_eq!(minimal.hyperperiods, 1);
        assert_eq!(minimal.workers, 1);
        assert!(attempts > 0);
    }

    #[test]
    fn shrinking_preserves_the_predicate_and_is_deterministic() {
        // Reproduction requires the connection: threads 0 and 2 must
        // survive (reindexed), every other reduction applies.
        let needs_link = |spec: &SystemSpec| !spec.connections.is_empty();
        let (a, _) = shrink(wide_spec(), needs_link, 500);
        let (b, _) = shrink(wide_spec(), needs_link, 500);
        assert_eq!(a, b);
        assert!(needs_link(&a));
        assert_eq!(a.threads.len(), 2);
    }

    #[test]
    fn the_budget_bounds_the_work() {
        let (_, attempts) = shrink(wide_spec(), |_| false, 3);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn a_never_reproducing_finding_keeps_the_original() {
        let spec = wide_spec();
        let (kept, _) = shrink(spec.clone(), |_| false, 500);
        assert_eq!(kept, spec);
    }
}
