//! One scenario end to end: pipeline, cross-check oracles, fault
//! injection.
//!
//! [`run_scenario`] is the single code path shared by the harness loop,
//! the shrinker's reproduction predicate and `--replay`, so a finding can
//! never depend on which of the three asked.

use std::panic::{catch_unwind, AssertUnwindSafe};

use polychrony_core::polysim::Simulator;
use polychrony_core::polyverify::ltl::first_violation;
use polychrony_core::polyverify::{
    inject_connection_latency, inject_counter_drift, inject_deadline_overrun,
    inject_dispatch_jitter, inject_dropped_delivery, inject_schedule_corruption, Counterexample,
    Domain, Formula, InputSpace, LockstepCoSim, LtlProperty, Property, Verdict,
    VerificationOutcome, Verifier, VerifyOptions,
};
use polychrony_core::signal_moc::process::Process;
use polychrony_core::signal_moc::trace::{Trace, TraceStep};
use polychrony_core::{end_to_end_response_for, ArtifactCache, CacheOutcome, Simulated};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::SystemSpec;
use crate::{FaultKind, FindingKind};

/// How a scenario resolved when no oracle disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioOutcome {
    /// Pipeline and every oracle passed (and, in fault mode, the injection
    /// had nothing to bite on — e.g. no deadline to miss).
    Passed,
    /// The pipeline rejected the generated system — consistently across
    /// cached and uncached runs (e.g. an unschedulable task set). A valid
    /// outcome, not a finding.
    Rejected {
        /// The pipeline's error message.
        error: String,
    },
    /// An injected fault was caught by verification, with a replayed
    /// counterexample.
    FaultDetected {
        /// The injected fault.
        fault: FaultKind,
        /// Name of the property that caught it.
        property: String,
        /// Violation instant of the counterexample.
        instant: usize,
    },
}

/// An oracle disagreement or panic — the raw material of a
/// [`Finding`](crate::Finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The classification the shrinker preserves.
    pub kind: FindingKind,
    /// Human-readable detail from the failing oracle.
    pub detail: String,
}

fn fail(kind: FindingKind, detail: String) -> Failure {
    Failure { kind, detail }
}

/// Checks one scenario: builds the system, runs the cache oracle, the
/// monitor and lockstep oracles, and (in fault mode) the injection stage.
/// Panics anywhere inside are caught and reported as
/// [`FindingKind::Panic`] findings. Deterministic in `(spec, seed,
/// fault)`.
pub fn run_scenario(
    spec: &SystemSpec,
    seed: u64,
    fault: Option<FaultKind>,
) -> Result<ScenarioOutcome, Failure> {
    match catch_unwind(AssertUnwindSafe(|| check_spec(spec, seed, fault))) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            Err(fail(FindingKind::Panic, format!("panicked: {message}")))
        }
    }
}

fn check_spec(
    spec: &SystemSpec,
    seed: u64,
    fault: Option<FaultKind>,
) -> Result<ScenarioOutcome, Failure> {
    let job = spec.batch_job(seed);

    // Cache oracle: the uncached run, a cold cached run and a warm cached
    // run must agree — identical reports, or identical rejections.
    let direct = job.run();
    let cache = ArtifactCache::new();
    let cold = job.run_cached(&cache);
    let warm = job.run_cached(&cache);
    match (&direct, &cold, &warm) {
        (Err(d), Err(c), Err(w)) => {
            let (d, c, w) = (d.to_string(), c.to_string(), w.to_string());
            if d != c || d != w {
                return Err(fail(
                    FindingKind::CacheMismatch,
                    format!(
                        "rejection drifted: uncached {d:?}, cold cached {c:?}, warm cached {w:?}"
                    ),
                ));
            }
            return Ok(ScenarioOutcome::Rejected { error: d });
        }
        (Ok(direct), Ok((cold, cold_outcome)), Ok((warm, warm_outcome))) => {
            if *cold_outcome != CacheOutcome::Miss || *warm_outcome != CacheOutcome::SimulatedHit {
                return Err(fail(
                    FindingKind::CacheMismatch,
                    format!(
                        "cache outcomes were {cold_outcome} then {warm_outcome}, expected miss then simulated-hit"
                    ),
                ));
            }
            if direct != cold {
                return Err(fail(
                    FindingKind::CacheMismatch,
                    "cold cached report differs from the uncached report".into(),
                ));
            }
            if cold != warm {
                return Err(fail(
                    FindingKind::CacheMismatch,
                    "warm cached report differs from the cold cached report".into(),
                ));
            }
        }
        _ => {
            let side = |r: &Result<_, _>| if r.is_ok() { "accepts" } else { "rejects" };
            return Err(fail(
                FindingKind::CacheMismatch,
                format!(
                    "uncached run {} the system but cached runs {}/{} it",
                    side(&direct.as_ref().map(|_| ())),
                    side(&cold.as_ref().map(|_| ())),
                    side(&warm.as_ref().map(|_| ()))
                ),
            ));
        }
    }

    // The simulated artifact for the deeper oracles — a third lookup, which
    // must also hit.
    let (simulated, outcome) = cache
        .simulated_for(&job.source, &job.root, &job.options)
        .map_err(|e| {
            fail(
                FindingKind::CacheMismatch,
                format!("simulated artifact lookup failed after two successful runs: {e}"),
            )
        })?;
    if outcome != CacheOutcome::SimulatedHit {
        return Err(fail(
            FindingKind::CacheMismatch,
            format!("third lookup resolved as {outcome}, expected simulated-hit"),
        ));
    }

    // Monitor oracle: seeded random past-time LTL formulas, compiled
    // monitors versus reference trace semantics.
    monitor_oracle(&simulated, seed)?;

    // Lockstep oracle: every product verdict re-derived by brute-force
    // joint co-simulation.
    if !simulated.connections.is_empty() {
        lockstep_oracle(&simulated, spec.hyperperiods)?;
    }

    // Domain oracle: the target unit re-verified under the interval
    // abstraction, with and without counter projection.
    domain_oracle(&simulated, seed)?;

    match fault {
        None => Ok(ScenarioOutcome::Passed),
        Some(kind) => inject_and_check(kind, &simulated, spec, seed),
    }
}

/// Index of the thread unit a per-thread fault targets. Derived from the
/// seed modulo the *current* unit count, so the choice stays valid while
/// the shrinker drops threads.
fn target_unit(simulated: &Simulated, seed: u64) -> usize {
    (seed as usize) % simulated.thread_units.len().max(1)
}

fn monitor_oracle(simulated: &Simulated, seed: u64) -> Result<(), Failure> {
    let unit = &simulated.thread_units[target_unit(simulated, seed)];
    let inputs = unit.model.timing_trace(&simulated.schedule, 1);
    let resolved = Simulator::new(&unit.model.flat)
        .and_then(|mut simulator| simulator.run(&inputs))
        .map_err(|e| {
            fail(
                FindingKind::MonitorMismatch,
                format!("the simulator rejected the pipeline's own scheduled trace: {e}"),
            )
        })?;
    let steps: Vec<TraceStep> = resolved.iter().cloned().collect();
    let signals = resolved.signals();
    if signals.is_empty() || steps.is_empty() {
        return Ok(());
    }
    // A distinct stream from the generator's so formula draws cannot
    // correlate with topology draws.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
    for _ in 0..4 {
        let property = LtlProperty::always(random_formula(&mut rng, &signals, 3));
        let reference = first_violation(property.invariant(), &steps);
        let verifier = Verifier::new(
            &unit.model.flat,
            VerifyOptions::default()
                .with_workers(1)
                .with_depth_bound(inputs.len()),
        )
        .map_err(|e| {
            fail(
                FindingKind::MonitorMismatch,
                format!("verifier construction failed: {e}"),
            )
        })?;
        let outcome = verifier
            .verify(
                &InputSpace::Scheduled(inputs.clone()),
                &[Property::Ltl(property.clone())],
            )
            .map_err(|e| {
                fail(
                    FindingKind::MonitorMismatch,
                    format!(
                        "monitored verification of `{}` failed: {e}",
                        property.expr()
                    ),
                )
            })?;
        let verdict = &outcome.verdicts[0].verdict;
        let monitored = violation_instant(verdict);
        if monitored != reference {
            return Err(fail(
                FindingKind::MonitorMismatch,
                format!(
                    "`{}`: monitor automaton says {monitored:?}, reference trace semantics says {reference:?}",
                    property.expr()
                ),
            ));
        }
        if let Verdict::Violated(cex) = verdict {
            replay_in_simulator(cex, &unit.model.flat, property.expr())?;
        }
    }
    Ok(())
}

/// A seeded random past-time LTL formula over the scenario's signal pool.
fn random_formula(rng: &mut StdRng, signals: &[String], depth: usize) -> Formula {
    let pick = |rng: &mut StdRng| signals[rng.gen_range(0..signals.len())].clone();
    if depth == 0 || rng.gen_range(0..4u32) == 0 {
        return match rng.gen_range(0..4u32) {
            0 => Formula::Const(rng.gen_bool(0.5)),
            1 => Formula::present(pick(rng)),
            2 => Formula::signal(pick(rng)),
            _ => Formula::raised(format!("*{}*", pick(rng))),
        };
    }
    match rng.gen_range(0..9u32) {
        0 => Formula::not(random_formula(rng, signals, depth - 1)),
        1 => Formula::and(
            random_formula(rng, signals, depth - 1),
            random_formula(rng, signals, depth - 1),
        ),
        2 => Formula::or(
            random_formula(rng, signals, depth - 1),
            random_formula(rng, signals, depth - 1),
        ),
        3 => Formula::implies(
            random_formula(rng, signals, depth - 1),
            random_formula(rng, signals, depth - 1),
        ),
        4 => Formula::previously(random_formula(rng, signals, depth - 1)),
        5 => Formula::once(random_formula(rng, signals, depth - 1)),
        6 => Formula::historically(random_formula(rng, signals, depth - 1)),
        7 => Formula::since(
            random_formula(rng, signals, depth - 1),
            random_formula(rng, signals, depth - 1),
        ),
        _ => Formula::within(
            random_formula(rng, signals, depth - 1),
            random_formula(rng, signals, depth - 1),
            rng.gen_range(1..4u32),
        ),
    }
}

fn violation_instant(verdict: &Verdict) -> Option<usize> {
    match verdict {
        Verdict::Violated(cex) => Some(cex.violation_instant),
        _ => None,
    }
}

fn replay_in_simulator(cex: &Counterexample, process: &Process, what: &str) -> Result<(), Failure> {
    match cex.replay(process) {
        Ok(replay) if replay.reproduced => Ok(()),
        Ok(replay) => Err(fail(
            FindingKind::ReplayFailed,
            format!(
                "counterexample of `{what}` did not reproduce: {}",
                replay.detail
            ),
        )),
        Err(e) => Err(fail(
            FindingKind::ReplayFailed,
            format!("counterexample of `{what}` failed to replay: {e}"),
        )),
    }
}

/// The verdict shapes two verification domains must agree on: the verdict
/// kind and the instant of a violation — not state counts (the abstraction
/// merges states by design).
fn verdict_shapes(outcome: &VerificationOutcome) -> Vec<String> {
    outcome
        .verdicts
        .iter()
        .map(|pv| match &pv.verdict {
            Verdict::Proved => "proved".to_string(),
            Verdict::PassedBounded { depth } => format!("passed-bounded@{depth}"),
            Verdict::Violated(cex) => format!("violated@{}", cex.violation_instant),
        })
        .collect()
}

/// Re-verifies `process` under the interval abstraction — once plain, once
/// with counter projection — and demands agreement with the already
/// computed `concrete` outcome. The abstraction may *strengthen* a
/// `PassedBounded` into a genuine `Proved` (widening closed a space the
/// depth bound truncated); every other shape difference — above all a
/// missed or displaced violation — is a finding. Every abstract
/// counterexample must replay in the simulator: projection must never mask
/// a property that reads the projected slot.
fn interval_agreement(
    process: &Process,
    inputs: &Trace,
    properties: &[Property],
    concrete: &VerificationOutcome,
    context: &str,
) -> Result<(), Failure> {
    let reference = verdict_shapes(concrete);
    let agrees = |abstracted: &str, concrete: &str| {
        abstracted == concrete || (abstracted == "proved" && concrete.starts_with("passed-bounded"))
    };
    for project in [false, true] {
        let verifier = Verifier::new(
            process,
            VerifyOptions::default()
                .with_workers(1)
                .with_depth_bound(inputs.len())
                .with_domain(Domain::Interval)
                .with_project_counters(project),
        )
        .map_err(|e| {
            fail(
                FindingKind::DomainMismatch,
                format!("interval verifier construction failed on {context}: {e}"),
            )
        })?;
        let interval = verifier
            .verify(&InputSpace::Scheduled(inputs.clone()), properties)
            .map_err(|e| {
                fail(
                    FindingKind::DomainMismatch,
                    format!("interval verification of {context} failed: {e}"),
                )
            })?;
        let shapes = verdict_shapes(&interval);
        let mismatch = shapes.len() != reference.len()
            || shapes.iter().zip(&reference).any(|(a, c)| !agrees(a, c));
        if mismatch {
            return Err(fail(
                FindingKind::DomainMismatch,
                format!(
                    "on {context} the interval domain (project_counters={project}) says \
                     {shapes:?} where the concrete engine says {reference:?}"
                ),
            ));
        }
        for (property, cex) in interval.violations() {
            replay_in_simulator(cex, process, &property.name())?;
        }
    }
    Ok(())
}

/// Domain oracle: the target unit's scheduled behaviour verified by the
/// concrete engine, then cross-checked against the interval abstraction.
fn domain_oracle(simulated: &Simulated, seed: u64) -> Result<(), Failure> {
    let unit = &simulated.thread_units[target_unit(simulated, seed)];
    let inputs = unit.model.timing_trace(&simulated.schedule, 1);
    if inputs.is_empty() {
        return Ok(());
    }
    let properties = [Property::NeverRaised("*Alarm*".into())];
    let verifier = Verifier::new(
        &unit.model.flat,
        VerifyOptions::default()
            .with_workers(1)
            .with_depth_bound(inputs.len()),
    )
    .map_err(|e| {
        fail(
            FindingKind::DomainMismatch,
            format!("verifier construction failed on the scheduled thread: {e}"),
        )
    })?;
    let concrete = verifier
        .verify(&InputSpace::Scheduled(inputs.clone()), &properties)
        .map_err(|e| {
            fail(
                FindingKind::DomainMismatch,
                format!("concrete verification of the scheduled thread failed: {e}"),
            )
        })?;
    interval_agreement(
        &unit.model.flat,
        &inputs,
        &properties,
        &concrete,
        "the scheduled thread",
    )
}

fn lockstep_oracle(simulated: &Simulated, hyperperiods: u64) -> Result<(), Failure> {
    let verified = simulated.verify_product().map_err(|e| {
        fail(
            FindingKind::LockstepMismatch,
            format!("product verification failed on a pipeline-accepted system: {e}"),
        )
    })?;
    let system = verified.verifier.system();
    let ticks = system.horizon() * hyperperiods as usize;
    let mut cosim = LockstepCoSim::new(system).map_err(|e| {
        fail(
            FindingKind::LockstepMismatch,
            format!("lockstep co-simulation failed to assemble: {e}"),
        )
    })?;
    let (joint, failure) = cosim.run(ticks);
    let steps: Vec<TraceStep> = joint.iter().cloned().collect();
    for pv in &verified.outcome.verdicts {
        let reference = reference_violation(&pv.property, &steps, failure.as_ref().map(|f| f.tick));
        let monitored = violation_instant(&pv.verdict);
        if monitored != reference {
            return Err(fail(
                FindingKind::LockstepMismatch,
                format!(
                    "{}: product checker says {monitored:?}, lockstep co-simulation says {reference:?}",
                    pv.property.name()
                ),
            ));
        }
        if let Verdict::Violated(cex) = &pv.verdict {
            match verified.verifier.replay(cex) {
                Ok(replay) if replay.reproduced => {}
                Ok(replay) => {
                    return Err(fail(
                        FindingKind::ReplayFailed,
                        format!(
                            "product counterexample of {} did not reproduce: {}",
                            pv.property.name(),
                            replay.detail
                        ),
                    ))
                }
                Err(e) => {
                    return Err(fail(
                        FindingKind::ReplayFailed,
                        format!(
                            "product counterexample of {} failed to replay: {e}",
                            pv.property.name()
                        ),
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Re-derives a property's earliest violation instant from the joint
/// lockstep trace, independently of the checker's compiled monitors.
fn reference_violation(
    property: &Property,
    steps: &[TraceStep],
    deadlock_tick: Option<usize>,
) -> Option<usize> {
    match property {
        Property::NeverRaised(pattern) => steps.iter().position(|step| {
            step.iter()
                .any(|(name, value)| pattern_matches(pattern, name) && value.as_bool())
        }),
        Property::DeadlockFree => deadlock_tick,
        Property::BoundedResponse { .. } | Property::EndToEndResponse { .. } => {
            let (trigger, response, bound) = property
                .monitor_spec()
                .expect("response properties expose a monitor spec");
            let mut register = u32::MAX;
            let mut expired = None;
            for (t, step) in steps.iter().enumerate() {
                let response_now = step.get(response).map(|v| v.as_bool()).unwrap_or(false);
                if register != u32::MAX {
                    if response_now {
                        register = u32::MAX;
                    } else {
                        register -= 1;
                        if register == 0 {
                            expired = Some(t);
                            break;
                        }
                    }
                }
                let trigger_now = step.get(trigger).map(|v| v.as_bool()).unwrap_or(false);
                if trigger_now && !response_now && register == u32::MAX {
                    if bound == 0 {
                        expired = Some(t);
                        break;
                    }
                    register = bound;
                }
            }
            expired
        }
        Property::Ltl(ltl) => first_violation(ltl.invariant(), steps),
    }
}

/// Local glob matcher mirroring the checker's `NeverRaised` patterns, so
/// the cross-validation does not reuse the checker's own matcher.
fn pattern_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_prefix('*') {
        Some(rest) => match rest.strip_suffix('*') {
            Some(middle) => middle.is_empty() || name.contains(middle),
            None => name.ends_with(rest),
        },
        None => match pattern.strip_suffix('*') {
            Some(prefix) => name.starts_with(prefix),
            None => name == pattern,
        },
    }
}

fn inject_and_check(
    kind: FaultKind,
    simulated: &Simulated,
    spec: &SystemSpec,
    seed: u64,
) -> Result<ScenarioOutcome, Failure> {
    match kind {
        FaultKind::DeadlineOverrun => {
            let unit = &simulated.thread_units[target_unit(simulated, seed)];
            let mut inputs = unit.model.timing_trace(&simulated.schedule, 1);
            if inject_deadline_overrun(&mut inputs, "").is_none() {
                return Ok(ScenarioOutcome::Passed);
            }
            let property = Property::NeverRaised("*Alarm*".into());
            expect_violation(kind, &unit.model.flat, inputs, property)
        }
        FaultKind::ConnectionLatency | FaultKind::DroppedDelivery => {
            let mut links = simulated.product_links();
            if links.is_empty() {
                return Ok(ScenarioOutcome::Passed);
            }
            let name = links[(seed as usize) % links.len()].name.clone();
            // The whole verification window: latency past it means no
            // delivery is ever wired, so the first emission's response
            // deadline is guaranteed to expire inside the window.
            let window = simulated.schedule.hyperperiod as usize * spec.hyperperiods as usize;
            let injected = match kind {
                FaultKind::ConnectionLatency => {
                    inject_connection_latency(&mut links, &name, window).is_some()
                }
                _ => inject_dropped_delivery(&mut links, &name, window).is_some(),
            };
            if !injected {
                return Ok(ScenarioOutcome::Passed);
            }
            let tampered = links
                .iter()
                .find(|link| link.name == name)
                .expect("the tampered link exists")
                .clone();
            let property = end_to_end_response_for(
                &tampered,
                &simulated.tasks,
                simulated.schedule.hyperperiod,
            );
            let verified = simulated.verify_product_with_links(links).map_err(|e| {
                fail(
                    FindingKind::FaultUndetected,
                    format!("product verification of the tampered links failed: {e}"),
                )
            })?;
            let pv = verified
                .outcome
                .verdicts
                .iter()
                .find(|pv| pv.property.name() == property.name())
                .ok_or_else(|| {
                    fail(
                        FindingKind::FaultUndetected,
                        format!("no verdict for {} on the tampered product", property.name()),
                    )
                })?;
            match &pv.verdict {
                Verdict::Violated(cex) => {
                    match verified.verifier.replay(cex) {
                        Ok(replay) if replay.reproduced => {}
                        Ok(replay) => {
                            return Err(fail(
                                FindingKind::ReplayFailed,
                                format!(
                                    "tampered-link counterexample did not reproduce: {}",
                                    replay.detail
                                ),
                            ))
                        }
                        Err(e) => {
                            return Err(fail(
                                FindingKind::ReplayFailed,
                                format!("tampered-link counterexample failed to replay: {e}"),
                            ))
                        }
                    }
                    Ok(ScenarioOutcome::FaultDetected {
                        fault: kind,
                        property: property.name(),
                        instant: cex.violation_instant,
                    })
                }
                _ => Err(fail(
                    FindingKind::FaultUndetected,
                    format!(
                        "{kind} on `{name}` (latency past the {window}-tick window) left {} unviolated",
                        property.name()
                    ),
                )),
            }
        }
        FaultKind::DispatchJitter | FaultKind::CorruptedSchedule => {
            let unit = &simulated.thread_units[target_unit(simulated, seed)];
            let mut inputs = unit.model.timing_trace(&simulated.schedule, 1);
            let injected = match kind {
                FaultKind::DispatchJitter => {
                    inject_dispatch_jitter(&mut inputs, "", 1 + (seed as usize) % 3).is_some()
                }
                _ => inject_schedule_corruption(&mut inputs, seed, 2).is_some(),
            };
            if !injected {
                return Ok(ScenarioOutcome::Passed);
            }
            // No detection guarantee for these faults — the tampered
            // schedule may still satisfy every property. The oracles are
            // agreement and replay: any violation must replay, and a pass
            // must agree with the simulator's view of the tampered trace.
            agreement_under_tampering(kind, &unit.model.flat, inputs)
        }
        FaultKind::CounterDrift => {
            let unit = &simulated.thread_units[target_unit(simulated, seed)];
            let mut process = unit.model.flat.clone();
            let Some(drifted) = inject_counter_drift(&mut process, seed, 1 + (seed % 3) as i64)
            else {
                return Ok(ScenarioOutcome::Passed);
            };
            let inputs = unit.model.timing_trace(&simulated.schedule, 1);
            // Two properties: the usual alarm check, and a probe that
            // *reads* the drifted signal (an integer signal is `true`-ish
            // when non-zero). The probe forces the drifted slot concrete
            // under counter projection — projection must never mask a
            // property that reads the slot — and makes the drift
            // detectable whenever the signal becomes non-zero. The oracle
            // is dual-domain agreement on the drifted process; any
            // violation must still replay.
            let properties = [
                Property::NeverRaised("*Alarm*".into()),
                Property::Ltl(LtlProperty::never(Formula::signal(&drifted.signal))),
            ];
            let verifier = Verifier::new(
                &process,
                VerifyOptions::default()
                    .with_workers(1)
                    .with_depth_bound(inputs.len()),
            )
            .map_err(|e| {
                fail(
                    FindingKind::DomainMismatch,
                    format!("verifier construction failed on the drifted thread: {e}"),
                )
            })?;
            let concrete =
                match verifier.verify(&InputSpace::Scheduled(inputs.clone()), &properties) {
                    Ok(outcome) => outcome,
                    // A drifted process the engine rejects outright is a
                    // valid outcome, as long as it rejects deterministically.
                    Err(e) => {
                        return Ok(ScenarioOutcome::Rejected {
                            error: e.to_string(),
                        })
                    }
                };
            interval_agreement(
                &process,
                &inputs,
                &properties,
                &concrete,
                "the drifted thread",
            )?;
            let first = concrete
                .violations()
                .next()
                .map(|(property, cex)| (property.name(), cex.clone()));
            match first {
                Some((property, cex)) => {
                    replay_in_simulator(&cex, &process, &property)?;
                    Ok(ScenarioOutcome::FaultDetected {
                        fault: kind,
                        property,
                        instant: cex.violation_instant,
                    })
                }
                None => Ok(ScenarioOutcome::Passed),
            }
        }
    }
}

/// Verifies `inputs` against `property` expecting a violation that
/// replays; anything else is a [`FindingKind::FaultUndetected`] failure.
fn expect_violation(
    kind: FaultKind,
    process: &Process,
    inputs: Trace,
    property: Property,
) -> Result<ScenarioOutcome, Failure> {
    let verifier = Verifier::new(
        process,
        VerifyOptions::default()
            .with_workers(1)
            .with_depth_bound(inputs.len()),
    )
    .map_err(|e| {
        fail(
            FindingKind::FaultUndetected,
            format!("verifier construction failed on the tampered thread: {e}"),
        )
    })?;
    let outcome = verifier
        .verify(
            &InputSpace::Scheduled(inputs),
            std::slice::from_ref(&property),
        )
        .map_err(|e| {
            fail(
                FindingKind::FaultUndetected,
                format!("verification of the tampered schedule failed: {e}"),
            )
        })?;
    match &outcome.verdicts[0].verdict {
        Verdict::Violated(cex) => {
            replay_in_simulator(cex, process, &property.name())?;
            Ok(ScenarioOutcome::FaultDetected {
                fault: kind,
                property: property.name(),
                instant: cex.violation_instant,
            })
        }
        verdict => Err(fail(
            FindingKind::FaultUndetected,
            format!(
                "injected {kind} left {} unviolated ({})",
                property.name(),
                verdict.summary()
            ),
        )),
    }
}

/// The agreement oracle for faults without a detection guarantee: the
/// verifier and the simulator must tell the same story about the tampered
/// trace.
fn agreement_under_tampering(
    kind: FaultKind,
    process: &Process,
    inputs: Trace,
) -> Result<ScenarioOutcome, Failure> {
    let property = Property::NeverRaised("*Alarm*".into());
    let verifier = Verifier::new(
        process,
        VerifyOptions::default()
            .with_workers(1)
            .with_depth_bound(inputs.len()),
    )
    .map_err(|e| {
        fail(
            FindingKind::MonitorMismatch,
            format!("verifier construction failed on the tampered thread: {e}"),
        )
    })?;
    let outcome = match verifier.verify(
        &InputSpace::Scheduled(inputs.clone()),
        std::slice::from_ref(&property),
    ) {
        Ok(outcome) => outcome,
        // A tampered schedule the engine rejects outright is a valid
        // outcome, as long as it rejects deterministically (covered by
        // the replay determinism of the harness itself).
        Err(e) => {
            return Ok(ScenarioOutcome::Rejected {
                error: e.to_string(),
            })
        }
    };
    match &outcome.verdicts[0].verdict {
        Verdict::Violated(cex) => {
            replay_in_simulator(cex, process, &property.name())?;
            Ok(ScenarioOutcome::FaultDetected {
                fault: kind,
                property: property.name(),
                instant: cex.violation_instant,
            })
        }
        _ => {
            // The verifier saw no alarm: the simulator must agree if it
            // can execute the tampered trace at all.
            if let Ok(resolved) = Simulator::new(process).and_then(|mut s| s.run(&inputs)) {
                let alarm = resolved.iter().position(|step| {
                    step.iter()
                        .any(|(name, value)| name.contains("Alarm") && value.as_bool())
                });
                if let Some(t) = alarm {
                    return Err(fail(
                        FindingKind::MonitorMismatch,
                        format!(
                            "under {kind} the simulator raises an alarm at tick {t} the verifier missed"
                        ),
                    ));
                }
            }
            Ok(ScenarioOutcome::Passed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_glob_matcher_mirrors_never_raised_patterns() {
        assert!(pattern_matches("*Alarm*", "thProducer_Alarm_1"));
        assert!(pattern_matches("Alarm*", "Alarm_1"));
        assert!(pattern_matches("*Alarm", "th_Alarm"));
        assert!(pattern_matches("Alarm", "Alarm"));
        assert!(!pattern_matches("Alarm", "Alarms"));
        assert!(pattern_matches("**", "anything"));
    }

    #[test]
    fn a_panicking_scenario_is_a_panic_finding_not_an_abort() {
        // An empty spec makes `target_unit` index into no units — the
        // panic must be caught and classified.
        let spec = SystemSpec {
            threads: vec![],
            connections: vec![],
            workers: 1,
            hyperperiods: 1,
        };
        match run_scenario(&spec, 0, None) {
            // The pipeline may reject a threadless model before any
            // oracle runs; both are acceptable, aborting is not.
            Ok(ScenarioOutcome::Rejected { .. }) => {}
            Err(failure) => assert_eq!(failure.kind, FindingKind::Panic, "{}", failure.detail),
            other => panic!("unexpected outcome for an empty system: {other:?}"),
        }
    }

    #[test]
    fn a_wired_scenario_passes_every_oracle() {
        let spec = SystemSpec::generate(0xfeed, 3, Some(FaultKind::DroppedDelivery));
        // Fault-free check of a wired system exercises the lockstep path.
        let outcome = run_scenario(&spec, 0xfeed, None).expect("no finding");
        assert!(matches!(
            outcome,
            ScenarioOutcome::Passed | ScenarioOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn dropped_deliveries_are_detected_on_a_minimal_chain() {
        let spec = SystemSpec {
            threads: vec![
                crate::ThreadSpec {
                    period_ms: 8,
                    wcet_ms: 1,
                },
                crate::ThreadSpec {
                    period_ms: 8,
                    wcet_ms: 1,
                },
            ],
            connections: vec![crate::ConnectionSpec { from: 0, to: 1 }],
            workers: 1,
            hyperperiods: 2,
        };
        match run_scenario(&spec, 1, Some(FaultKind::DroppedDelivery)) {
            Ok(ScenarioOutcome::FaultDetected {
                fault, property, ..
            }) => {
                assert_eq!(fault, FaultKind::DroppedDelivery);
                assert!(property.contains("end-to-end-response"), "{property}");
            }
            other => panic!("expected a detected fault, got {other:?}"),
        }
    }
}
