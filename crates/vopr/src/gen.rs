//! Seeded generation of complete AADL systems.
//!
//! A [`SystemSpec`] is the harness's compact model of one generated
//! system: periodic threads (period, deadline = period, WCET) and
//! event-port connections forming disjoint forward chains (each thread has
//! at most one outgoing and one incoming connection, and connections only
//! point from lower to higher indices — no cycles, no fan-in, no
//! fan-out). The spec renders to AADL source text following the same
//! template as `aadl::synth`, runs through the full staged pipeline via
//! [`SystemSpec::batch_job`], and is the unit the shrinker minimises.

use std::fmt::Write as _;

use polychrony_core::{BatchJob, SessionOptions, VerificationScope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::FaultKind;

/// The harmonically-related period menu (milliseconds = ticks) generated
/// systems draw from, matching `aadl::synth::SYNTHETIC_PERIODS_MS` so
/// hyper-periods stay small.
pub const PERIOD_MENU_MS: [u64; 4] = [4, 8, 16, 32];

/// One generated periodic thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSpec {
    /// Period and deadline in milliseconds.
    pub period_ms: u64,
    /// Worst-case execution time in milliseconds.
    pub wcet_ms: u64,
}

/// One generated event-port connection, from thread index `from` to
/// thread index `to` (always `from < to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionSpec {
    /// Index of the sending thread.
    pub from: usize,
    /// Index of the receiving thread.
    pub to: usize,
}

impl ConnectionSpec {
    /// The AADL connection label, e.g. `c0_2` — also the [`PortLink`]
    /// name the product phase derives.
    ///
    /// [`PortLink`]: polychrony_core::polyverify::PortLink
    pub fn name(&self) -> String {
        format!("c{}_{}", self.from, self.to)
    }
}

/// A complete generated system plus the run configuration the harness
/// checks it under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSpec {
    /// The periodic threads.
    pub threads: Vec<ThreadSpec>,
    /// The event-port connections (disjoint forward chains).
    pub connections: Vec<ConnectionSpec>,
    /// Verification worker threads of this scenario.
    pub workers: usize,
    /// Verification hyper-periods of this scenario.
    pub hyperperiods: u64,
}

impl SystemSpec {
    /// Generates a system from a scenario seed. `max_threads` bounds the
    /// thread count; when `fault` needs connection links the generator
    /// guarantees at least two threads, one connection, and a two
    /// hyper-period verification window (so a delayed delivery's response
    /// deadline expires inside the explored horizon).
    pub fn generate(seed: u64, max_threads: usize, fault: Option<FaultKind>) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let wants_links = fault.is_some_and(FaultKind::needs_links);
        let min_threads = if wants_links { 2 } else { 1 };
        let max_threads = max_threads.clamp(min_threads, 8);
        let count = rng.gen_range(min_threads..max_threads + 1);
        let threads = (0..count)
            .map(|_| ThreadSpec {
                period_ms: PERIOD_MENU_MS[rng.gen_range(0..PERIOD_MENU_MS.len())],
                wcet_ms: if rng.gen_bool(0.2) { 2 } else { 1 },
            })
            .collect::<Vec<_>>();
        let mut connections = Vec::new();
        let mut has_incoming = vec![false; count];
        for from in 0..count.saturating_sub(1) {
            if !rng.gen_bool(0.5) {
                continue;
            }
            let candidates: Vec<usize> = (from + 1..count).filter(|&j| !has_incoming[j]).collect();
            if candidates.is_empty() {
                continue;
            }
            let to = candidates[rng.gen_range(0..candidates.len())];
            has_incoming[to] = true;
            connections.push(ConnectionSpec { from, to });
        }
        if wants_links && connections.is_empty() {
            connections.push(ConnectionSpec { from: 0, to: 1 });
        }
        Self {
            threads,
            connections,
            workers: rng.gen_range(1..3),
            hyperperiods: if wants_links { 2 } else { 1 },
        }
    }

    /// Renders the spec as AADL source text (package `Vopr`, rooted at
    /// `top.impl`), following the `aadl::synth` template.
    pub fn to_aadl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "package Vopr");
        let _ = writeln!(out, "public");
        for (i, thread) in self.threads.iter().enumerate() {
            let _ = writeln!(out, "  thread th{i}");
            let outgoing: Vec<&ConnectionSpec> =
                self.connections.iter().filter(|c| c.from == i).collect();
            let incoming: Vec<&ConnectionSpec> =
                self.connections.iter().filter(|c| c.to == i).collect();
            if !outgoing.is_empty() || !incoming.is_empty() {
                let _ = writeln!(out, "  features");
                for c in &outgoing {
                    let _ = writeln!(out, "    out_{} : out event data port;", c.name());
                }
                for c in &incoming {
                    let _ = writeln!(out, "    in_{} : in event data port;", c.name());
                }
            }
            let _ = writeln!(out, "  properties");
            let _ = writeln!(out, "    Dispatch_Protocol => Periodic;");
            let _ = writeln!(out, "    Period => {} ms;", thread.period_ms);
            let _ = writeln!(out, "    Deadline => {} ms;", thread.period_ms);
            let _ = writeln!(
                out,
                "    Compute_Execution_Time => {w} ms .. {w} ms;",
                w = thread.wcet_ms
            );
            let _ = writeln!(out, "    Priority => {};", self.threads.len() - i);
            let _ = writeln!(out, "  end th{i};");
        }
        let _ = writeln!(out, "  process worker");
        let _ = writeln!(out, "  end worker;");
        let _ = writeln!(out, "  process implementation worker.impl");
        let _ = writeln!(out, "  subcomponents");
        for i in 0..self.threads.len() {
            let _ = writeln!(out, "    t{i} : thread th{i};");
        }
        if !self.connections.is_empty() {
            let _ = writeln!(out, "  connections");
            for c in &self.connections {
                let _ = writeln!(
                    out,
                    "    {name} : port t{}.out_{name} -> t{}.in_{name};",
                    c.from,
                    c.to,
                    name = c.name()
                );
            }
        }
        let _ = writeln!(out, "  end worker.impl;");
        let _ = writeln!(out, "  processor cpu");
        let _ = writeln!(out, "  end cpu;");
        let _ = writeln!(out, "  system top");
        let _ = writeln!(out, "  end top;");
        let _ = writeln!(out, "  system implementation top.impl");
        let _ = writeln!(out, "  subcomponents");
        let _ = writeln!(out, "    app : process worker.impl;");
        let _ = writeln!(out, "    cpu0 : processor cpu;");
        let _ = writeln!(out, "  properties");
        let _ = writeln!(
            out,
            "    Actual_Processor_Binding => (reference (cpu0)) applies to app;"
        );
        let _ = writeln!(out, "  end top.impl;");
        let _ = writeln!(out, "end Vopr;");
        out
    }

    /// The per-phase options this scenario runs under: the quick batch
    /// profile, with the spec's worker count and verification window, and
    /// product scope whenever the system is wired.
    pub fn session_options(&self) -> SessionOptions {
        let mut options = SessionOptions::quick();
        options.verify.workers = self.workers;
        options.verify.hyperperiods = self.hyperperiods;
        options.verify.scope = if self.connections.is_empty() {
            VerificationScope::PerThread
        } else {
            VerificationScope::Product
        };
        options
    }

    /// The runnable pipeline job of this scenario.
    pub fn batch_job(&self, seed: u64) -> BatchJob {
        BatchJob::new(format!("vopr-{seed:016x}"), self.to_aadl(), "top.impl")
            .with_options(self.session_options())
    }

    /// Compact human-readable rendering, used by finding reports.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, thread) in self.threads.iter().enumerate() {
            let _ = writeln!(
                out,
                "  th{i}: period {} ms, wcet {} ms",
                thread.period_ms, thread.wcet_ms
            );
        }
        for c in &self.connections {
            let _ = writeln!(out, "  {}: th{} -> th{}", c.name(), c.from, c.to);
        }
        let _ = writeln!(
            out,
            "  verify: {} worker(s), {} hyperperiod(s)",
            self.workers, self.hyperperiods
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = SystemSpec::generate(99, 5, None);
        let b = SystemSpec::generate(99, 5, None);
        assert_eq!(a, b);
        assert_ne!(a, SystemSpec::generate(100, 5, None));
    }

    #[test]
    fn generated_topologies_are_disjoint_forward_chains() {
        for seed in 0..64 {
            let spec = SystemSpec::generate(seed, 8, None);
            assert!(!spec.threads.is_empty());
            let mut outgoing = std::collections::HashSet::new();
            let mut incoming = std::collections::HashSet::new();
            for c in &spec.connections {
                assert!(c.from < c.to, "forward only: {c:?}");
                assert!(c.to < spec.threads.len());
                assert!(outgoing.insert(c.from), "fan-out at th{}", c.from);
                assert!(incoming.insert(c.to), "fan-in at th{}", c.to);
            }
            for thread in &spec.threads {
                assert!(PERIOD_MENU_MS.contains(&thread.period_ms));
                assert!(thread.wcet_ms >= 1 && thread.wcet_ms <= thread.period_ms);
            }
        }
    }

    #[test]
    fn link_faults_force_a_wired_product() {
        for seed in 0..32 {
            let spec = SystemSpec::generate(seed, 5, Some(FaultKind::DroppedDelivery));
            assert!(spec.threads.len() >= 2);
            assert!(!spec.connections.is_empty());
            assert_eq!(spec.hyperperiods, 2);
        }
    }

    #[test]
    fn rendered_aadl_runs_through_the_pipeline() {
        let spec = SystemSpec {
            threads: vec![
                ThreadSpec {
                    period_ms: 8,
                    wcet_ms: 1,
                },
                ThreadSpec {
                    period_ms: 16,
                    wcet_ms: 1,
                },
            ],
            connections: vec![ConnectionSpec { from: 0, to: 1 }],
            workers: 1,
            hyperperiods: 1,
        };
        let report = spec
            .batch_job(0)
            .run()
            .expect("pipeline accepts the render");
        assert!(report.verification.is_some());
    }
}
