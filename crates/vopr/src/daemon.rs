//! Daemon load generation: fan generated jobs at a running `polychronyd`
//! and cross-check every wire report against a local run of the same job.
//!
//! This is the `polychrony vopr --daemon` mode: the generator side of the
//! harness reused as a deterministic load generator, with the daemon's
//! answers held to the same oracle discipline as the in-process pipeline —
//! the report that comes back over the wire must match what
//! [`BatchJob::run`] produces locally for the identical job, field for
//! field (ignoring wall times and the daemon's cache annotation).
//!
//! [`BatchJob::run`]: polychrony_core::BatchJob::run

use polychrony_client::{ClientError, Endpoint};
use polywire::{JobSpec, WireReport};

use crate::gen::SystemSpec;
use crate::{scenario_seed, VoprOptions};

/// The result of one load-generation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonLoadReport {
    /// Jobs submitted and answered.
    pub jobs: u64,
    /// Jobs whose wire report says every check passed.
    pub passed: u64,
    /// Jobs the pipeline rejected or whose checks failed (on both sides —
    /// consistently).
    pub failed: u64,
    /// Disagreements between the daemon's wire report and the local run —
    /// each a replayable bug, empty on a healthy daemon.
    pub mismatches: Vec<String>,
}

impl DaemonLoadReport {
    /// Process exit code for the CLI: 2 when any report disagreed.
    pub fn exit_code(&self) -> i32 {
        if self.mismatches.is_empty() {
            0
        } else {
            2
        }
    }

    /// One-paragraph human-readable rendering.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "vopr daemon load: {} job(s), {} passed, {} failed, {} mismatch(es)\n",
            self.jobs,
            self.passed,
            self.failed,
            self.mismatches.len()
        );
        for mismatch in &self.mismatches {
            out.push_str(&format!("  MISMATCH {mismatch}\n"));
        }
        out
    }
}

/// Compares the daemon's wire report for a job against the local run of
/// the identical job. Wall times and the daemon-side cache annotation are
/// excluded — everything else must match.
fn cross_check(seed: u64, wire: &WireReport, spec: &SystemSpec) -> Option<String> {
    let local = match spec.batch_job(seed).run() {
        Ok(report) => WireReport::from_report(&report, None, 0),
        Err(e) => {
            let message = e.to_string();
            return match &wire.error {
                Some(remote) if *remote == message => None,
                Some(remote) => Some(format!(
                    "seed 0x{seed:016x}: daemon error {remote:?} but local error {message:?}"
                )),
                None => Some(format!(
                    "seed 0x{seed:016x}: daemon completed a job the local pipeline rejects ({message})"
                )),
            };
        }
    };
    if wire.error.is_some() {
        return Some(format!(
            "seed 0x{seed:016x}: daemon error {:?} but the local run completes",
            wire.error
        ));
    }
    if wire.passed != local.passed
        || wire.hyperperiod != local.hyperperiod
        || wire.states != local.states
        || wire.transitions != local.transitions
        || wire.verdicts != local.verdicts
    {
        return Some(format!(
            "seed 0x{seed:016x}: wire report diverges from the local run \
             (passed {}/{}, hyperperiod {}/{}, states {}/{}, transitions {}/{}, {} vs {} verdict entries)",
            wire.passed,
            local.passed,
            wire.hyperperiod,
            local.hyperperiod,
            wire.states,
            local.states,
            wire.transitions,
            local.transitions,
            wire.verdicts.len(),
            local.verdicts.len()
        ));
    }
    None
}

/// Fans `options.iterations` generated jobs at the daemon behind
/// `endpoint`, watching each to completion and cross-checking every
/// answer against a local run. Faults are not injected here — the load is
/// the same seeded system stream as chaos mode.
///
/// # Errors
///
/// Returns the first transport-level [`ClientError`] (connection refused,
/// daemon died mid-stream). Report *disagreements* are not errors — they
/// are collected in [`DaemonLoadReport::mismatches`].
pub fn run_daemon_load(
    endpoint: &Endpoint,
    options: &VoprOptions,
    progress: &mut dyn FnMut(String),
) -> Result<DaemonLoadReport, ClientError> {
    let mut report = DaemonLoadReport {
        jobs: 0,
        passed: 0,
        failed: 0,
        mismatches: Vec::new(),
    };
    for index in 0..options.iterations {
        let seed = scenario_seed(options.seed, index);
        let spec = SystemSpec::generate(seed, options.max_threads, None);
        let job = spec.batch_job(seed);
        let wire_spec = JobSpec {
            name: job.name.clone(),
            source: Some(job.source.clone()),
            root: job.root.clone(),
            options: job.options.clone(),
        };
        let mut client = endpoint.connect()?;
        let (id, _state) = client.submit(&wire_spec, true)?;
        let (_id, wire) = client.wait(|_, _| {})?;
        report.jobs += 1;
        if wire.passed {
            report.passed += 1;
        } else {
            report.failed += 1;
        }
        if let Some(mismatch) = cross_check(seed, &wire, &spec) {
            progress(format!("job {id}: {mismatch}"));
            report.mismatches.push(mismatch);
        } else {
            progress(format!(
                "job {id} (seed 0x{seed:016x}): daemon and local run agree"
            ));
        }
    }
    Ok(report)
}
