//! `polyvopr` — a seeded whole-system chaos harness for the polychrony
//! tool chain, in the spirit of VOPR-style deterministic simulation
//! testing.
//!
//! Each iteration derives a scenario seed from the master seed, generates a
//! complete AADL system (thread counts, periods, deadlines, WCETs,
//! event-port connection topologies, properties), drives it through the
//! full staged pipeline, and cross-checks independent oracles against each
//! other:
//!
//! * **cache oracle** — [`BatchJob::run`](polychrony_core::BatchJob::run)
//!   versus [`BatchJob::run_cached`](polychrony_core::BatchJob::run_cached)
//!   twice through a fresh [`ArtifactCache`](polychrony_core::ArtifactCache)
//!   (a miss, then a simulated hit) must produce identical reports — or
//!   identical rejections;
//! * **monitor oracle** — seeded random past-time LTL formulas are checked
//!   by the compiled monitor automata of the model checker and re-derived
//!   by the reference trace semantics over the simulator's resolved trace;
//! * **lockstep oracle** — every product verdict is re-derived from a
//!   brute-force lockstep co-simulation of the wired thread product;
//! * **domain oracle** — one thread's behaviour is verified under the
//!   concrete engine and under the interval abstraction (with and without
//!   counter projection); the verdict shapes must match and abstract
//!   counterexamples must replay;
//! * **replay oracle** — every counterexample must reproduce in the
//!   simulator.
//!
//! A catalogue of injectable faults (deadline overruns, connection
//! latency, dropped deliveries, jittered dispatch, corrupted schedules,
//! drifted counter state) stresses the detection path: an injected fault that goes undetected is
//! a finding, and any violation it provokes must still replay.
//!
//! On any oracle disagreement or panic the harness greedily shrinks the
//! generated system to a minimal one that still fails the same way and
//! prints a replayable scenario seed. The same seed always produces the
//! same systems, the same verdicts and the same shrink result — there is
//! no wall-clock or entropy input anywhere in the loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod daemon;
pub mod gen;
pub mod shrink;

pub use check::{run_scenario, Failure, ScenarioOutcome};
pub use daemon::{run_daemon_load, DaemonLoadReport};
pub use gen::{ConnectionSpec, SystemSpec, ThreadSpec, PERIOD_MENU_MS};
pub use shrink::shrink as shrink_spec;

use std::fmt;

/// Default upper bound on generated thread counts. Small enough that every
/// scenario verifies in milliseconds, large enough to produce non-trivial
/// chains and products.
pub const DEFAULT_MAX_THREADS: usize = 5;

/// Default shrink budget: maximum number of candidate re-checks the
/// shrinker spends on one finding.
pub const DEFAULT_SHRINK_BUDGET: usize = 200;

/// The catalogue of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Delay a thread's completion past its deadline in the scheduled
    /// timing trace
    /// ([`inject_deadline_overrun`](polychrony_core::polyverify::inject_deadline_overrun)).
    DeadlineOverrun,
    /// Add transmission latency to one event-port connection so deliveries
    /// miss the receiver's input freeze
    /// ([`inject_connection_latency`](polychrony_core::polyverify::inject_connection_latency)).
    ConnectionLatency,
    /// Push one connection's latency past the verification window so its
    /// deliveries are dropped entirely
    /// ([`inject_dropped_delivery`](polychrony_core::polyverify::inject_dropped_delivery)).
    DroppedDelivery,
    /// Move every dispatch of a thread later by a fixed jitter
    /// ([`inject_dispatch_jitter`](polychrony_core::polyverify::inject_dispatch_jitter)).
    DispatchJitter,
    /// Flip seeded boolean cells of the scheduled timing trace
    /// ([`inject_schedule_corruption`](polychrony_core::polyverify::inject_schedule_corruption)).
    CorruptedSchedule,
    /// Shift one integer memory init of a thread's behaviour, as if
    /// persisted counter state had decayed; both verification domains must
    /// still agree on the drifted process
    /// ([`inject_counter_drift`](polychrony_core::polyverify::inject_counter_drift)).
    CounterDrift,
}

impl FaultKind {
    /// Every fault kind, in catalogue order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::DeadlineOverrun,
        FaultKind::ConnectionLatency,
        FaultKind::DroppedDelivery,
        FaultKind::DispatchJitter,
        FaultKind::CorruptedSchedule,
        FaultKind::CounterDrift,
    ];

    /// The stable command-line label of this fault kind.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DeadlineOverrun => "deadline-overrun",
            FaultKind::ConnectionLatency => "connection-latency",
            FaultKind::DroppedDelivery => "dropped-delivery",
            FaultKind::DispatchJitter => "dispatch-jitter",
            FaultKind::CorruptedSchedule => "corrupted-schedule",
            FaultKind::CounterDrift => "counter-drift",
        }
    }

    /// Parses a command-line label back into a fault kind.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.label() == label)
    }

    /// `true` when this fault tampers with connection links and therefore
    /// needs a wired product (at least one connection) to bite.
    pub fn needs_links(self) -> bool {
        matches!(
            self,
            FaultKind::ConnectionLatency | FaultKind::DroppedDelivery
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What went wrong when an oracle disagreed: the classification the
/// shrinker preserves while minimising.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A pipeline phase or oracle panicked.
    Panic,
    /// Cached and uncached runs disagreed (reports, rejections or cache
    /// outcomes).
    CacheMismatch,
    /// The compiled LTL monitor and the reference trace semantics
    /// disagreed on a violation instant.
    MonitorMismatch,
    /// The product checker and the lockstep co-simulation disagreed on a
    /// verdict or violation instant.
    LockstepMismatch,
    /// A counterexample did not reproduce in the simulator.
    ReplayFailed,
    /// An injected fault produced no violation where one was guaranteed.
    FaultUndetected,
    /// The concrete and interval verification domains disagreed on a
    /// verdict shape (kind or violation instant).
    DomainMismatch,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FindingKind::Panic => "panic",
            FindingKind::CacheMismatch => "cache-mismatch",
            FindingKind::MonitorMismatch => "monitor-mismatch",
            FindingKind::LockstepMismatch => "lockstep-mismatch",
            FindingKind::ReplayFailed => "replay-failed",
            FindingKind::FaultUndetected => "fault-undetected",
            FindingKind::DomainMismatch => "domain-mismatch",
        })
    }
}

/// Options of one harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoprOptions {
    /// Master seed; each iteration derives its own scenario seed from it.
    pub seed: u64,
    /// Number of scenarios to generate and check.
    pub iterations: u64,
    /// Fault to inject into every scenario (`None` = pure chaos mode: only
    /// the cross-check oracles run).
    pub fault: Option<FaultKind>,
    /// Upper bound on generated thread counts.
    pub max_threads: usize,
    /// Whether findings are shrunk to a minimal failing system.
    pub shrink: bool,
}

impl Default for VoprOptions {
    fn default() -> Self {
        Self {
            seed: 0,
            iterations: 16,
            fault: None,
            max_threads: DEFAULT_MAX_THREADS,
            shrink: true,
        }
    }
}

/// A confirmed harness finding: an oracle disagreement or panic, shrunk to
/// a minimal system that still fails the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The scenario seed that reproduces this finding.
    pub scenario_seed: u64,
    /// The classification of the disagreement.
    pub kind: FindingKind,
    /// Human-readable detail from the failing oracle.
    pub detail: String,
    /// The fault that was being injected, if any.
    pub fault: Option<FaultKind>,
    /// The minimal failing system.
    pub spec: SystemSpec,
    /// Shrink candidates re-checked to reach the minimal system.
    pub shrink_attempts: usize,
}

/// A detected injected fault, shrunk to a minimal system in which the
/// verifier still catches it. This is the *expected* outcome of a fault
/// demo run — the failing system is the generated model, not the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCase {
    /// The scenario seed that reproduces this detection.
    pub scenario_seed: u64,
    /// The injected fault.
    pub fault: FaultKind,
    /// Name of the property that caught it.
    pub property: String,
    /// Violation instant of the counterexample (in ticks).
    pub instant: usize,
    /// The minimal failing system.
    pub spec: SystemSpec,
    /// Shrink candidates re-checked to reach the minimal system.
    pub shrink_attempts: usize,
}

/// The overall verdict of a harness run.
#[derive(Debug, Clone, PartialEq)]
pub enum VoprVerdict {
    /// Every iteration completed without a finding.
    Clean,
    /// Fault mode found, shrank and replayed an injected fault (the
    /// demonstration outcome — the harness itself is healthy).
    Fault(FaultCase),
    /// An oracle disagreement or panic — a real bug in the tool chain or
    /// the harness.
    Bug(Finding),
}

/// The result of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct VoprReport {
    /// Scenarios actually checked (a finding stops the run early).
    pub iterations: u64,
    /// Scenarios whose pipeline and oracles all passed.
    pub passed: u64,
    /// Scenarios the pipeline rejected consistently (e.g. unschedulable
    /// task sets) — a valid outcome, not a finding.
    pub rejected: u64,
    /// The overall verdict.
    pub verdict: VoprVerdict,
    /// The master seed and options the run used (echoed for replay lines).
    pub options: VoprOptions,
}

impl VoprReport {
    /// Process exit code for the CLI: 2 for a bug, 0 otherwise (a detected
    /// injected fault is the expected demo outcome).
    pub fn exit_code(&self) -> i32 {
        match self.verdict {
            VoprVerdict::Bug(_) => 2,
            _ => 0,
        }
    }

    /// The `polychrony vopr --replay …` invocation reproducing a finding.
    fn replay_line(&self, seed: u64, fault: Option<FaultKind>) -> String {
        let mut line = format!("replay: polychrony vopr --replay 0x{seed:016x}");
        if let Some(fault) = fault {
            line.push_str(&format!(" --fault {fault}"));
        }
        if self.options.max_threads != DEFAULT_MAX_THREADS {
            line.push_str(&format!(" --max-threads {}", self.options.max_threads));
        }
        line
    }

    /// Multi-line human-readable rendering of the run.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "vopr: {} iteration(s), {} passed, {} rejected by the pipeline\n",
            self.iterations, self.passed, self.rejected
        );
        match &self.verdict {
            VoprVerdict::Clean => out.push_str("verdict: clean — no oracle disagreement\n"),
            VoprVerdict::Fault(case) => {
                out.push_str(&format!(
                    "verdict: injected {} detected — {} violated at tick {}\n",
                    case.fault, case.property, case.instant
                ));
                out.push_str(&format!(
                    "minimal failing system (after {} shrink attempt(s)):\n{}",
                    case.shrink_attempts,
                    case.spec.summary()
                ));
                out.push_str(&self.replay_line(case.scenario_seed, Some(case.fault)));
                out.push('\n');
            }
            VoprVerdict::Bug(finding) => {
                out.push_str(&format!(
                    "verdict: BUG [{}] {}\n",
                    finding.kind, finding.detail
                ));
                out.push_str(&format!(
                    "minimal failing system (after {} shrink attempt(s)):\n{}",
                    finding.shrink_attempts,
                    finding.spec.summary()
                ));
                out.push_str(&self.replay_line(finding.scenario_seed, finding.fault));
                out.push('\n');
            }
        }
        out
    }
}

/// The splitmix64 finaliser used to derive per-iteration scenario seeds
/// from the master seed. Matching the vendored `StdRng` stream mixer keeps
/// the whole harness on one well-studied generator family.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the scenario seed of iteration `index` under `master`. Printed
/// in replay lines; `--replay` takes this value literally.
pub fn scenario_seed(master: u64, index: u64) -> u64 {
    splitmix64(master ^ splitmix64(index).rotate_left(17))
}

/// Checks one scenario seed end to end and folds the result into a
/// [`VoprVerdict`], shrinking any finding. Returns `None` when the
/// scenario passed or was consistently rejected (the run continues).
fn check_one(
    seed: u64,
    options: &VoprOptions,
    passed: &mut u64,
    rejected: &mut u64,
    progress: &mut dyn FnMut(String),
) -> Option<VoprVerdict> {
    let spec = SystemSpec::generate(seed, options.max_threads, options.fault);
    match run_scenario(&spec, seed, options.fault) {
        Ok(ScenarioOutcome::Passed) => {
            *passed += 1;
            None
        }
        Ok(ScenarioOutcome::Rejected { .. }) => {
            *rejected += 1;
            None
        }
        Ok(ScenarioOutcome::FaultDetected {
            fault,
            property,
            instant,
        }) => {
            progress(format!(
                "seed 0x{seed:016x}: injected {fault} caught ({property} violated at tick {instant}); shrinking"
            ));
            let (spec, attempts) = if options.shrink {
                shrink_spec(
                    spec,
                    |candidate| {
                        matches!(
                            run_scenario(candidate, seed, Some(fault)),
                            Ok(ScenarioOutcome::FaultDetected { .. })
                        )
                    },
                    DEFAULT_SHRINK_BUDGET,
                )
            } else {
                (spec, 0)
            };
            // Re-check the minimal system to report its own property and
            // instant (shrinking can move the violation).
            let (property, instant) = match run_scenario(&spec, seed, Some(fault)) {
                Ok(ScenarioOutcome::FaultDetected {
                    property, instant, ..
                }) => (property, instant),
                _ => (property, instant),
            };
            Some(VoprVerdict::Fault(FaultCase {
                scenario_seed: seed,
                fault,
                property,
                instant,
                spec,
                shrink_attempts: attempts,
            }))
        }
        Err(failure) => {
            let kind = failure.kind;
            progress(format!(
                "seed 0x{seed:016x}: {} — {}; shrinking",
                kind, failure.detail
            ));
            let (spec, attempts) = if options.shrink {
                shrink_spec(
                    spec,
                    |candidate| {
                        matches!(
                            run_scenario(candidate, seed, options.fault),
                            Err(f) if f.kind == kind
                        )
                    },
                    DEFAULT_SHRINK_BUDGET,
                )
            } else {
                (spec, 0)
            };
            let detail = match run_scenario(&spec, seed, options.fault) {
                Err(f) => f.detail,
                _ => failure.detail,
            };
            Some(VoprVerdict::Bug(Finding {
                scenario_seed: seed,
                kind,
                detail,
                fault: options.fault,
                spec,
                shrink_attempts: attempts,
            }))
        }
    }
}

/// Runs the harness: `iterations` seeded scenarios through the full
/// pipeline and oracle battery, stopping at the first finding (which is
/// shrunk and reported). Fully deterministic in `options`.
pub fn run(options: &VoprOptions, progress: &mut dyn FnMut(String)) -> VoprReport {
    let mut passed = 0;
    let mut rejected = 0;
    for index in 0..options.iterations {
        let seed = scenario_seed(options.seed, index);
        if let Some(verdict) = check_one(seed, options, &mut passed, &mut rejected, progress) {
            return VoprReport {
                iterations: index + 1,
                passed,
                rejected,
                verdict,
                options: options.clone(),
            };
        }
    }
    VoprReport {
        iterations: options.iterations,
        passed,
        rejected,
        verdict: VoprVerdict::Clean,
        options: options.clone(),
    }
}

/// Replays one literal scenario seed (as printed by a finding's replay
/// line): generates the same system, runs the same oracle battery and the
/// same fault injection, and reports the outcome.
pub fn replay(seed: u64, options: &VoprOptions, progress: &mut dyn FnMut(String)) -> VoprReport {
    let mut passed = 0;
    let mut rejected = 0;
    let verdict = check_one(seed, options, &mut passed, &mut rejected, progress)
        .unwrap_or(VoprVerdict::Clean);
    VoprReport {
        iterations: 1,
        passed,
        rejected,
        verdict,
        options: options.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_labels_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::from_label("no-such-fault"), None);
    }

    #[test]
    fn scenario_seeds_are_deterministic_and_spread() {
        let a: Vec<u64> = (0..8).map(|i| scenario_seed(42, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| scenario_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut deduped = a.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), a.len(), "collisions in {a:?}");
        assert_ne!(scenario_seed(42, 0), scenario_seed(43, 0));
    }

    #[test]
    fn a_small_chaos_run_is_clean_and_deterministic() {
        let options = VoprOptions {
            seed: 1,
            iterations: 3,
            max_threads: 3,
            ..VoprOptions::default()
        };
        let first = run(&options, &mut |_| {});
        let second = run(&options, &mut |_| {});
        assert_eq!(first, second);
        assert!(
            matches!(first.verdict, VoprVerdict::Clean),
            "{}",
            first.summary()
        );
        assert_eq!(first.iterations, 3);
        assert_eq!(first.passed + first.rejected, 3);
    }

    #[test]
    fn a_deadline_overrun_run_finds_shrinks_and_replays() {
        let options = VoprOptions {
            seed: 7,
            iterations: 8,
            fault: Some(FaultKind::DeadlineOverrun),
            max_threads: 3,
            ..VoprOptions::default()
        };
        let report = run(&options, &mut |_| {});
        let VoprVerdict::Fault(case) = &report.verdict else {
            panic!("expected a detected fault: {}", report.summary());
        };
        assert_eq!(case.fault, FaultKind::DeadlineOverrun);
        assert!(report.summary().contains("minimal failing system"));
        assert!(report
            .summary()
            .contains("replay: polychrony vopr --replay"));
        // The printed seed replays to the same minimal system.
        let replayed = replay(case.scenario_seed, &options, &mut |_| {});
        let VoprVerdict::Fault(again) = &replayed.verdict else {
            panic!("replay lost the fault: {}", replayed.summary());
        };
        assert_eq!(again.spec, case.spec);
        assert_eq!(again.property, case.property);
        assert_eq!(again.instant, case.instant);
    }
}
