//! Classical schedulability analyses used as the Cheddar-like comparison
//! baseline (Section VI of the paper contrasts the affine-clock scheduler
//! with "other AADL scheduling tools like Cheddar", which perform this kind
//! of analysis).
//!
//! Provided analyses:
//! * the Liu & Layland rate-monotonic utilisation bound,
//! * exact response-time analysis for preemptive fixed-priority (RM)
//!   scheduling,
//! * the EDF utilisation test,
//! * a tick-accurate preemptive simulation over the hyper-period.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::policy::SchedulingPolicy;
use crate::task::TaskSet;

/// The Liu & Layland utilisation bound for `n` tasks under preemptive RM:
/// `n·(2^{1/n} − 1)`.
///
/// ```
/// let b1 = sched::rm_utilization_bound(1);
/// assert!((b1 - 1.0).abs() < 1e-9);
/// let b = sched::rm_utilization_bound(4);
/// assert!(b > 0.75 && b < 0.76);
/// ```
pub fn rm_utilization_bound(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// The EDF utilisation test for implicit/constrained deadlines: schedulable
/// on one preemptive processor when total *density* (`wcet / min(deadline,
/// period)`) is at most 1. Exact for implicit deadlines, sufficient for
/// constrained ones.
pub fn edf_utilization_test(tasks: &TaskSet) -> bool {
    let density: f64 = tasks
        .tasks()
        .iter()
        .map(|t| t.wcet as f64 / t.deadline.min(t.period) as f64)
        .sum();
    density <= 1.0 + 1e-9
}

/// Per-task result of the response-time analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeReport {
    /// Worst-case response time per task (absent if the iteration diverged
    /// past the deadline).
    pub response_times: BTreeMap<String, Option<u64>>,
    /// `true` when every task has a response time within its deadline.
    pub schedulable: bool,
}

/// Exact response-time analysis for preemptive fixed-priority scheduling
/// with rate-monotonic priority assignment (shorter period = higher
/// priority). Offsets are ignored (the analysis is sustainable for the
/// synchronous critical instant).
pub fn rm_response_time_analysis(tasks: &TaskSet) -> ResponseTimeReport {
    // Sort by period ascending = priority descending.
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks.tasks()[i].period, tasks.tasks()[i].deadline));

    let mut response_times = BTreeMap::new();
    let mut schedulable = true;
    for (rank, &i) in order.iter().enumerate() {
        let task = &tasks.tasks()[i];
        let higher = &order[..rank];
        let mut r = task.wcet;
        let mut converged = None;
        for _ in 0..10_000 {
            let interference: u64 = higher
                .iter()
                .map(|&h| {
                    let ht = &tasks.tasks()[h];
                    r.div_ceil(ht.period) * ht.wcet
                })
                .sum();
            let next = task.wcet + interference;
            if next == r {
                converged = Some(r);
                break;
            }
            if next > task.deadline {
                converged = None;
                break;
            }
            r = next;
        }
        match converged {
            Some(r) if r <= task.deadline => {
                response_times.insert(task.name.clone(), Some(r));
            }
            _ => {
                response_times.insert(task.name.clone(), None);
                schedulable = false;
            }
        }
    }
    ResponseTimeReport {
        response_times,
        schedulable,
    }
}

/// Outcome of the preemptive tick-accurate simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Policy simulated.
    pub policy: SchedulingPolicy,
    /// Length of the simulated window (one hyper-period).
    pub horizon: u64,
    /// Number of deadline misses observed.
    pub deadline_misses: usize,
    /// Number of preemptions observed.
    pub preemptions: usize,
    /// `true` when no deadline was missed.
    pub schedulable: bool,
}

/// Simulates preemptive scheduling tick by tick over one hyper-period.
///
/// Returns a [`SimulationOutcome`]; an empty task set or an overflowing
/// hyper-period yields a trivially schedulable outcome with a zero horizon.
pub fn preemptive_simulation(tasks: &TaskSet, policy: SchedulingPolicy) -> SimulationOutcome {
    let Some(horizon) = tasks.hyperperiod() else {
        return SimulationOutcome {
            policy,
            horizon: 0,
            deadline_misses: 0,
            preemptions: 0,
            schedulable: true,
        };
    };

    #[derive(Clone)]
    struct ActiveJob {
        task: usize,
        remaining: u64,
        deadline: u64,
        period: u64,
        priority: i64,
    }

    let mut ready: Vec<ActiveJob> = Vec::new();
    let mut misses = 0usize;
    let mut preemptions = 0usize;
    let mut last_running: Option<usize> = None;

    for tick in 0..horizon {
        // Releases.
        for (i, task) in tasks.tasks().iter().enumerate() {
            if tick >= task.offset && (tick - task.offset) % task.period == 0 {
                ready.push(ActiveJob {
                    task: i,
                    remaining: task.wcet,
                    deadline: tick + task.deadline,
                    period: task.period,
                    priority: task.priority.unwrap_or(i64::MIN),
                });
            }
        }
        // Deadline misses of unfinished jobs.
        ready.retain(|j| {
            if j.deadline <= tick && j.remaining > 0 {
                misses += 1;
                false
            } else {
                true
            }
        });
        // Pick the highest-priority ready job.
        if ready.is_empty() {
            last_running = None;
            continue;
        }
        let chosen = (0..ready.len())
            .min_by_key(|&i| {
                let j = &ready[i];
                match policy {
                    SchedulingPolicy::EarliestDeadlineFirst => (j.deadline, j.period, 0),
                    SchedulingPolicy::RateMonotonic => (j.period, j.deadline, 0),
                    SchedulingPolicy::FixedPriority => {
                        (0, 0, j.priority.wrapping_neg().max(i64::MIN + 1))
                    }
                }
            })
            .expect("ready is non-empty");
        if let Some(prev) = last_running {
            if prev != ready[chosen].task {
                // Only count as preemption if the previous job is still ready.
                if ready.iter().any(|j| j.task == prev && j.remaining > 0) {
                    preemptions += 1;
                }
            }
        }
        last_running = Some(ready[chosen].task);
        ready[chosen].remaining -= 1;
        if ready[chosen].remaining == 0 {
            ready.remove(chosen);
            last_running = None;
        }
    }
    // Jobs still pending at the horizon with passed deadlines.
    misses += ready
        .iter()
        .filter(|j| j.deadline <= horizon && j.remaining > 0)
        .count();

    SimulationOutcome {
        policy,
        horizon,
        deadline_misses: misses,
        preemptions,
        schedulable: misses == 0,
    }
}

/// Aggregated baseline report for a task set, the comparison point for the
/// paper's static affine-clock scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Total utilisation of the task set.
    pub utilization: f64,
    /// Liu & Layland bound for the task count.
    pub rm_bound: f64,
    /// `true` when the utilisation is below the RM bound (sufficient test).
    pub rm_bound_pass: bool,
    /// Response-time analysis result.
    pub response_times: ResponseTimeReport,
    /// EDF utilisation test result.
    pub edf_pass: bool,
    /// Preemptive RM simulation outcome.
    pub rm_simulation: SimulationOutcome,
    /// Preemptive EDF simulation outcome.
    pub edf_simulation: SimulationOutcome,
}

impl BaselineReport {
    /// Runs every baseline analysis on `tasks`.
    pub fn analyze(tasks: &TaskSet) -> Self {
        let utilization = tasks.utilization();
        let rm_bound = rm_utilization_bound(tasks.len());
        Self {
            utilization,
            rm_bound,
            rm_bound_pass: utilization <= rm_bound + 1e-9,
            response_times: rm_response_time_analysis(tasks),
            edf_pass: edf_utilization_test(tasks),
            rm_simulation: preemptive_simulation(tasks, SchedulingPolicy::RateMonotonic),
            edf_simulation: preemptive_simulation(tasks, SchedulingPolicy::EarliestDeadlineFirst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{case_study_task_set, PeriodicTask, TaskSet};

    #[test]
    fn rm_bound_values() {
        assert!((rm_utilization_bound(1) - 1.0).abs() < 1e-12);
        assert!((rm_utilization_bound(2) - 0.8284).abs() < 1e-3);
        assert!(rm_utilization_bound(1000) > 0.69);
        assert_eq!(rm_utilization_bound(0), 0.0);
    }

    #[test]
    fn case_study_is_schedulable_by_every_baseline() {
        let tasks = case_study_task_set();
        let report = BaselineReport::analyze(&tasks);
        assert!(report.utilization < 1.0);
        assert!(report.response_times.schedulable);
        assert!(report.edf_pass);
        assert!(report.rm_simulation.schedulable);
        assert!(report.edf_simulation.schedulable);
        // Producer is the highest-rate task: its response time is its WCET.
        assert_eq!(report.response_times.response_times["thProducer"], Some(1));
    }

    #[test]
    fn response_time_analysis_detects_overload() {
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("a", 4, 4, 2),
            PeriodicTask::new("b", 4, 4, 2),
            PeriodicTask::new("c", 8, 8, 2),
        ])
        .unwrap();
        let report = rm_response_time_analysis(&tasks);
        assert!(!report.schedulable);
        assert_eq!(report.response_times["c"], None);
    }

    #[test]
    fn edf_dominates_rm_on_a_classic_example() {
        // U = 0.9: above the RM utilisation bound for two tasks (≈0.828) so
        // the sufficient RM test fails, yet EDF schedules it (U ≤ 1).
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("a", 2, 2, 1),
            PeriodicTask::new("b", 5, 5, 2),
        ])
        .unwrap();
        assert!(tasks.utilization() > rm_utilization_bound(2));
        assert!(edf_utilization_test(&tasks));
        let edf = preemptive_simulation(&tasks, SchedulingPolicy::EarliestDeadlineFirst);
        assert!(edf.schedulable, "EDF should schedule U<=1: {edf:?}");
    }

    #[test]
    fn preemptive_simulation_counts_misses() {
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("a", 3, 3, 2),
            PeriodicTask::new("b", 6, 6, 3),
        ])
        .unwrap();
        // U = 2/3 + 1/2 = 1.1667 > 1: misses are unavoidable.
        let outcome = preemptive_simulation(&tasks, SchedulingPolicy::EarliestDeadlineFirst);
        assert!(!outcome.schedulable);
        assert!(outcome.deadline_misses > 0);
    }

    #[test]
    fn empty_task_set_is_trivially_schedulable() {
        let tasks = TaskSet::new(vec![]).unwrap();
        let outcome = preemptive_simulation(&tasks, SchedulingPolicy::RateMonotonic);
        assert!(outcome.schedulable);
        assert_eq!(outcome.horizon, 0);
        assert!(edf_utilization_test(&tasks));
    }

    #[test]
    fn preemptions_are_observed_under_rm() {
        // A long low-priority job gets preempted by the short-period task.
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("fast", 4, 4, 1),
            PeriodicTask::new("slow", 12, 12, 6),
        ])
        .unwrap();
        let outcome = preemptive_simulation(&tasks, SchedulingPolicy::RateMonotonic);
        assert!(outcome.schedulable);
        assert!(outcome.preemptions > 0);
    }
}
