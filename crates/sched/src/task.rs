//! Periodic task model extracted from AADL thread timing properties.

use std::fmt;

use affine_clocks::lcm_all;
use serde::{Deserialize, Serialize};

/// Error raised while building a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSetError {
    /// A task has a zero period.
    ZeroPeriod(String),
    /// A task has a zero worst-case execution time.
    ZeroWcet(String),
    /// A task's WCET exceeds its deadline (it can never meet it).
    WcetExceedsDeadline(String),
    /// A task's deadline exceeds its period (unsupported constrained model).
    DeadlineExceedsPeriod(String),
    /// Two tasks share a name.
    DuplicateTask(String),
    /// The hyper-period overflows `u64`.
    HyperperiodOverflow,
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::ZeroPeriod(t) => write!(f, "task `{t}` has a zero period"),
            TaskSetError::ZeroWcet(t) => write!(f, "task `{t}` has a zero execution time"),
            TaskSetError::WcetExceedsDeadline(t) => {
                write!(
                    f,
                    "task `{t}` has an execution time larger than its deadline"
                )
            }
            TaskSetError::DeadlineExceedsPeriod(t) => {
                write!(f, "task `{t}` has a deadline larger than its period")
            }
            TaskSetError::DuplicateTask(t) => write!(f, "duplicate task name `{t}`"),
            TaskSetError::HyperperiodOverflow => write!(f, "hyper-period overflows 64 bits"),
        }
    }
}

impl std::error::Error for TaskSetError {}

/// A periodic task (an AADL thread with `Dispatch_Protocol => Periodic`).
///
/// All times are expressed in integer *ticks*; the tool chain uses one tick
/// per millisecond for the case study (the processor's `Clock_Period`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicTask {
    /// Task (thread) name.
    pub name: String,
    /// Dispatch period in ticks.
    pub period: u64,
    /// Relative deadline in ticks (must not exceed the period).
    pub deadline: u64,
    /// Worst-case execution time in ticks.
    pub wcet: u64,
    /// Dispatch offset (phase) in ticks.
    pub offset: u64,
    /// Fixed priority, if assigned (larger is more urgent).
    pub priority: Option<i64>,
}

impl PeriodicTask {
    /// Creates a task with a zero offset and no explicit priority.
    pub fn new(name: impl Into<String>, period: u64, deadline: u64, wcet: u64) -> Self {
        Self {
            name: name.into(),
            period,
            deadline,
            wcet,
            offset: 0,
            priority: None,
        }
    }

    /// Builder-style setter for the dispatch offset.
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// Builder-style setter for the priority.
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Processor utilisation of this task (`wcet / period`).
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }

    /// Number of jobs released in an interval of `horizon` ticks.
    pub fn jobs_in(&self, horizon: u64) -> u64 {
        if horizon <= self.offset {
            0
        } else {
            (horizon - self.offset).div_ceil(self.period)
        }
    }
}

/// An immutable, validated set of periodic tasks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// Validates and wraps a list of tasks.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskSetError`] if any task violates the periodic model
    /// (zero period/WCET, WCET > deadline, deadline > period) or if names
    /// collide.
    pub fn new(tasks: Vec<PeriodicTask>) -> Result<Self, TaskSetError> {
        let mut names = std::collections::BTreeSet::new();
        for t in &tasks {
            if t.period == 0 {
                return Err(TaskSetError::ZeroPeriod(t.name.clone()));
            }
            if t.wcet == 0 {
                return Err(TaskSetError::ZeroWcet(t.name.clone()));
            }
            if t.wcet > t.deadline {
                return Err(TaskSetError::WcetExceedsDeadline(t.name.clone()));
            }
            if t.deadline > t.period {
                return Err(TaskSetError::DeadlineExceedsPeriod(t.name.clone()));
            }
            if !names.insert(t.name.clone()) {
                return Err(TaskSetError::DuplicateTask(t.name.clone()));
            }
        }
        Ok(Self { tasks })
    }

    /// The tasks, in the order given at construction.
    pub fn tasks(&self) -> &[PeriodicTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Looks up a task by name.
    pub fn task(&self, name: &str) -> Option<&PeriodicTask> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Total processor utilisation.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(PeriodicTask::utilization).sum()
    }

    /// Hyper-period: least common multiple of all periods (the paper's step
    /// 1). `None` for an empty set or on overflow.
    pub fn hyperperiod(&self) -> Option<u64> {
        let periods: Vec<u64> = self.tasks.iter().map(|t| t.period).collect();
        lcm_all(&periods)
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "task set (U = {:.3}):", self.utilization())?;
        for t in &self.tasks {
            writeln!(
                f,
                "  {:<16} T={:<4} D={:<4} C={:<4} O={}",
                t.name, t.period, t.deadline, t.wcet, t.offset
            )?;
        }
        Ok(())
    }
}

/// The case-study task set of the paper: `thProducer` (4 ms), `thConsumer`
/// (6 ms), `thProdTimer` (8 ms) and `thConsTimer` (8 ms), with 1 ms WCETs
/// except the consumer's 2 ms.
pub fn case_study_task_set() -> TaskSet {
    TaskSet::new(vec![
        PeriodicTask::new("thProducer", 4, 4, 1).with_priority(4),
        PeriodicTask::new("thConsumer", 6, 6, 2).with_priority(3),
        PeriodicTask::new("thProdTimer", 8, 8, 1).with_priority(2),
        PeriodicTask::new("thConsTimer", 8, 8, 1).with_priority(1),
    ])
    .expect("the case-study task set is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_hyperperiod_is_24() {
        let ts = case_study_task_set();
        assert_eq!(ts.hyperperiod(), Some(24));
        assert_eq!(ts.len(), 4);
        assert!((ts.utilization() - (0.25 + 2.0 / 6.0 + 0.125 + 0.125)).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_tasks() {
        assert_eq!(
            TaskSet::new(vec![PeriodicTask::new("a", 0, 0, 1)]),
            Err(TaskSetError::ZeroPeriod("a".into()))
        );
        assert_eq!(
            TaskSet::new(vec![PeriodicTask::new("a", 4, 4, 0)]),
            Err(TaskSetError::ZeroWcet("a".into()))
        );
        assert_eq!(
            TaskSet::new(vec![PeriodicTask::new("a", 4, 2, 3)]),
            Err(TaskSetError::WcetExceedsDeadline("a".into()))
        );
        assert_eq!(
            TaskSet::new(vec![PeriodicTask::new("a", 4, 6, 1)]),
            Err(TaskSetError::DeadlineExceedsPeriod("a".into()))
        );
        assert_eq!(
            TaskSet::new(vec![
                PeriodicTask::new("a", 4, 4, 1),
                PeriodicTask::new("a", 8, 8, 1)
            ]),
            Err(TaskSetError::DuplicateTask("a".into()))
        );
    }

    #[test]
    fn job_counting_with_offsets() {
        let t = PeriodicTask::new("a", 4, 4, 1).with_offset(2);
        assert_eq!(t.jobs_in(2), 0);
        assert_eq!(t.jobs_in(3), 1);
        assert_eq!(t.jobs_in(24), 6);
        let t0 = PeriodicTask::new("b", 4, 4, 1);
        assert_eq!(t0.jobs_in(24), 6);
    }

    #[test]
    fn lookup_and_display() {
        let ts = case_study_task_set();
        assert!(ts.task("thProducer").is_some());
        assert!(ts.task("nothing").is_none());
        let text = ts.to_string();
        assert!(text.contains("thConsumer"));
        assert!(text.contains("U ="));
        assert!(!ts.is_empty());
    }

    #[test]
    fn error_display() {
        let e = TaskSetError::WcetExceedsDeadline("x".into());
        assert!(e.to_string().contains("x"));
        assert!(TaskSetError::HyperperiodOverflow.to_string().contains("64"));
    }
}
