//! Random task-set generation for the benchmark harness.
//!
//! Uses the UUniFast algorithm to draw per-task utilisations summing to a
//! target, and periods from a harmonically-friendly set so that hyper-periods
//! stay bounded — mirroring how schedulability papers (and the Cheddar
//! comparisons) sweep acceptance ratio against utilisation.

use rand::Rng;

use crate::task::{PeriodicTask, TaskSet, TaskSetError};

/// Periods (in ticks) drawn from when generating random task sets. All
/// divide 240, keeping the hyper-period at most 240 ticks.
pub const PERIOD_CHOICES: [u64; 8] = [4, 6, 8, 10, 12, 16, 20, 24];

/// Draws `n` utilisations summing to `total` with the UUniFast algorithm.
///
/// Values are unbiased over the simplex; `total` is typically in `(0, 1]`.
pub fn uunifast<R: Rng>(rng: &mut R, n: usize, total: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut utilizations = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next: f64 = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        utilizations.push(sum - next);
        sum = next;
    }
    utilizations.push(sum);
    utilizations
}

/// Generates a random implicit-deadline task set of `n` tasks with total
/// utilisation `total_utilization`.
///
/// WCETs are rounded up to at least one tick, which may push the real
/// utilisation slightly above the target for very small utilisations; the
/// validation constraints (WCET ≤ deadline = period) always hold.
///
/// # Errors
///
/// Propagates [`TaskSetError`] — which cannot occur for `n ≥ 1` and a
/// positive target, but the signature keeps the caller honest.
pub fn random_task_set<R: Rng>(
    rng: &mut R,
    n: usize,
    total_utilization: f64,
) -> Result<TaskSet, TaskSetError> {
    let utilizations = uunifast(rng, n, total_utilization);
    let mut tasks = Vec::with_capacity(n);
    for (i, u) in utilizations.into_iter().enumerate() {
        let period = PERIOD_CHOICES[rng.gen_range(0..PERIOD_CHOICES.len())];
        let wcet = ((u * period as f64).round() as u64).clamp(1, period);
        tasks.push(PeriodicTask::new(format!("task{i}"), period, period, wcet));
    }
    TaskSet::new(tasks)
}

/// Generates `count` random task sets and reports how many are accepted by
/// the given check — the acceptance-ratio experiment shape.
pub fn acceptance_ratio<R, F>(
    rng: &mut R,
    count: usize,
    n: usize,
    total_utilization: f64,
    mut accept: F,
) -> f64
where
    R: Rng,
    F: FnMut(&TaskSet) -> bool,
{
    if count == 0 {
        return 0.0;
    }
    let mut accepted = 0usize;
    for _ in 0..count {
        if let Ok(ts) = random_task_set(rng, n, total_utilization) {
            if accept(&ts) {
                accepted += 1;
            }
        }
    }
    accepted as f64 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uunifast_sums_to_target() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 20] {
            let u = uunifast(&mut rng, n, 0.8);
            assert_eq!(u.len(), n);
            let sum: f64 = u.iter().sum();
            assert!((sum - 0.8).abs() < 1e-9, "sum {sum} for n={n}");
            assert!(u.iter().all(|&x| x >= 0.0));
        }
        assert!(uunifast(&mut rng, 0, 0.5).is_empty());
    }

    #[test]
    fn random_task_sets_are_valid() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let ts = random_task_set(&mut rng, 6, 0.7).unwrap();
            assert_eq!(ts.len(), 6);
            assert!(ts.hyperperiod().unwrap() <= 240 * 240);
            for t in ts.tasks() {
                assert!(t.wcet >= 1 && t.wcet <= t.period);
                assert_eq!(t.deadline, t.period);
            }
        }
    }

    #[test]
    fn acceptance_ratio_decreases_with_utilization() {
        let mut rng = StdRng::seed_from_u64(1);
        let low = acceptance_ratio(&mut rng, 40, 5, 0.4, |ts| {
            crate::baseline::rm_response_time_analysis(ts).schedulable
        });
        let mut rng = StdRng::seed_from_u64(1);
        let high = acceptance_ratio(&mut rng, 40, 5, 0.98, |ts| {
            crate::baseline::rm_response_time_analysis(ts).schedulable
        });
        assert!(
            low >= high,
            "low-U acceptance {low} < high-U acceptance {high}"
        );
        assert!(low > 0.5);
    }

    #[test]
    fn acceptance_ratio_handles_zero_count() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(acceptance_ratio(&mut rng, 0, 5, 0.5, |_| true), 0.0);
    }
}
