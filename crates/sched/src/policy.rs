//! Scheduling policies considered by the static scheduler synthesis.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The scheduling policy used to order jobs.
///
/// The paper's synthesis process considers "different scheduling policies …
/// such as EDF and RM"; both are supported, for the static non-preemptive
/// synthesis and for the preemptive baseline simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Rate Monotonic: fixed priorities, shorter period = higher priority.
    RateMonotonic,
    /// Earliest Deadline First: dynamic priorities by absolute deadline.
    EarliestDeadlineFirst,
    /// Fixed priorities taken from the AADL `Priority` property (larger
    /// value = more urgent); falls back to Rate Monotonic ordering for tasks
    /// without a priority.
    FixedPriority,
}

impl SchedulingPolicy {
    /// All policies, for parameter sweeps.
    pub const ALL: [SchedulingPolicy; 3] = [
        SchedulingPolicy::RateMonotonic,
        SchedulingPolicy::EarliestDeadlineFirst,
        SchedulingPolicy::FixedPriority,
    ];

    /// Short name used in reports and benchmark labels.
    pub fn short_name(self) -> &'static str {
        match self {
            SchedulingPolicy::RateMonotonic => "RM",
            SchedulingPolicy::EarliestDeadlineFirst => "EDF",
            SchedulingPolicy::FixedPriority => "FP",
        }
    }
}

impl fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(SchedulingPolicy::RateMonotonic.to_string(), "RM");
        assert_eq!(SchedulingPolicy::EarliestDeadlineFirst.to_string(), "EDF");
        assert_eq!(SchedulingPolicy::FixedPriority.to_string(), "FP");
        assert_eq!(SchedulingPolicy::ALL.len(), 3);
    }
}
