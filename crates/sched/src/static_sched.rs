//! Static, non-preemptive, single-processor scheduler synthesis over the
//! hyper-period.
//!
//! This is the paper's step 2: every discrete event of every thread —
//! dispatch, input freeze, start, complete, output release — is allocated a
//! tick within the hyper-period such that all timing properties hold. The
//! schedule is deterministic and repeats every hyper-period, which is what
//! makes the affine-clock export of step 3 possible.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::policy::SchedulingPolicy;
use crate::task::{TaskSet, TaskSetError};

/// Error raised when no valid static schedule exists.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulingError {
    /// The task set itself is invalid.
    Task(TaskSetError),
    /// The task set is empty.
    EmptyTaskSet,
    /// A job missed its deadline under the chosen policy.
    DeadlineMiss {
        /// Task name.
        task: String,
        /// Job index (0-based within the hyper-period).
        job: u64,
        /// Tick at which the job would complete.
        completion: u64,
        /// Absolute deadline it violates.
        deadline: u64,
    },
    /// Total utilisation exceeds one: no single-processor schedule exists.
    Overload {
        /// The computed utilisation.
        utilization: f64,
    },
}

impl fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingError::Task(e) => write!(f, "{e}"),
            SchedulingError::EmptyTaskSet => write!(f, "cannot schedule an empty task set"),
            SchedulingError::DeadlineMiss {
                task,
                job,
                completion,
                deadline,
            } => write!(
                f,
                "job {job} of `{task}` completes at {completion}, after its deadline {deadline}"
            ),
            SchedulingError::Overload { utilization } => {
                write!(f, "task set utilisation {utilization:.3} exceeds 1.0")
            }
        }
    }
}

impl std::error::Error for SchedulingError {}

impl From<TaskSetError> for SchedulingError {
    fn from(e: TaskSetError) -> Self {
        SchedulingError::Task(e)
    }
}

/// One scheduled job with all its discrete events, in ticks from the start
/// of the hyper-period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Task name.
    pub task: String,
    /// Job index within the hyper-period (0-based).
    pub job: u64,
    /// Dispatch (release) tick.
    pub dispatch: u64,
    /// Input freeze tick (`Input_Time`, dispatch by default).
    pub input_freeze: u64,
    /// Start-of-execution tick.
    pub start: u64,
    /// Completion tick (start + WCET).
    pub completion: u64,
    /// Output release tick (`Output_Time`, completion by default).
    pub output_release: u64,
    /// Absolute deadline tick.
    pub deadline: u64,
}

impl ScheduleEntry {
    /// Lateness of the job: completion minus deadline (negative when early).
    pub fn lateness(&self) -> i64 {
        self.completion as i64 - self.deadline as i64
    }

    /// Response time of the job (completion minus dispatch).
    pub fn response_time(&self) -> u64 {
        self.completion - self.dispatch
    }
}

/// A complete static schedule over one hyper-period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticSchedule {
    /// Policy used to order jobs.
    pub policy: SchedulingPolicy,
    /// Hyper-period length in ticks.
    pub hyperperiod: u64,
    /// Scheduled jobs, ordered by start tick.
    pub entries: Vec<ScheduleEntry>,
}

impl StaticSchedule {
    /// Synthesises a static non-preemptive single-processor schedule for
    /// `tasks` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulingError::DeadlineMiss`] when the policy cannot meet
    /// every deadline non-preemptively, [`SchedulingError::Overload`] when
    /// utilisation exceeds 1, or [`SchedulingError::EmptyTaskSet`].
    pub fn synthesize(
        tasks: &TaskSet,
        policy: SchedulingPolicy,
    ) -> Result<StaticSchedule, SchedulingError> {
        if tasks.is_empty() {
            return Err(SchedulingError::EmptyTaskSet);
        }
        let utilization = tasks.utilization();
        if utilization > 1.0 + 1e-9 {
            return Err(SchedulingError::Overload { utilization });
        }
        let hyperperiod = tasks
            .hyperperiod()
            .ok_or(SchedulingError::Task(TaskSetError::HyperperiodOverflow))?;

        // Generate all jobs of the hyper-period.
        #[derive(Debug, Clone)]
        struct Job {
            task: String,
            job: u64,
            release: u64,
            deadline: u64,
            wcet: u64,
            period: u64,
            priority: i64,
        }
        let mut jobs = Vec::new();
        for t in tasks.tasks() {
            let mut k = 0;
            let mut release = t.offset;
            while release < hyperperiod {
                jobs.push(Job {
                    task: t.name.clone(),
                    job: k,
                    release,
                    deadline: release + t.deadline,
                    wcet: t.wcet,
                    period: t.period,
                    priority: t.priority.unwrap_or(i64::MIN),
                });
                release += t.period;
                k += 1;
            }
        }

        // Non-preemptive list scheduling: at each decision point pick the
        // pending released job preferred by the policy and run it to
        // completion.
        let mut time = 0u64;
        let mut pending: Vec<Job> = jobs;
        let mut entries = Vec::new();
        while !pending.is_empty() {
            // Released jobs at `time`.
            let released: Vec<usize> = pending
                .iter()
                .enumerate()
                .filter(|(_, j)| j.release <= time)
                .map(|(i, _)| i)
                .collect();
            if released.is_empty() {
                // Idle until the next release.
                time = pending.iter().map(|j| j.release).min().unwrap_or(time);
                continue;
            }
            let chosen = *released
                .iter()
                .min_by(|&&a, &&b| {
                    let ja = &pending[a];
                    let jb = &pending[b];
                    let key = |j: &Job| match policy {
                        SchedulingPolicy::EarliestDeadlineFirst => (j.deadline, j.period),
                        SchedulingPolicy::RateMonotonic => (j.period, j.deadline),
                        SchedulingPolicy::FixedPriority => (j.period, j.deadline),
                    };
                    match policy {
                        SchedulingPolicy::FixedPriority => {
                            // Priority dominates (larger value = more
                            // urgent), then RM order.
                            (
                                std::cmp::Reverse(ja.priority),
                                ja.period,
                                ja.deadline,
                                ja.release,
                            )
                                .cmp(&(
                                    std::cmp::Reverse(jb.priority),
                                    jb.period,
                                    jb.deadline,
                                    jb.release,
                                ))
                        }
                        _ => key(ja)
                            .cmp(&key(jb))
                            .then(ja.release.cmp(&jb.release))
                            .then(ja.task.cmp(&jb.task)),
                    }
                })
                .expect("released is non-empty");
            let job = pending.remove(chosen);
            let start = time.max(job.release);
            let completion = start + job.wcet;
            if completion > job.deadline {
                return Err(SchedulingError::DeadlineMiss {
                    task: job.task,
                    job: job.job,
                    completion,
                    deadline: job.deadline,
                });
            }
            entries.push(ScheduleEntry {
                task: job.task,
                job: job.job,
                dispatch: job.release,
                input_freeze: job.release,
                start,
                completion,
                output_release: completion,
                deadline: job.deadline,
            });
            time = completion;
        }
        entries.sort_by_key(|e| (e.start, e.task.clone()));
        Ok(StaticSchedule {
            policy,
            hyperperiod,
            entries,
        })
    }

    /// Returns `true` when every job meets its deadline and no two jobs
    /// overlap (always true for schedules produced by
    /// [`StaticSchedule::synthesize`]; useful as a self-check and for
    /// property tests).
    pub fn is_valid(&self) -> bool {
        let mut last_completion = 0u64;
        for e in &self.entries {
            if e.completion > e.deadline || e.start < e.dispatch || e.start < last_completion {
                return false;
            }
            last_completion = e.completion;
        }
        true
    }

    /// Entries of a single task, in job order.
    pub fn entries_for(&self, task: &str) -> Vec<&ScheduleEntry> {
        let mut out: Vec<&ScheduleEntry> = self.entries.iter().filter(|e| e.task == task).collect();
        out.sort_by_key(|e| e.job);
        out
    }

    /// Total busy time within the hyper-period.
    pub fn busy_time(&self) -> u64 {
        self.entries.iter().map(|e| e.completion - e.start).sum()
    }

    /// Processor utilisation achieved by the schedule.
    pub fn utilization(&self) -> f64 {
        self.busy_time() as f64 / self.hyperperiod as f64
    }

    /// Idle time within the hyper-period.
    pub fn idle_time(&self) -> u64 {
        self.hyperperiod - self.busy_time()
    }

    /// Worst observed response time per task.
    pub fn worst_response_times(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for e in &self.entries {
            let entry = out.entry(e.task.clone()).or_insert(0);
            *entry = (*entry).max(e.response_time());
        }
        out
    }

    /// Renders the schedule as a fixed-width timeline table (one row per
    /// job), the textual analogue of the Gantt views produced by scheduling
    /// tools.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "static {} schedule, hyper-period {} ticks, utilisation {:.3}\n",
            self.policy,
            self.hyperperiod,
            self.utilization()
        ));
        out.push_str("task             job dispatch freeze start complete output deadline\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{:<16} {:>3} {:>8} {:>6} {:>5} {:>8} {:>6} {:>8}\n",
                e.task,
                e.job,
                e.dispatch,
                e.input_freeze,
                e.start,
                e.completion,
                e.output_release,
                e.deadline
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{case_study_task_set, PeriodicTask};

    #[test]
    fn case_study_schedules_under_edf_and_rm() {
        let tasks = case_study_task_set();
        for policy in [
            SchedulingPolicy::EarliestDeadlineFirst,
            SchedulingPolicy::RateMonotonic,
            SchedulingPolicy::FixedPriority,
        ] {
            let schedule = StaticSchedule::synthesize(&tasks, policy).unwrap();
            assert_eq!(schedule.hyperperiod, 24);
            // 6 + 4 + 3 + 3 jobs in 24 ms.
            assert_eq!(schedule.entries.len(), 16);
            assert!(schedule.is_valid(), "{policy} schedule invalid");
            // Busy time = 6*1 + 4*2 + 3*1 + 3*1 = 20 ticks.
            assert_eq!(schedule.busy_time(), 20);
            assert_eq!(schedule.idle_time(), 4);
        }
    }

    #[test]
    fn producer_runs_every_four_ticks() {
        let tasks = case_study_task_set();
        let schedule =
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
        let producer = schedule.entries_for("thProducer");
        assert_eq!(producer.len(), 6);
        for (k, entry) in producer.iter().enumerate() {
            assert_eq!(entry.dispatch, 4 * k as u64);
            assert_eq!(entry.input_freeze, entry.dispatch);
            assert!(entry.completion <= entry.deadline);
        }
    }

    #[test]
    fn deadline_miss_detected() {
        // Two tasks with 3-tick WCETs and 4-tick deadlines cannot both run
        // non-preemptively at period 8 without one missing when released
        // together... actually craft a clear miss: three tasks released at 0
        // with deadline 4 and WCET 2 each.
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("a", 8, 4, 2),
            PeriodicTask::new("b", 8, 4, 2),
            PeriodicTask::new("c", 8, 4, 2),
        ])
        .unwrap();
        let err = StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst)
            .unwrap_err();
        assert!(matches!(err, SchedulingError::DeadlineMiss { .. }));
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn overload_detected() {
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("a", 2, 2, 2),
            PeriodicTask::new("b", 4, 4, 1),
        ])
        .unwrap();
        let err = StaticSchedule::synthesize(&tasks, SchedulingPolicy::RateMonotonic).unwrap_err();
        assert!(matches!(err, SchedulingError::Overload { .. }));
    }

    #[test]
    fn empty_task_set_rejected() {
        let tasks = TaskSet::new(vec![]).unwrap();
        assert_eq!(
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::RateMonotonic).unwrap_err(),
            SchedulingError::EmptyTaskSet
        );
    }

    #[test]
    fn offsets_shift_dispatches() {
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("a", 4, 4, 1),
            PeriodicTask::new("b", 8, 8, 1).with_offset(2),
        ])
        .unwrap();
        let schedule = StaticSchedule::synthesize(&tasks, SchedulingPolicy::RateMonotonic).unwrap();
        let a = schedule.entries_for("a");
        let b = schedule.entries_for("b");
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].dispatch, 2);
        assert!(b[0].start >= 2);
    }

    #[test]
    fn fixed_priority_respects_aadl_priorities() {
        // Give the long-period task the highest priority: under FP it runs
        // first at time 0 even though RM would pick the short-period task.
        let tasks = TaskSet::new(vec![
            PeriodicTask::new("short", 4, 4, 1).with_priority(1),
            PeriodicTask::new("long", 8, 8, 1).with_priority(10),
        ])
        .unwrap();
        let schedule = StaticSchedule::synthesize(&tasks, SchedulingPolicy::FixedPriority).unwrap();
        let first = &schedule.entries[0];
        assert_eq!(first.task, "long");
        assert_eq!(first.start, 0);
    }

    #[test]
    fn report_table_and_metrics() {
        let tasks = case_study_task_set();
        let schedule =
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
        let table = schedule.to_table();
        assert!(table.contains("thProducer"));
        assert!(table.contains("hyper-period 24"));
        let wrt = schedule.worst_response_times();
        assert!(wrt["thProducer"] >= 1);
        assert!(wrt["thConsumer"] >= 2);
        let entry = &schedule.entries[0];
        assert!(entry.lateness() <= 0);
    }
}
