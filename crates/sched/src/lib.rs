//! Thread-level scheduler synthesis for the polychronous AADL tool chain.
//!
//! The paper (Section IV-D) proposes a static scheduler synthesis in three
//! steps: (1) compute the hyper-period of the thread periods as their least
//! common multiple, (2) allocate the discrete events of each thread
//! (dispatch, input freeze, start, complete, output release) within the
//! hyper-period under a static, non-preemptive, single-processor policy
//! (EDF and RM are both considered) while satisfying every timing property,
//! and (3) export the schedule as SIGNAL affine clock relations, against
//! which synchronizability rules can be checked in Polychrony.
//!
//! This crate implements all three steps ([`task`], [`static_sched`],
//! [`affine_export`]) plus the classical schedulability analyses used as the
//! Cheddar-like comparison baseline ([`baseline`]) and random task-set
//! generation for the benchmarks ([`workload`]).
//!
//! # Example: the case-study thread set
//!
//! ```
//! use sched::{PeriodicTask, SchedulingPolicy, StaticSchedule, TaskSet};
//!
//! let tasks = TaskSet::new(vec![
//!     PeriodicTask::new("thProducer", 4, 4, 1),
//!     PeriodicTask::new("thConsumer", 6, 6, 2),
//!     PeriodicTask::new("thProdTimer", 8, 8, 1),
//!     PeriodicTask::new("thConsTimer", 8, 8, 1),
//! ])?;
//! assert_eq!(tasks.hyperperiod(), Some(24));
//! let schedule = StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst)?;
//! assert!(schedule.is_valid());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine_export;
pub mod baseline;
pub mod policy;
pub mod static_sched;
pub mod task;
pub mod workload;

pub use affine_export::{export_affine_clocks, AffineExport};
pub use baseline::{
    edf_utilization_test, preemptive_simulation, rm_response_time_analysis, rm_utilization_bound,
    BaselineReport, ResponseTimeReport, SimulationOutcome,
};
pub use policy::SchedulingPolicy;
pub use static_sched::{ScheduleEntry, SchedulingError, StaticSchedule};
pub use task::{PeriodicTask, TaskSet, TaskSetError};
