//! Export of a static schedule as SIGNAL affine clock relations (the paper's
//! step 3: "export schedules to SIGNAL affine clocks in a direct way").
//!
//! The dispatch clock of each periodic thread is exactly affine to the base
//! tick: `{period·t + offset}`. The start, completion and output events are
//! periodic with the *hyper-period* (the schedule repeats), so each job
//! occurrence is exported as an affine clock of period `hyperperiod` and
//! phase equal to its tick. The export is then verified: dispatch clocks
//! must contain the corresponding input-freeze clocks, execution windows of
//! different jobs must be disjoint (non-preemptive single processor), and
//! shared-data access clocks must be mutually exclusive.

use std::fmt;

use affine_clocks::{AffineClockSystem, AffineError, AffineRelation, DispatchFeasibility};
use serde::{Deserialize, Serialize};

use crate::static_sched::StaticSchedule;
use crate::task::TaskSet;

/// The affine-clock view of a static schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffineExport {
    /// Affine clock system over the base tick: one `*_dispatch` clock per
    /// task plus one `start`/`complete`/`output` clock per job.
    pub clocks: AffineClockSystem,
    /// Number of verified synchronizability constraints.
    pub verified_constraints: usize,
}

/// Error raised when the schedule cannot be expressed or verified as affine
/// clocks.
#[derive(Debug, Clone, PartialEq)]
pub enum AffineExportError {
    /// The underlying affine calculus failed (overflow, duplicate clock).
    Affine(AffineError),
    /// Verification of a synchronizability rule failed.
    Verification(String),
}

impl fmt::Display for AffineExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineExportError::Affine(e) => write!(f, "{e}"),
            AffineExportError::Verification(msg) => {
                write!(f, "synchronizability check failed: {msg}")
            }
        }
    }
}

impl std::error::Error for AffineExportError {}

impl From<AffineError> for AffineExportError {
    fn from(e: AffineError) -> Self {
        AffineExportError::Affine(e)
    }
}

/// Exports `schedule` (synthesised from `tasks`) as an affine clock system
/// and verifies the synchronizability rules.
///
/// # Errors
///
/// Returns [`AffineExportError::Verification`] when a rule fails — a
/// dispatch clock not containing its job occurrences, or two execution
/// windows overlapping — and [`AffineExportError::Affine`] on arithmetic
/// problems.
pub fn export_affine_clocks(
    tasks: &TaskSet,
    schedule: &StaticSchedule,
) -> Result<AffineExport, AffineExportError> {
    let mut clocks = AffineClockSystem::new("tick");
    let hp = schedule.hyperperiod;

    // Dispatch clocks: exactly affine to the tick.
    for task in tasks.tasks() {
        clocks.add_clock(
            format!("{}_dispatch", task.name),
            AffineRelation::new(task.period, task.offset)?,
        )?;
    }

    // Per-job event clocks: affine with the hyper-period.
    for entry in &schedule.entries {
        let base = format!("{}_{}", entry.task, entry.job);
        clocks.add_clock(
            format!("{base}_freeze"),
            AffineRelation::new(hp, entry.input_freeze)?,
        )?;
        clocks.add_clock(
            format!("{base}_start"),
            AffineRelation::new(hp, entry.start)?,
        )?;
        clocks.add_clock(
            format!("{base}_complete"),
            AffineRelation::new(hp, entry.completion)?,
        )?;
        clocks.add_clock(
            format!("{base}_output"),
            AffineRelation::new(hp, entry.output_release)?,
        )?;
    }

    // Verification 1: every job's freeze instant lies on the task's dispatch
    // clock (Input_Time = Dispatch in the default execution model).
    let mut verified = 0usize;
    for entry in &schedule.entries {
        let dispatch = clocks.relation(&format!("{}_dispatch", entry.task))?;
        if !dispatch.contains(entry.input_freeze) {
            return Err(AffineExportError::Verification(format!(
                "input freeze of {} job {} at tick {} is not on its dispatch clock",
                entry.task, entry.job, entry.input_freeze
            )));
        }
        verified += 1;
    }

    // Verification 2: start clocks of different jobs are pairwise exclusive
    // (single-processor non-preemptive execution) and windows do not overlap.
    for (i, a) in schedule.entries.iter().enumerate() {
        for b in &schedule.entries[i + 1..] {
            let a_name = format!("{}_{}_start", a.task, a.job);
            let b_name = format!("{}_{}_start", b.task, b.job);
            if clocks.intersection(&a_name, &b_name)?.is_some() {
                return Err(AffineExportError::Verification(format!(
                    "jobs {a_name} and {b_name} start at the same instant"
                )));
            }
            let overlap = a.start < b.completion && b.start < a.completion;
            if overlap {
                return Err(AffineExportError::Verification(format!(
                    "execution windows of {a_name} and {b_name} overlap"
                )));
            }
            verified += 1;
        }
    }

    Ok(AffineExport {
        clocks,
        verified_constraints: verified,
    })
}

impl AffineExport {
    /// Checks that the access clocks of two tasks to a shared resource are
    /// mutually exclusive — the property required for the shared `Queue` data
    /// of the case study. Access is taken to happen during the execution
    /// window, so it suffices that the start clocks never coincide, which the
    /// export already verified; this method re-exposes the check for a pair
    /// of task names so that callers (and tests) can query it directly.
    ///
    /// # Errors
    ///
    /// Returns an [`AffineError`] if a task name is unknown.
    pub fn accesses_are_exclusive(&self, task_a: &str, task_b: &str) -> Result<bool, AffineError> {
        // Collect the job start clocks of each task and check pairwise
        // exclusion.
        let starts = |task: &str| -> Vec<String> {
            self.clocks
                .iter()
                .map(|c| c.name)
                .filter(|n| n.starts_with(&format!("{task}_")) && n.ends_with("_start"))
                .collect()
        };
        let a_clocks = starts(task_a);
        let b_clocks = starts(task_b);
        if a_clocks.is_empty() {
            return Err(AffineError::UnknownClock(task_a.to_string()));
        }
        if b_clocks.is_empty() {
            return Err(AffineError::UnknownClock(task_b.to_string()));
        }
        for a in &a_clocks {
            for b in &b_clocks {
                if self.clocks.intersection(a, b)?.is_some() {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Number of clocks in the exported system.
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// The dispatch clocks as a [`DispatchFeasibility`] oracle keyed by
    /// *task name* (the `_dispatch` suffix is stripped): `thProducer` may
    /// fire exactly on the instants of its dispatch relation. Verifiers
    /// re-key the oracle into their signal namespace with
    /// [`DispatchFeasibility::renamed`] to prune state-space candidates
    /// where a thread provably cannot dispatch.
    pub fn dispatch_feasibility(&self) -> DispatchFeasibility {
        let mut oracle = DispatchFeasibility::new();
        for clock in self.clocks.iter() {
            if let Some(task) = clock.name.strip_suffix("_dispatch") {
                oracle.insert(task, clock.relation);
            }
        }
        oracle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedulingPolicy;
    use crate::task::case_study_task_set;

    fn export() -> AffineExport {
        let tasks = case_study_task_set();
        let schedule =
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
        export_affine_clocks(&tasks, &schedule).unwrap()
    }

    #[test]
    fn case_study_exports_and_verifies() {
        let e = export();
        // 4 dispatch clocks + 16 jobs * 4 event clocks.
        assert_eq!(e.clock_count(), 4 + 16 * 4);
        assert!(e.verified_constraints > 16);
    }

    #[test]
    fn dispatch_clocks_are_affine_to_the_tick() {
        let e = export();
        let rel = e.clocks.relation("thProducer_dispatch").unwrap();
        assert_eq!(rel, AffineRelation::new(4, 0).unwrap());
        let rel = e.clocks.relation("thConsumer_dispatch").unwrap();
        assert_eq!(rel.period(), 6);
    }

    #[test]
    fn producer_and_consumer_accesses_are_exclusive() {
        let e = export();
        // Non-preemptive single-processor execution makes the shared Queue
        // accesses of producer and consumer mutually exclusive.
        assert!(e
            .accesses_are_exclusive("thProducer", "thConsumer")
            .unwrap());
        assert!(matches!(
            e.accesses_are_exclusive("thProducer", "missing"),
            Err(AffineError::UnknownClock(_))
        ));
    }

    #[test]
    fn dispatch_feasibility_is_keyed_by_task_name() {
        let e = export();
        let oracle = e.dispatch_feasibility();
        // One entry per task, keyed without the `_dispatch` suffix; the job
        // event clocks do not leak into the oracle.
        assert_eq!(oracle.len(), 4);
        assert!(oracle.may_fire("thProducer", 0));
        assert!(oracle.may_fire("thProducer", 4));
        assert!(!oracle.may_fire("thProducer", 5));
        // Signals the oracle does not know stay unconstrained.
        assert!(oracle.may_fire("thProducer_0_start", 3));
    }

    #[test]
    fn export_detects_overlapping_windows() {
        // Tamper with a schedule to create an overlap and check the verifier
        // rejects it.
        let tasks = case_study_task_set();
        let mut schedule =
            StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).unwrap();
        schedule.entries[1].start = schedule.entries[0].start;
        schedule.entries[1].completion = schedule.entries[0].completion;
        let err = export_affine_clocks(&tasks, &schedule).unwrap_err();
        assert!(matches!(err, AffineExportError::Verification(_)));
        assert!(err.to_string().contains("same instant") || err.to_string().contains("overlap"));
    }
}
