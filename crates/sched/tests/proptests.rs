//! Property-based tests of the scheduler-synthesis invariants: every
//! produced schedule is well-formed, consistent with the task parameters,
//! and its affine export always verifies.

use proptest::prelude::*;

use sched::workload::uunifast;
use sched::{
    export_affine_clocks, preemptive_simulation, PeriodicTask, SchedulingPolicy, StaticSchedule,
    TaskSet,
};

/// Strategy: a valid task set with harmonically-friendly periods and bounded
/// utilisation so that schedules usually exist.
fn task_set_strategy() -> impl Strategy<Value = TaskSet> {
    let periods = prop::sample::select(vec![4u64, 6, 8, 12, 24]);
    prop::collection::vec((periods, 1u64..3), 1..6).prop_filter_map(
        "utilisation must stay below 1",
        |params| {
            let tasks: Vec<PeriodicTask> = params
                .into_iter()
                .enumerate()
                .map(|(i, (period, wcet))| {
                    let wcet = wcet.min(period);
                    PeriodicTask::new(format!("t{i}"), period, period, wcet)
                })
                .collect();
            let ts = TaskSet::new(tasks).ok()?;
            if ts.utilization() <= 0.95 {
                Some(ts)
            } else {
                None
            }
        },
    )
}

proptest! {
    /// Whenever synthesis succeeds, the schedule is valid: jobs within
    /// deadlines, non-overlapping, one entry per released job, busy time
    /// equal to the sum of job WCETs.
    #[test]
    fn synthesized_schedules_are_well_formed(tasks in task_set_strategy(),
                                             policy in prop::sample::select(SchedulingPolicy::ALL.to_vec())) {
        if let Ok(schedule) = StaticSchedule::synthesize(&tasks, policy) {
            prop_assert!(schedule.is_valid());
            let hyperperiod = tasks.hyperperiod().unwrap();
            prop_assert_eq!(schedule.hyperperiod, hyperperiod);
            let expected_jobs: u64 = tasks.tasks().iter().map(|t| t.jobs_in(hyperperiod)).sum();
            prop_assert_eq!(schedule.entries.len() as u64, expected_jobs);
            let expected_busy: u64 = tasks
                .tasks()
                .iter()
                .map(|t| t.jobs_in(hyperperiod) * t.wcet)
                .sum();
            prop_assert_eq!(schedule.busy_time(), expected_busy);
            // Per-task ordering: job k dispatches exactly k periods after the
            // offset.
            for task in tasks.tasks() {
                for (k, entry) in schedule.entries_for(&task.name).iter().enumerate() {
                    prop_assert_eq!(entry.dispatch, task.offset + k as u64 * task.period);
                    prop_assert!(entry.start >= entry.dispatch);
                    prop_assert!(entry.completion <= entry.deadline);
                }
            }
        }
    }

    /// The affine export of any valid schedule verifies: dispatch clocks
    /// contain the freeze instants and execution windows never overlap.
    #[test]
    fn affine_export_always_verifies(tasks in task_set_strategy()) {
        if let Ok(schedule) = StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst) {
            let export = export_affine_clocks(&tasks, &schedule).unwrap();
            prop_assert_eq!(
                export.clock_count(),
                tasks.len() + schedule.entries.len() * 4
            );
            prop_assert!(export.verified_constraints >= schedule.entries.len());
        }
    }

    /// Non-preemptive feasibility implies preemptive feasibility (for the
    /// same EDF policy over the hyper-period): preemption can only help.
    #[test]
    fn nonpreemptive_success_implies_preemptive_success(tasks in task_set_strategy()) {
        if StaticSchedule::synthesize(&tasks, SchedulingPolicy::EarliestDeadlineFirst).is_ok() {
            let sim = preemptive_simulation(&tasks, SchedulingPolicy::EarliestDeadlineFirst);
            prop_assert!(sim.schedulable, "preemptive EDF missed on {tasks}");
        }
    }

    /// UUniFast always returns non-negative utilisations summing to the
    /// target.
    #[test]
    fn uunifast_is_a_distribution(n in 1usize..20, total in 0.05f64..1.0, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let utils = uunifast(&mut rng, n, total);
        prop_assert_eq!(utils.len(), n);
        prop_assert!(utils.iter().all(|&u| u >= -1e-12));
        let sum: f64 = utils.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
    }

    /// The schedule table rendering always mentions every task exactly as
    /// many times as it has jobs (a cheap serialization sanity check).
    #[test]
    fn schedule_table_mentions_every_job(tasks in task_set_strategy()) {
        if let Ok(schedule) = StaticSchedule::synthesize(&tasks, SchedulingPolicy::RateMonotonic) {
            let table = schedule.to_table();
            for task in tasks.tasks() {
                let occurrences = table.matches(&task.name).count() as u64;
                prop_assert!(occurrences >= task.jobs_in(schedule.hyperperiod));
            }
        }
    }
}
