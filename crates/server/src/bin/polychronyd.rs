//! `polychronyd` — the verification-as-a-service daemon.
//!
//! ```text
//! polychronyd (--socket PATH | --tcp ADDR)
//!             [--workers N] [--cache-capacity N]
//!             [--log PATH] [--trace-out PATH]
//! ```
//!
//! Exactly one of `--socket` (unix socket) or `--tcp` (host:port) selects
//! the listening endpoint. `--log` enables the replayable job log,
//! `--trace-out` streams the daemon's telemetry (cache counters, queue
//! gauges, per-job spans) as `polychrony-trace-v1` JSON lines.
//!
//! Exit codes: 0 after a clean shutdown, 1 for a usage error, 2 for a
//! runtime failure (bind error, unwritable log, ...).

use std::path::PathBuf;
use std::process::ExitCode;

use polychrony_server::{Daemon, DaemonConfig};
use polyobs::{Collector, JsonLinesSink};

const USAGE: &str = "usage: polychronyd (--socket PATH | --tcp ADDR) \
                     [--workers N] [--cache-capacity N] [--log PATH] [--trace-out PATH]";

enum Endpoint {
    Unix(PathBuf),
    Tcp(String),
}

struct Args {
    endpoint: Endpoint,
    workers: usize,
    cache_capacity: usize,
    log_path: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut endpoint = None;
    let mut workers = 2usize;
    let mut cache_capacity = 64usize;
    let mut log_path = None;
    let mut trace_out = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--socket" => {
                let path = value("--socket")?;
                set_endpoint(&mut endpoint, Endpoint::Unix(PathBuf::from(path)))?;
            }
            "--tcp" => {
                let addr = value("--tcp")?;
                set_endpoint(&mut endpoint, Endpoint::Tcp(addr))?;
            }
            "--workers" => {
                workers = parse_count(&value("--workers")?, "--workers")?;
            }
            "--cache-capacity" => {
                cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity needs a non-negative integer".to_string())?;
            }
            "--log" => log_path = Some(PathBuf::from(value("--log")?)),
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let Some(endpoint) = endpoint else {
        return Err(format!("one of --socket or --tcp is required\n{USAGE}"));
    };
    Ok(Args {
        endpoint,
        workers,
        cache_capacity,
        log_path,
        trace_out,
    })
}

fn set_endpoint(slot: &mut Option<Endpoint>, endpoint: Endpoint) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!(
            "--socket and --tcp are mutually exclusive\n{USAGE}"
        ));
    }
    *slot = Some(endpoint);
    Ok(())
}

fn parse_count(text: &str, flag: &str) -> Result<usize, String> {
    match text.parse() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} needs a positive integer")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(1);
        }
    };

    let collector = match &args.trace_out {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!(
                        "polychronyd: cannot create trace file {}: {e}",
                        path.display()
                    );
                    return ExitCode::from(1);
                }
            };
            let collector = Collector::full();
            collector.add_sink(Box::new(JsonLinesSink::new(Box::new(file))));
            collector
        }
        None => Collector::counters(),
    };

    let daemon = match Daemon::new(DaemonConfig {
        workers: args.workers,
        cache_capacity: args.cache_capacity,
        log_path: args.log_path.clone(),
        collector: collector.clone(),
    }) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("polychronyd: {e}");
            return ExitCode::from(2);
        }
    };

    let served = match &args.endpoint {
        Endpoint::Unix(path) => {
            println!("polychronyd listening on unix:{}", path.display());
            daemon.serve_unix(path)
        }
        Endpoint::Tcp(addr) => {
            println!("polychronyd listening on tcp:{addr}");
            daemon.serve_tcp(addr)
        }
    };
    daemon.join();
    collector.flush();
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("polychronyd: {e}");
            ExitCode::from(2)
        }
    }
}
