//! The append-only job log: one JSON object per line, replayed on startup.
//!
//! Events: `submitted` (with the full [`JobSpec`]), `started`, `finished`
//! (with the full [`WireReport`]) and `cancelled`. The log is the daemon's
//! only persistent state — replaying it rebuilds the job table exactly,
//! with unfinished jobs re-queued and finished jobs answering `watch`
//! requests from their stored reports. A line that fails to parse (e.g.
//! a torn final line after a crash) is skipped, not fatal.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;

use polyobs::json::{self, Json};
use polywire::{JobSpec, JobState, WireReport};

/// A job reconstructed from the log.
pub(crate) struct ReplayedJob {
    pub spec: JobSpec,
    pub state: JobState,
    pub report: Option<WireReport>,
}

/// Handle to the open log file (or a disabled no-op log).
pub(crate) struct JobLog {
    file: Mutex<Option<File>>,
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl JobLog {
    /// A log that records nothing (no `--log` flag).
    pub fn disabled() -> Self {
        Self {
            file: Mutex::new(None),
        }
    }

    /// Opens (creating if needed) the log at `path`, replays its events,
    /// and returns the handle positioned for appending plus the
    /// reconstructed jobs in id order.
    pub fn open(path: &Path) -> std::io::Result<(Self, BTreeMap<u64, ReplayedJob>)> {
        let mut jobs: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
        if path.exists() {
            for line in BufReader::new(File::open(path)?).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(value) = json::parse(&line) else {
                    continue; // torn line from a crash mid-append
                };
                Self::replay_event(&value, &mut jobs);
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            Self {
                file: Mutex::new(Some(file)),
            },
            jobs,
        ))
    }

    fn replay_event(value: &Json, jobs: &mut BTreeMap<u64, ReplayedJob>) {
        let (Some(event), Some(id)) = (
            value.get("event").and_then(Json::as_str),
            value.get("id").and_then(Json::as_u64),
        ) else {
            return;
        };
        match event {
            "submitted" => {
                let Some(spec) = value.get("spec").and_then(|s| JobSpec::from_json(s).ok()) else {
                    return;
                };
                jobs.insert(
                    id,
                    ReplayedJob {
                        spec,
                        state: JobState::Queued,
                        report: None,
                    },
                );
            }
            // `started` without a matching `finished` means the daemon died
            // mid-job; the job stays Queued so the restart re-runs it.
            "started" => {}
            "finished" => {
                let Some(report) = value
                    .get("report")
                    .and_then(|r| WireReport::from_json(r).ok())
                else {
                    return;
                };
                if let Some(job) = jobs.get_mut(&id) {
                    job.state = if report.error.is_none() {
                        JobState::Done
                    } else {
                        JobState::Failed
                    };
                    job.report = Some(report);
                }
            }
            "cancelled" => {
                if let Some(job) = jobs.get_mut(&id) {
                    job.state = JobState::Cancelled;
                }
            }
            _ => {}
        }
    }

    fn append(&self, value: Json) {
        let mut guard = match self.file.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(file) = guard.as_mut() {
            // A full disk must not take the verification service down with
            // it; the log silently stops growing instead.
            let _ = writeln!(file, "{value}");
            let _ = file.flush();
        }
    }

    pub fn submitted(&self, id: u64, spec: &JobSpec) {
        self.append(obj(vec![
            ("event", Json::Str("submitted".into())),
            ("id", Json::Num(id as f64)),
            ("spec", spec.to_json()),
        ]));
    }

    pub fn started(&self, id: u64) {
        self.append(obj(vec![
            ("event", Json::Str("started".into())),
            ("id", Json::Num(id as f64)),
        ]));
    }

    pub fn finished(&self, id: u64, report: &WireReport) {
        self.append(obj(vec![
            ("event", Json::Str("finished".into())),
            ("id", Json::Num(id as f64)),
            ("report", report.to_json()),
        ]));
    }

    pub fn cancelled(&self, id: u64) {
        self.append(obj(vec![
            ("event", Json::Str("cancelled".into())),
            ("id", Json::Num(id as f64)),
        ]));
    }
}
