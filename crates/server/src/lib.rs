//! `polychronyd` — verification as a service for the polychronous tool
//! chain.
//!
//! The daemon wraps the staged pipeline of `polychrony_core` behind the
//! `polychrony-wire-v1` protocol ([`polywire`]): clients submit AADL
//! models with per-phase options, a bounded worker pool drains the job
//! queue, and every job runs through a shared content-addressed
//! [`ArtifactCache`](polychrony_core::ArtifactCache) — so a property sweep
//! over one model pays the parse-through-simulate front end once and
//! re-runs only the verification phase per variant.
//!
//! Three durability/observability properties shape the design:
//!
//! * **Replayable**: every submission and every result is appended to a
//!   JSON-lines job log. On restart the daemon rebuilds its job table from
//!   the log — finished jobs keep their reports (a `watch` on them replays
//!   the stored result), unfinished jobs are re-enqueued.
//! * **Streaming**: a watched job bridges its collector's `phase.*` spans
//!   and `engine.level` events onto `progress` frames via
//!   [`ProgressBridge`](polyobs::ProgressBridge), so clients see phase
//!   starts and exploration levels live.
//! * **Observable**: the daemon-level [`Collector`](polyobs::Collector)
//!   carries `cache.hits.*` / `cache.misses` counters, the
//!   `daemon.queue_depth` / `daemon.running` gauges and per-job
//!   `daemon.job` spans, and `polychronyd --trace-out` streams them as
//!   `polychrony-trace-v1` lines like every other front end.
//!
//! The library API ([`Daemon`]) is fully in-process — the tests drive it
//! without sockets — and [`Daemon::serve_unix`] / [`Daemon::serve_tcp`]
//! bolt the wire protocol on top. See `docs/SERVICE.md` for the protocol
//! and operational reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod log;
mod serve;

pub use daemon::{Daemon, DaemonConfig};

use std::fmt;

/// A daemon-side failure surfaced to clients as an `error` frame (and to
/// the in-process API as a typed error).
#[derive(Debug)]
pub enum ServerError {
    /// The job log or a socket failed.
    Io(std::io::Error),
    /// The submitted spec's options do not validate.
    InvalidSpec(String),
    /// No job with the requested id exists.
    UnknownJob(u64),
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::InvalidSpec(message) => write!(f, "invalid job spec: {message}"),
            ServerError::UnknownJob(id) => write!(f, "no job with id {id}"),
            ServerError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}
