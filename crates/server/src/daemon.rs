//! The in-process daemon: job table, worker pool, artifact cache, log.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use polychrony_core::ArtifactCache;
use polyobs::Collector;
use polywire::{Frame, JobSpec, JobState, JobStatus, WireReport};

use crate::log::JobLog;
use crate::ServerError;

/// Configuration of a [`Daemon`].
#[derive(Debug)]
pub struct DaemonConfig {
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Entries kept per level of the shared artifact cache (0 disables
    /// caching entirely).
    pub cache_capacity: usize,
    /// Path of the append-only job log; `None` runs without persistence.
    pub log_path: Option<PathBuf>,
    /// Daemon-level telemetry: cache counters, queue gauges, job spans.
    pub collector: Collector,
}

impl Default for DaemonConfig {
    /// Two workers, a 64-entry cache, no log, no telemetry.
    fn default() -> Self {
        Self {
            workers: 2,
            cache_capacity: 64,
            log_path: None,
            collector: Collector::noop(),
        }
    }
}

/// One job's full lifecycle, as the daemon tracks it.
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    report: Option<WireReport>,
    /// Live subscribers; each receives `progress` frames and the final
    /// `result` frame, then its sender is dropped.
    watchers: Vec<mpsc::Sender<Frame>>,
}

/// Mutable state shared by workers and connection handlers.
struct State {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    running: usize,
}

pub(crate) struct Inner {
    state: Mutex<State>,
    /// Signalled when the queue grows or shutdown begins.
    work_ready: Condvar,
    /// Signalled when a job reaches a terminal state.
    job_done: Condvar,
    pub(crate) cache: ArtifactCache,
    pub(crate) collector: Collector,
    log: JobLog,
    shutdown: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Where the serve loop listens, so shutdown can poke `accept` awake.
    pub(crate) poke: Mutex<Option<crate::serve::PokeTarget>>,
}

/// The verification daemon. Cloning yields another handle onto the same
/// daemon (the job table, cache and worker pool are shared).
#[derive(Clone)]
pub struct Daemon {
    pub(crate) inner: Arc<Inner>,
}

impl Daemon {
    /// Builds a daemon: replays the job log (re-queueing unfinished jobs),
    /// wires the cache to the collector, and starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidSpec`] for a zero worker count,
    /// [`ServerError::Io`] when the log cannot be opened.
    pub fn new(config: DaemonConfig) -> Result<Self, ServerError> {
        if config.workers == 0 {
            return Err(ServerError::InvalidSpec(
                "daemon.workers must be at least 1 (got 0)".into(),
            ));
        }
        let (log, replayed) = match &config.log_path {
            Some(path) => JobLog::open(path)?,
            None => (JobLog::disabled(), BTreeMap::new()),
        };
        let mut state = State {
            next_id: 1,
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            running: 0,
        };
        for (id, job) in replayed {
            state.next_id = state.next_id.max(id + 1);
            if job.state == JobState::Queued {
                state.queue.push_back(id);
            }
            state.jobs.insert(
                id,
                JobEntry {
                    spec: job.spec,
                    state: job.state,
                    report: job.report,
                    watchers: Vec::new(),
                },
            );
        }
        config
            .collector
            .gauge("daemon.queue_depth")
            .set(state.queue.len() as u64);
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            cache: ArtifactCache::with_capacity(config.cache_capacity)
                .with_collector(config.collector.clone()),
            collector: config.collector,
            log,
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            poke: Mutex::new(None),
        });
        let handles: Vec<_> = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        *lock(&inner.workers) = handles;
        Ok(Self { inner })
    }

    fn state(&self) -> MutexGuard<'_, State> {
        lock(&self.inner.state)
    }

    /// Submits a job to the queue, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidSpec`] when the spec's options do not
    /// validate (the job would only fail later, so it is rejected now),
    /// [`ServerError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, ServerError> {
        self.submit_inner(spec, None)
    }

    /// Like [`Daemon::submit`], but atomically registers a watcher channel
    /// so no `progress` frame of the job can be missed.
    ///
    /// # Errors
    ///
    /// Same as [`Daemon::submit`].
    pub fn submit_watched(
        &self,
        spec: JobSpec,
    ) -> Result<(u64, mpsc::Receiver<Frame>), ServerError> {
        let (tx, rx) = mpsc::channel();
        let id = self.submit_inner(spec, Some(tx))?;
        Ok((id, rx))
    }

    fn submit_inner(
        &self,
        spec: JobSpec,
        watcher: Option<mpsc::Sender<Frame>>,
    ) -> Result<u64, ServerError> {
        spec.options
            .validate()
            .map_err(|e| ServerError::InvalidSpec(e.to_string()))?;
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(ServerError::ShuttingDown);
        }
        let mut state = self.state();
        let id = state.next_id;
        state.next_id += 1;
        self.inner.log.submitted(id, &spec);
        state.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                report: None,
                watchers: watcher.into_iter().collect(),
            },
        );
        state.queue.push_back(id);
        self.inner.collector.counter("daemon.submitted").incr();
        self.inner
            .collector
            .gauge("daemon.queue_depth")
            .set(state.queue.len() as u64);
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(id)
    }

    /// Subscribes to a job's frames. A job already in a terminal state
    /// immediately yields its stored `result` frame (replayed-from-log
    /// jobs included); a live job streams `progress` then `result`.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for an id the table has never seen.
    pub fn watch(&self, id: u64) -> Result<mpsc::Receiver<Frame>, ServerError> {
        let mut state = self.state();
        let entry = state.jobs.get_mut(&id).ok_or(ServerError::UnknownJob(id))?;
        let (tx, rx) = mpsc::channel();
        if entry.state.is_terminal() {
            let _ = tx.send(Frame::Result {
                id,
                report: entry.report.clone().unwrap_or_else(cancelled_report),
            });
        } else {
            entry.watchers.push(tx);
        }
        Ok(rx)
    }

    /// Status rows for one job or the whole table (id order).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] when a specific id is unknown.
    pub fn status(&self, id: Option<u64>) -> Result<Vec<JobStatus>, ServerError> {
        let state = self.state();
        let row = |(id, entry): (&u64, &JobEntry)| JobStatus {
            id: *id,
            name: entry.spec.name.clone(),
            state: entry.state,
            detail: detail_of(entry),
        };
        match id {
            Some(id) => state
                .jobs
                .get_key_value(&id)
                .map(|kv| vec![row(kv)])
                .ok_or(ServerError::UnknownJob(id)),
            None => Ok(state.jobs.iter().map(row).collect()),
        }
    }

    /// Cancels a queued or running job; terminal jobs are left untouched.
    /// Returns the job's state after the request.
    ///
    /// The ack is binding: once `Cancelled` is returned, the job reports
    /// `Cancelled` forever — even when a worker had already claimed it off
    /// the queue (or is mid-`run_job`), in which case the in-flight
    /// computation finishes but its result is discarded. Without this, a
    /// cancel landing in the instant between queue-claim and completion
    /// was acked as cancelled and then overwritten with `Done`.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for an unknown id.
    pub fn cancel(&self, id: u64) -> Result<JobState, ServerError> {
        let mut state = self.state();
        let entry = state.jobs.get_mut(&id).ok_or(ServerError::UnknownJob(id))?;
        if entry.state == JobState::Queued || entry.state == JobState::Running {
            entry.state = JobState::Cancelled;
            let report = cancelled_report();
            for tx in entry.watchers.drain(..) {
                let _ = tx.send(Frame::Result {
                    id,
                    report: report.clone(),
                });
            }
            state.queue.retain(|&queued| queued != id);
            self.inner.log.cancelled(id);
            self.inner.collector.counter("daemon.cancelled").incr();
            self.inner
                .collector
                .gauge("daemon.queue_depth")
                .set(state.queue.len() as u64);
            drop(state);
            self.inner.job_done.notify_all();
            return Ok(JobState::Cancelled);
        }
        Ok(entry.state)
    }

    /// Begins shutdown: no new submissions are accepted, workers exit once
    /// the job they are on finishes (still-queued jobs stay in the log for
    /// the next start), and a blocked serve loop is poked awake.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        crate::serve::poke(&self.inner);
    }

    /// Returns `true` once [`Daemon::request_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the queue is empty and no worker is mid-job. Intended
    /// for tests and for warm-up scripting; the serve loop does not need
    /// it.
    pub fn wait_idle(&self) {
        let mut state = self.state();
        while !(state.queue.is_empty() && state.running == 0) {
            state = match self.inner.job_done.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Joins the worker pool (call after [`Daemon::request_shutdown`]).
    pub fn join(&self) {
        let handles = std::mem::take(&mut *lock(&self.inner.workers));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The stand-in report a cancelled job answers `watch` with.
fn cancelled_report() -> WireReport {
    WireReport {
        passed: false,
        cache: None,
        hyperperiod: 0,
        states: 0,
        transitions: 0,
        verdicts: BTreeMap::new(),
        error: Some("job cancelled before it ran".to_string()),
        wall_us: 0,
    }
}

/// One line of status detail for terminal jobs.
fn detail_of(entry: &JobEntry) -> String {
    match (&entry.state, &entry.report) {
        (JobState::Done | JobState::Failed, Some(report)) => {
            let verdict = match &report.error {
                Some(error) => error.clone(),
                None if report.passed => "pass".to_string(),
                None => "CHECKS FAILED".to_string(),
            };
            match &report.cache {
                Some(cache) => format!("{verdict} [cache: {cache}]"),
                None => verdict,
            }
        }
        (JobState::Cancelled, _) => "cancelled".to_string(),
        _ => String::new(),
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let claimed = {
            let mut state = lock(&inner.state);
            loop {
                // Check shutdown before claiming: jobs still queued at
                // shutdown stay in the log and re-run on the next start.
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(id) = state.queue.pop_front() {
                    inner
                        .collector
                        .gauge("daemon.queue_depth")
                        .set(state.queue.len() as u64);
                    let spec = {
                        let entry = state.jobs.get_mut(&id).expect("queued job is in the table");
                        entry.state = JobState::Running;
                        entry.spec.clone()
                    };
                    state.running += 1;
                    inner
                        .collector
                        .gauge("daemon.running")
                        .set(state.running as u64);
                    inner.log.started(id);
                    break Some((id, spec));
                }
                state = match inner.work_ready.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some((id, spec)) = claimed else { return };
        let report = run_job(&inner, id, &spec);
        let failed = report.error.is_some() || !report.passed;
        let discarded = {
            let mut state = lock(&inner.state);
            let entry = state
                .jobs
                .get_mut(&id)
                .expect("running job is in the table");
            let discarded = entry.state == JobState::Cancelled;
            if discarded {
                // Cancelled between claim and completion: the cancel ack
                // already promised `Cancelled` (watchers were drained with
                // the cancelled report, the log records `cancelled`), so
                // the computed result is discarded — no `Done`/`Failed`
                // overwrite, no `finished` log line, no result frames.
            } else {
                entry.state = if report.error.is_none() {
                    JobState::Done
                } else {
                    JobState::Failed
                };
                inner.log.finished(id, &report);
                for tx in entry.watchers.drain(..) {
                    let _ = tx.send(Frame::Result {
                        id,
                        report: report.clone(),
                    });
                }
                entry.report = Some(report);
            }
            state.running -= 1;
            inner
                .collector
                .gauge("daemon.running")
                .set(state.running as u64);
            discarded
        };
        if !discarded {
            inner.collector.counter("daemon.jobs").incr();
            if failed {
                inner.collector.counter("daemon.failures").incr();
            }
        }
        inner.job_done.notify_all();
    }
}

/// Runs one job through the shared cache, bridging its telemetry onto the
/// watchers' `progress` frames.
fn run_job(inner: &Arc<Inner>, id: u64, spec: &JobSpec) -> WireReport {
    let started = Instant::now();
    // Every job gets a full collector with a channel bridge: the pipeline's
    // `phase.*` spans and the engine's `engine.level` events become
    // ProgressUpdates, forwarded to whoever is watching. The collector
    // is per-job, so one job's spans never leak into another's stream.
    let job_collector = Collector::full();
    let (tx, rx) = mpsc::channel();
    job_collector.add_sink(Box::new(polyobs::ProgressBridge::channel(tx)));
    let forwarder = {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            for update in rx {
                let frame = Frame::Progress { id, update };
                let mut state = lock(&inner.state);
                if let Some(entry) = state.jobs.get_mut(&id) {
                    entry.watchers.retain(|tx| tx.send(frame.clone()).is_ok());
                }
            }
        })
    };
    let mut span = inner.collector.span("daemon.job");
    span.attr("id", id);
    span.attr("job", spec.name.as_str());
    let mut job = spec.to_batch_job();
    job.options.collector = job_collector.clone();
    let wall_us = |started: Instant| started.elapsed().as_micros() as u64;
    let report = match job.run_cached(&inner.cache) {
        Ok((report, outcome)) => {
            span.attr("cache", outcome.label());
            WireReport::from_report(&report, Some(outcome), wall_us(started))
        }
        Err(e) => WireReport::from_error(&e, None, wall_us(started)),
    };
    drop(span);
    job_collector.flush();
    // Dropping the job (and with it the last clone of the collector)
    // closes the bridge channel, ending the forwarder.
    drop(job);
    drop(job_collector);
    let _ = forwarder.join();
    report
}
