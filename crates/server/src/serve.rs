//! The socket layer: accept loops and per-connection frame handlers.

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

use polywire::{read_frame, write_frame, Frame, JobState};

use crate::daemon::{Daemon, Inner};
use crate::ServerError;

/// Where the serve loop listens; shutdown connects here once to unblock
/// the blocking `accept`.
pub(crate) enum PokeTarget {
    Unix(PathBuf),
    Tcp(std::net::SocketAddr),
}

/// Wakes a serve loop blocked in `accept` so it can observe shutdown.
pub(crate) fn poke(inner: &Inner) {
    let guard = match inner.poke.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    match &*guard {
        Some(PokeTarget::Unix(path)) => {
            let _ = UnixStream::connect(path);
        }
        Some(PokeTarget::Tcp(addr)) => {
            let _ = TcpStream::connect(addr);
        }
        None => {}
    }
}

impl Daemon {
    /// Serves the wire protocol on a unix socket at `path` (a stale socket
    /// file from a previous run is removed first). Blocks until
    /// [`Daemon::request_shutdown`]; the socket file is removed on return.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when binding fails.
    pub fn serve_unix(&self, path: &Path) -> Result<(), ServerError> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        self.set_poke(PokeTarget::Unix(path.to_path_buf()));
        for stream in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let Ok(read_half) = stream.try_clone() else {
                continue;
            };
            self.spawn_handler(Box::new(read_half), Box::new(stream));
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Serves the wire protocol on a TCP socket bound to `addr`
    /// (e.g. `127.0.0.1:7713`). Blocks until [`Daemon::request_shutdown`].
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when binding fails.
    pub fn serve_tcp(&self, addr: &str) -> Result<(), ServerError> {
        let listener = TcpListener::bind(addr)?;
        self.set_poke(PokeTarget::Tcp(listener.local_addr()?));
        for stream in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let Ok(read_half) = stream.try_clone() else {
                continue;
            };
            self.spawn_handler(Box::new(read_half), Box::new(stream));
        }
        Ok(())
    }

    fn set_poke(&self, target: PokeTarget) {
        let mut guard = match self.inner.poke.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Some(target);
    }

    fn spawn_handler(&self, read_half: Box<dyn Read + Send>, write_half: Box<dyn Write + Send>) {
        let daemon = self.clone();
        std::thread::spawn(move || {
            daemon.inner.collector.counter("daemon.connections").incr();
            handle_connection(&daemon, BufReader::new(read_half), write_half);
        });
    }
}

/// Reads frames from one client until EOF, a framing error, or a
/// `shutdown` request, answering each per the protocol.
fn handle_connection(
    daemon: &Daemon,
    mut reader: BufReader<Box<dyn Read + Send>>,
    mut writer: Box<dyn Write + Send>,
) {
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // client hung up cleanly
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let keep_going = match frame {
            Frame::Submit { spec, watch } => handle_submit(daemon, spec, watch, &mut writer),
            Frame::Status { id } => {
                let reply = match daemon.status(id) {
                    Ok(jobs) => Frame::Jobs { jobs },
                    Err(e) => error_frame(e),
                };
                write_frame(&mut writer, &reply).is_ok()
            }
            Frame::Cancel { id } => {
                let reply = match daemon.cancel(id) {
                    Ok(state) => Frame::Ack { id, state },
                    Err(e) => error_frame(e),
                };
                write_frame(&mut writer, &reply).is_ok()
            }
            Frame::Watch { id } => match daemon.watch(id) {
                Ok(rx) => stream_frames(&mut writer, rx),
                Err(e) => write_frame(&mut writer, &error_frame(e)).is_ok(),
            },
            Frame::Shutdown => {
                let _ = write_frame(
                    &mut writer,
                    &Frame::Ack {
                        id: 0,
                        state: JobState::Done,
                    },
                );
                daemon.request_shutdown();
                false
            }
            // Server-to-client frames arriving here are a protocol misuse.
            other => write_frame(
                &mut writer,
                &Frame::Error {
                    message: format!("unexpected {} frame from client", other.kind()),
                },
            )
            .is_ok(),
        };
        if !keep_going {
            return;
        }
    }
}

fn handle_submit(
    daemon: &Daemon,
    spec: polywire::JobSpec,
    watch: bool,
    writer: &mut Box<dyn Write + Send>,
) -> bool {
    if watch {
        match daemon.submit_watched(spec) {
            Ok((id, rx)) => {
                if write_frame(
                    writer,
                    &Frame::Ack {
                        id,
                        state: JobState::Queued,
                    },
                )
                .is_err()
                {
                    return false;
                }
                stream_frames(writer, rx)
            }
            Err(e) => write_frame(writer, &error_frame(e)).is_ok(),
        }
    } else {
        let reply = match daemon.submit(spec) {
            Ok(id) => Frame::Ack {
                id,
                state: JobState::Queued,
            },
            Err(e) => error_frame(e),
        };
        write_frame(writer, &reply).is_ok()
    }
}

/// Forwards a watch channel's frames to the client until the channel
/// closes (the final `result` frame drops the daemon-side sender).
fn stream_frames(writer: &mut Box<dyn Write + Send>, rx: std::sync::mpsc::Receiver<Frame>) -> bool {
    for frame in rx {
        let done = matches!(frame, Frame::Result { .. });
        if write_frame(writer, &frame).is_err() {
            return false;
        }
        if done {
            return true;
        }
    }
    true
}

fn error_frame(e: ServerError) -> Frame {
    Frame::Error {
        message: e.to_string(),
    }
}
