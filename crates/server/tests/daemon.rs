//! In-process daemon tests: caching across submissions, log replay,
//! cancellation, and a full socket round-trip with the blocking client.

use std::collections::BTreeMap;

use polychrony_core::SessionOptions;
use polychrony_server::{Daemon, DaemonConfig};
use polywire::{Frame, JobSpec, JobState, WireReport};

fn quick_daemon(workers: usize) -> Daemon {
    Daemon::new(DaemonConfig {
        workers,
        ..DaemonConfig::default()
    })
    .expect("daemon starts")
}

fn wait_report(daemon: &Daemon, id: u64) -> WireReport {
    let rx = daemon.watch(id).expect("job exists");
    for frame in rx {
        if let Frame::Result { id: got, report } = frame {
            assert_eq!(got, id);
            return report;
        }
    }
    panic!("watch channel closed without a result frame");
}

#[test]
fn resubmitting_the_same_job_hits_the_cache_with_identical_verdicts() {
    let daemon = quick_daemon(1);
    let spec = JobSpec::case_study("cold").with_options(SessionOptions::quick());
    let cold_id = daemon.submit(spec.clone()).expect("submit cold");
    let warm_id = daemon
        .submit(JobSpec {
            name: "warm".to_string(),
            ..spec
        })
        .expect("submit warm");
    let cold = wait_report(&daemon, cold_id);
    let warm = wait_report(&daemon, warm_id);

    assert_eq!(cold.error, None);
    assert_eq!(cold.cache.as_deref(), Some("miss"));
    assert_eq!(warm.cache.as_deref(), Some("simulated-hit"));
    assert_eq!(cold.verdicts, warm.verdicts);
    assert_eq!(cold.passed, warm.passed);
    assert_eq!(cold.states, warm.states);
    assert_eq!(cold.transitions, warm.transitions);

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn changing_only_verification_options_still_reuses_the_front_end() {
    let daemon = quick_daemon(2);
    let mut sweep = SessionOptions::quick();
    sweep.verify.hyperperiods = 2;
    let cold_id = daemon
        .submit(JobSpec::case_study("base").with_options(SessionOptions::quick()))
        .expect("submit base");
    wait_report(&daemon, cold_id);
    let warm_id = daemon
        .submit(JobSpec::case_study("sweep").with_options(sweep))
        .expect("submit sweep");
    let warm = wait_report(&daemon, warm_id);

    assert_eq!(warm.error, None);
    // Same source, same simulate options, different verify options: the
    // simulated artifact is reused and only verification re-runs.
    assert_eq!(warm.cache.as_deref(), Some("simulated-hit"));

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn watch_on_a_finished_job_replays_the_stored_result() {
    let daemon = quick_daemon(1);
    let id = daemon
        .submit(JobSpec::case_study("done").with_options(SessionOptions::quick()))
        .expect("submit");
    let live = wait_report(&daemon, id);
    daemon.wait_idle();
    let replayed = wait_report(&daemon, id);
    assert_eq!(live, replayed);

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn watchers_of_a_live_job_see_progress_frames_before_the_result() {
    let daemon = quick_daemon(1);
    // Park a first job so the watched one is still queued when we attach.
    let first = daemon
        .submit(JobSpec::case_study("first").with_options(SessionOptions::quick()))
        .expect("submit first");
    let (id, rx) = daemon
        .submit_watched(JobSpec::case_study("watched").with_options(SessionOptions::quick()))
        .expect("submit watched");
    let mut saw_progress = false;
    for frame in rx {
        match frame {
            Frame::Progress { id: got, .. } => {
                assert_eq!(got, id);
                saw_progress = true;
            }
            Frame::Result { id: got, report } => {
                assert_eq!(got, id);
                assert_eq!(report.error, None);
                break;
            }
            other => panic!("unexpected frame {}", other.kind()),
        }
    }
    assert!(saw_progress, "a watched job should stream progress frames");
    let _ = first;

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn a_queued_job_can_be_cancelled_but_done_jobs_cannot() {
    let daemon = quick_daemon(1);
    let running = daemon
        .submit(JobSpec::case_study("running").with_options(SessionOptions::quick()))
        .expect("submit running");
    let queued = daemon
        .submit(JobSpec::case_study("queued").with_options(SessionOptions::quick()))
        .expect("submit queued");
    assert_eq!(daemon.cancel(queued).expect("cancel"), JobState::Cancelled);

    wait_report(&daemon, running);
    daemon.wait_idle();
    assert_eq!(daemon.cancel(running).expect("cancel done"), JobState::Done);

    let rows = daemon.status(None).expect("status");
    let states: BTreeMap<u64, JobState> = rows.iter().map(|r| (r.id, r.state)).collect();
    assert_eq!(states[&running], JobState::Done);
    assert_eq!(states[&queued], JobState::Cancelled);

    let cancelled_report = wait_report(&daemon, queued);
    assert!(cancelled_report.error.is_some());

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn cancelling_a_claimed_job_reports_cancelled_never_a_completed_result() {
    let daemon = quick_daemon(1);
    // A long simulation horizon keeps the worker mid-`run_job` long enough
    // to observe `Running` and land the cancel inside the claim window.
    let mut slow = SessionOptions::quick();
    slow.simulate.hyperperiods = 300;
    let (id, rx) = daemon
        .submit_watched(JobSpec::case_study("doomed").with_options(slow))
        .expect("submit");

    // Wait until a worker has claimed the job off the queue.
    loop {
        let state = daemon.status(Some(id)).expect("status")[0].state;
        if state == JobState::Running {
            break;
        }
        assert!(
            !state.is_terminal(),
            "job reached {state:?} before it could be cancelled — raise the horizon"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // The ack is binding even though the worker is mid-run: the in-flight
    // result must be discarded, never reported.
    assert_eq!(daemon.cancel(id).expect("cancel"), JobState::Cancelled);

    // The watcher sees exactly one result frame — the cancelled report.
    let results: Vec<WireReport> = rx
        .iter()
        .filter_map(|frame| match frame {
            Frame::Result { id: got, report } => {
                assert_eq!(got, id);
                Some(report)
            }
            _ => None,
        })
        .collect();
    assert_eq!(results.len(), 1, "exactly one result frame after a cancel");
    assert!(
        results[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("cancelled"),
        "the single result is the cancelled report: {:?}",
        results[0]
    );

    // Once the worker completes (and discards its report), the job still
    // reports Cancelled everywhere: status, repeat cancel, fresh watch.
    daemon.wait_idle();
    assert_eq!(
        daemon.status(Some(id)).expect("status")[0].state,
        JobState::Cancelled
    );
    assert_eq!(
        daemon.cancel(id).expect("cancel again"),
        JobState::Cancelled
    );
    let replayed = wait_report(&daemon, id);
    assert!(replayed
        .error
        .as_deref()
        .unwrap_or("")
        .contains("cancelled"));

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn an_invalid_spec_is_rejected_at_submission() {
    let daemon = quick_daemon(1);
    let mut options = SessionOptions::quick();
    options.verify.workers = 0;
    let err = daemon
        .submit(JobSpec::case_study("bad").with_options(options))
        .expect_err("zero verify workers must not validate");
    assert!(err.to_string().contains("invalid job spec"));

    daemon.request_shutdown();
    daemon.join();
}

#[test]
fn the_job_log_replays_finished_jobs_and_requeues_unfinished_ones() {
    let dir = std::env::temp_dir().join(format!("polychronyd-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("jobs.log");
    let _ = std::fs::remove_file(&log);

    let first_report;
    {
        let daemon = Daemon::new(DaemonConfig {
            workers: 1,
            log_path: Some(log.clone()),
            ..DaemonConfig::default()
        })
        .expect("first daemon");
        let id = daemon
            .submit(JobSpec::case_study("persisted").with_options(SessionOptions::quick()))
            .expect("submit");
        first_report = wait_report(&daemon, id);
        daemon.wait_idle();
        daemon.request_shutdown();
        daemon.join();
    }

    // Simulate a submission that never ran: append its `submitted` line by
    // hand, as if the daemon died before a worker claimed it.
    {
        use std::io::Write;
        let spec = JobSpec::case_study("interrupted").with_options(SessionOptions::quick());
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&log)
            .expect("open log");
        writeln!(file, "{}", {
            let mut obj = std::collections::BTreeMap::new();
            obj.insert(
                "event".to_string(),
                polyobs::json::Json::Str("submitted".into()),
            );
            obj.insert("id".to_string(), polyobs::json::Json::Num(2.0));
            obj.insert("spec".to_string(), spec.to_json());
            polyobs::json::Json::Obj(obj)
        })
        .expect("append");
    }

    let daemon = Daemon::new(DaemonConfig {
        workers: 1,
        log_path: Some(log.clone()),
        ..DaemonConfig::default()
    })
    .expect("second daemon");
    // Job 1 finished before the restart: watch replays its stored report.
    let replayed = wait_report(&daemon, 1);
    assert_eq!(replayed, first_report);
    // Job 2 was still queued: the restart re-runs it to completion.
    let rerun = wait_report(&daemon, 2);
    assert_eq!(rerun.error, None);
    assert_eq!(rerun.verdicts, first_report.verdicts);

    daemon.request_shutdown();
    daemon.join();
    let _ = std::fs::remove_file(&log);
}

#[test]
fn the_wire_protocol_round_trips_over_a_unix_socket() {
    let dir = std::env::temp_dir().join(format!("polychronyd-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let socket = dir.join("daemon.sock");

    let daemon = quick_daemon(2);
    let server = {
        let daemon = daemon.clone();
        let socket = socket.clone();
        std::thread::spawn(move || daemon.serve_unix(&socket))
    };
    // Wait for the socket to appear before connecting.
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let endpoint = polychrony_client::Endpoint::Unix(socket.clone());
    let mut client = endpoint.connect().expect("connect");
    let spec = JobSpec::case_study("over-the-wire").with_options(SessionOptions::quick());
    let (id, state) = client.submit(&spec, true).expect("submit");
    assert_eq!(state, JobState::Queued);
    let (result_id, report) = client.wait(|_, _| {}).expect("wait for result");
    assert_eq!(result_id, id);
    assert_eq!(report.error, None);
    assert_eq!(report.cache.as_deref(), Some("miss"));

    // Second submission over a fresh connection: served from the cache.
    let mut second = endpoint.connect().expect("reconnect");
    let (_, _) = second.submit(&spec, true).expect("resubmit");
    let (_, warm) = second.wait(|_, _| {}).expect("wait warm");
    assert_eq!(warm.cache.as_deref(), Some("simulated-hit"));
    assert_eq!(warm.verdicts, report.verdicts);

    let rows = client.status(None).expect("status");
    assert_eq!(rows.len(), 2);

    let mut stopper = endpoint.connect().expect("connect for shutdown");
    stopper.shutdown().expect("shutdown ack");
    server.join().expect("serve thread").expect("serve ok");
    daemon.join();
    assert!(!socket.exists(), "socket file is removed on shutdown");
}
