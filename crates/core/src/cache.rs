//! Content-addressed artifact cache for the staged pipeline.
//!
//! Property sweeps are the common shape of verification workloads: the same
//! AADL source checked under many [`VerificationOptions`](crate::VerificationOptions) variants. Every
//! such variant pays the identical front end — parse, instantiate,
//! schedule, translate, analyze — and, when the simulation options also
//! match, the identical co-simulation. An [`ArtifactCache`] memoizes those
//! prefixes of the chain as typed artifacts, keyed by **content**: the hash
//! of the source text, the root classifier, and a fingerprint of exactly
//! the options that influence the cached phases. Two jobs that differ only
//! in verification options therefore share one front end; two jobs that
//! differ only in the collector share everything (telemetry never changes
//! results — see the determinism contract in `polyobs`).
//!
//! Two levels are kept:
//!
//! * **frontend** — the [`Analyzed`] artifact, keyed by source ×
//!   root × (schedule, translate) options. A hit skips
//!   parse-through-analyze.
//! * **simulated** — the [`Simulated`] artifact, keyed by source ×
//!   root × (schedule, translate, simulate) options. A hit additionally
//!   skips the co-simulation, leaving only the verification phase to run.
//!
//! Cached artifacts keep their original [`RunRecord`](crate::RunRecord) phase sequence, so a
//! warm run's report compares equal to a cold run's (record equality is the
//! phase-name shape; wall times are measurements). Lookup hashes are FNV-1a
//! over the full content, and every hit re-checks the stored content
//! byte-for-byte, so a 64-bit collision degrades to a miss, never to a
//! wrong artifact.
//!
//! ```
//! use polychrony_core::{ArtifactCache, BatchJob, CacheOutcome, SessionOptions};
//!
//! let cache = ArtifactCache::new();
//! let job = BatchJob::case_study("sweep-0").with_options(SessionOptions::quick());
//! let (first, outcome) = job.run_cached(&cache)?;
//! assert_eq!(outcome, CacheOutcome::Miss);
//! let (second, outcome) = job.run_cached(&cache)?;
//! assert_eq!(outcome, CacheOutcome::SimulatedHit);
//! assert_eq!(first, second);
//! # Ok::<(), polychrony_core::CoreError>(())
//! ```

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use polyobs::Collector;

use crate::batch::BatchJob;
use crate::error::CoreError;
use crate::options::SessionOptions;
use crate::session::{Analyzed, Session, Simulated};

/// Default number of entries kept per cache level.
const DEFAULT_CAPACITY: usize = 64;

/// FNV-1a 64-bit: the zero-dependency content hash of the cache. Small,
/// deterministic across runs, and collision-checked at every use (entries
/// store their full content and hits compare it).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a length-delimited field (so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_field(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The accumulated hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// How a cached run resolved against the [`ArtifactCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Nothing reusable: the full chain ran (and populated both levels).
    Miss,
    /// The [`Analyzed`] front end was reused; simulate and verify ran.
    FrontendHit,
    /// The [`Simulated`] artifact was reused; only verify ran.
    SimulatedHit,
}

impl CacheOutcome {
    /// Returns `true` for either hit level.
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheOutcome::Miss)
    }

    /// The stable label used on the wire, in logs and in CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::FrontendHit => "frontend-hit",
            CacheOutcome::SimulatedHit => "simulated-hit",
        }
    }

    /// Parses a [`CacheOutcome::label`] back.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "miss" => Some(CacheOutcome::Miss),
            "frontend-hit" => Some(CacheOutcome::FrontendHit),
            "simulated-hit" => Some(CacheOutcome::SimulatedHit),
            _ => None,
        }
    }
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The fingerprint of the options that influence the front end
/// (parse through analyze): scheduling policy and translation sizing.
/// Rendered as text so it doubles as the collision check and as the
/// human-readable cache-key component in logs.
pub fn frontend_fingerprint(options: &SessionOptions) -> String {
    format!("{:?}|{:?}", options.schedule, options.translate)
}

/// The fingerprint of the options that influence parse through simulate:
/// the frontend fingerprint plus the simulation horizon and VCD selection.
pub fn simulated_fingerprint(options: &SessionOptions) -> String {
    format!("{}|{:?}", frontend_fingerprint(options), options.simulate)
}

/// The content hash identifying a whole job: source, root classifier and
/// every result-relevant option (the collector is excluded — telemetry
/// never changes results). [`BatchRunner`](crate::BatchRunner) dedupes
/// submissions on this hash, and the daemon's cache keys derive from the
/// same fields.
pub fn job_content_hash(job: &BatchJob) -> u64 {
    let mut h = Fnv64::new();
    h.write_field(job.source.as_bytes());
    h.write_field(job.root.as_bytes());
    h.write_field(simulated_fingerprint(&job.options).as_bytes());
    h.write_field(format!("{:?}", job.options.verify).as_bytes());
    h.finish()
}

/// One stored artifact plus the full content it was keyed by, re-checked on
/// every hit so hash collisions degrade to misses.
#[derive(Debug, Clone)]
struct Entry<T> {
    source: String,
    root: String,
    fingerprint: String,
    artifact: T,
}

impl<T> Entry<T> {
    fn matches(&self, source: &str, root: &str, fingerprint: &str) -> bool {
        self.source == source && self.root == root && self.fingerprint == fingerprint
    }
}

/// One bounded cache level: least-recently-used eviction once `capacity`
/// is exceeded. `order` is the recency queue — front is the eviction
/// victim, back is the most recently inserted *or hit* key.
#[derive(Debug)]
struct Level<T> {
    entries: BTreeMap<u64, Entry<T>>,
    order: VecDeque<u64>,
}

impl<T: Clone> Level<T> {
    fn new() -> Self {
        Level {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&mut self, key: u64, source: &str, root: &str, fingerprint: &str) -> Option<T> {
        let artifact = self
            .entries
            .get(&key)
            .filter(|e| e.matches(source, root, fingerprint))
            .map(|e| e.artifact.clone())?;
        // Promote on hit: a hot entry swept on every run must outlive
        // colder entries once the level runs over capacity (LRU, not
        // insertion-order FIFO).
        if let Some(position) = self.order.iter().position(|&k| k == key) {
            self.order.remove(position);
            self.order.push_back(key);
        }
        Some(artifact)
    }

    fn insert(&mut self, key: u64, entry: Entry<T>, capacity: usize) {
        if self.entries.insert(key, entry).is_none() {
            self.order.push_back(key);
        } else if let Some(position) = self.order.iter().position(|&k| k == key) {
            // Overwriting an existing key refreshes its recency too.
            self.order.remove(position);
            self.order.push_back(key);
        }
        while self.entries.len() > capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[derive(Debug)]
struct CacheState {
    frontend: Level<Analyzed>,
    simulated: Level<Simulated>,
}

#[derive(Debug)]
struct CacheInner {
    capacity: usize,
    collector: Collector,
    state: Mutex<CacheState>,
}

/// A thread-safe, content-addressed cache of pipeline-prefix artifacts,
/// shared by cloning (clones see the same entries). See the module docs for
/// the key structure and the reuse levels.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    inner: Arc<CacheInner>,
}

/// Clones share state; equality is identity of that shared state (two
/// handles are equal iff they cache into the same store).
impl PartialEq for ArtifactCache {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactCache {
    /// A cache holding up to 64 entries per level, with no telemetry.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding up to `capacity` entries per level (least-recently-
    /// used eviction, where both inserts and hits refresh recency; a zero
    /// capacity disables storing, turning every run into a miss).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(capacity, Collector::noop())
    }

    /// Installs a telemetry collector: `cache.hits.frontend`,
    /// `cache.hits.simulated` and `cache.misses` counters plus the
    /// `cache.entries` gauge are recorded on it. Returns a new handle with
    /// the same capacity and **empty** state — call this while configuring
    /// the cache, before sharing clones.
    #[must_use]
    pub fn with_collector(self, collector: Collector) -> Self {
        Self::build(self.inner.capacity, collector)
    }

    fn build(capacity: usize, collector: Collector) -> Self {
        ArtifactCache {
            inner: Arc::new(CacheInner {
                capacity,
                collector,
                state: Mutex::new(CacheState {
                    frontend: Level::new(),
                    simulated: Level::new(),
                }),
            }),
        }
    }

    /// Total number of cached artifacts across both levels.
    pub fn len(&self) -> usize {
        let state = self.lock();
        state.frontend.len() + state.simulated.len()
    }

    /// Returns `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A panic while holding the lock leaves only telemetry-grade state
        // behind; recover the guard rather than poisoning every later job.
        match self.inner.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn key(source: &str, root: &str, fingerprint: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write_field(source.as_bytes());
        h.write_field(root.as_bytes());
        h.write_field(fingerprint.as_bytes());
        h.finish()
    }

    fn update_entries_gauge(&self) {
        let len = self.len() as u64;
        self.inner.collector.gauge("cache.entries").set(len);
    }

    /// Produces the [`Simulated`] artifact for `source`/`root` under
    /// `options`, reusing the deepest cached prefix available and
    /// populating both levels on the way. The returned artifact carries
    /// `options` (including its collector), so the verification phase that
    /// follows behaves exactly as in an uncached run.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase that actually ran, including
    /// [`CoreError::InvalidOptions`] for out-of-range options.
    pub fn simulated_for(
        &self,
        source: &str,
        root: &str,
        options: &SessionOptions,
    ) -> Result<(Simulated, CacheOutcome), CoreError> {
        options.validate()?;
        let front_fp = frontend_fingerprint(options);
        let sim_fp = simulated_fingerprint(options);
        let front_key = Self::key(source, root, &front_fp);
        let sim_key = Self::key(source, root, &sim_fp);

        // Bind each lookup before matching on it: an `if let` over
        // `self.lock().…` would keep the guard alive for the whole body,
        // and the frontend branch re-locks in `store_simulated`.
        let cached = self.lock().simulated.get(sim_key, source, root, &sim_fp);
        if let Some(mut simulated) = cached {
            simulated.adopt_options(options.clone());
            self.inner.collector.counter("cache.hits.simulated").incr();
            self.inner
                .collector
                .event("cache.hit", vec![("level".into(), "simulated".into())]);
            return Ok((simulated, CacheOutcome::SimulatedHit));
        }

        let cached = self.lock().frontend.get(front_key, source, root, &front_fp);
        if let Some(mut analyzed) = cached {
            analyzed.adopt_options(options.clone());
            let simulated = analyzed.simulate()?;
            self.store_simulated(sim_key, source, root, &sim_fp, &simulated);
            self.inner.collector.counter("cache.hits.frontend").incr();
            self.inner
                .collector
                .event("cache.hit", vec![("level".into(), "frontend".into())]);
            self.update_entries_gauge();
            return Ok((simulated, CacheOutcome::FrontendHit));
        }

        let analyzed = Session::with_options(options.clone())?
            .parse(source)?
            .instantiate(root)?
            .schedule()?
            .translate()?
            .analyze()?;
        self.store_frontend(front_key, source, root, &front_fp, &analyzed);
        let simulated = analyzed.simulate()?;
        self.store_simulated(sim_key, source, root, &sim_fp, &simulated);
        self.inner.collector.counter("cache.misses").incr();
        self.update_entries_gauge();
        Ok((simulated, CacheOutcome::Miss))
    }

    fn store_frontend(&self, key: u64, source: &str, root: &str, fp: &str, artifact: &Analyzed) {
        if self.inner.capacity == 0 {
            return;
        }
        // Stored artifacts are scrubbed to a noop collector so the cache
        // never keeps a job's telemetry pipeline (sinks, rings) alive.
        let mut stored = artifact.clone();
        let mut options = stored.options().clone();
        options.collector = Collector::noop();
        stored.adopt_options(options);
        self.lock().frontend.insert(
            key,
            Entry {
                source: source.to_string(),
                root: root.to_string(),
                fingerprint: fp.to_string(),
                artifact: stored,
            },
            self.inner.capacity,
        );
    }

    fn store_simulated(&self, key: u64, source: &str, root: &str, fp: &str, artifact: &Simulated) {
        if self.inner.capacity == 0 {
            return;
        }
        let mut stored = artifact.clone();
        let mut options = stored.options().clone();
        options.collector = Collector::noop();
        stored.adopt_options(options);
        self.lock().simulated.insert(
            key,
            Entry {
                source: source.to_string(),
                root: root.to_string(),
                fingerprint: fp.to_string(),
                artifact: stored,
            },
            self.inner.capacity,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{SessionOptions, SimulateOptions, VcdCapture};

    fn quick() -> SessionOptions {
        SessionOptions::quick()
    }

    #[test]
    fn repeated_runs_hit_the_simulated_level() {
        let cache = ArtifactCache::new();
        let job = BatchJob::case_study("a").with_options(quick());
        let (cold, outcome) = job.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.len(), 2, "both levels populated on a miss");
        let (warm, outcome) = job.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::SimulatedHit);
        assert_eq!(cold, warm, "warm report equals cold report");
        assert_eq!(cold.verification, warm.verification);
    }

    #[test]
    fn changed_verify_options_still_hit_changed_simulate_options_fall_back() {
        let cache = ArtifactCache::new();
        let base = BatchJob::case_study("base").with_options(quick());
        base.run_cached(&cache).unwrap();

        // Different verification options: deepest prefix still applies.
        let mut sweep = quick();
        sweep.verify.workers = 2;
        sweep.verify.hyperperiods = 2;
        let job = BatchJob::case_study("sweep").with_options(sweep);
        let (_, outcome) = job.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::SimulatedHit);

        // Different simulate options: only the front end is reusable.
        let mut sim = quick();
        sim.simulate = SimulateOptions {
            hyperperiods: 2,
            vcd: VcdCapture::Off,
        };
        let job = BatchJob::case_study("sim").with_options(sim);
        let (_, outcome) = job.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::FrontendHit);

        // Different schedule options: nothing is reusable.
        let mut resched = quick();
        resched.schedule.policy = sched::SchedulingPolicy::RateMonotonic;
        let job = BatchJob::case_study("resched").with_options(resched);
        let (_, outcome) = job.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn different_sources_do_not_collide() {
        use aadl::synth::SyntheticSpec;
        let cache = ArtifactCache::new();
        let a = BatchJob::case_study("case").with_options(quick());
        let b = BatchJob::synthetic("synth", &SyntheticSpec::new(4, 1)).with_options(quick());
        assert_ne!(job_content_hash(&a), job_content_hash(&b));
        a.run_cached(&cache).unwrap();
        let (_, outcome) = b.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (_, outcome) = b.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::SimulatedHit);
    }

    #[test]
    fn a_repeatedly_hit_entry_survives_an_over_capacity_sweep() {
        use aadl::synth::SyntheticSpec;
        // Capacity 2 per level; `hot` is inserted first but hit before the
        // level overflows, so the eviction victim must be the colder
        // `filler` entry — under the old insertion-order FIFO the sweep
        // evicted `hot` despite its hit.
        let cache = ArtifactCache::with_capacity(2);
        let hot = BatchJob::case_study("hot").with_options(quick());
        let filler = BatchJob::synthetic("filler", &SyntheticSpec::new(2, 1)).with_options(quick());
        let newcomer =
            BatchJob::synthetic("newcomer", &SyntheticSpec::new(3, 1)).with_options(quick());

        hot.run_cached(&cache).unwrap();
        filler.run_cached(&cache).unwrap();
        let (_, outcome) = hot.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::SimulatedHit, "hot entry warms up");

        // Third distinct job overflows the level: LRU must evict `filler`.
        newcomer.run_cached(&cache).unwrap();
        let (_, outcome) = hot.run_cached(&cache).unwrap();
        assert_eq!(
            outcome,
            CacheOutcome::SimulatedHit,
            "the repeatedly-hit entry must survive the over-capacity sweep"
        );
        // `filler` lost its simulated entry (the LRU victim); its frontend
        // entry survived because that level evicted `hot`'s never-re-read
        // front end instead.
        let (_, outcome) = filler.run_cached(&cache).unwrap();
        assert_eq!(
            outcome,
            CacheOutcome::FrontendHit,
            "the least-recently-used simulated entry was the eviction victim"
        );
    }

    #[test]
    fn zero_capacity_disables_storing() {
        let cache = ArtifactCache::with_capacity(0);
        let job = BatchJob::case_study("a").with_options(quick());
        job.run_cached(&cache).unwrap();
        assert!(cache.is_empty());
        let (_, outcome) = job.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn hit_and_miss_counters_flow_through_the_collector() {
        let collector = Collector::counters();
        let cache = ArtifactCache::new().with_collector(collector.clone());
        let job = BatchJob::case_study("a").with_options(quick());
        job.run_cached(&cache).unwrap();
        job.run_cached(&cache).unwrap();
        let counters: std::collections::BTreeMap<String, u64> =
            collector.counter_values().into_iter().collect();
        assert_eq!(counters.get("cache.misses"), Some(&1));
        assert_eq!(counters.get("cache.hits.simulated"), Some(&1));
    }

    #[test]
    fn cached_options_never_leak_into_later_jobs() {
        // The artifact stored on a miss was produced under job A's options;
        // a hit for job B must verify under job B's options.
        let cache = ArtifactCache::new();
        let a = BatchJob::case_study("a").with_options(quick());
        a.run_cached(&cache).unwrap();
        let mut opts = quick();
        opts.verify.hyperperiods = 3;
        let b = BatchJob::case_study("b").with_options(opts);
        let (report, outcome) = b.run_cached(&cache).unwrap();
        assert_eq!(outcome, CacheOutcome::SimulatedHit);
        assert_eq!(report.verification.as_ref().unwrap().hyperperiods, 3);
    }

    #[test]
    fn fingerprints_separate_option_groups() {
        let quick = quick();
        let mut other = SessionOptions::quick();
        other.verify.workers = 7;
        assert_eq!(simulated_fingerprint(&quick), simulated_fingerprint(&other));
        other.simulate.hyperperiods = 9;
        assert_ne!(simulated_fingerprint(&quick), simulated_fingerprint(&other));
        assert_eq!(frontend_fingerprint(&quick), frontend_fingerprint(&other));
    }
}
