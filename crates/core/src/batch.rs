//! Multi-model batch verification: run many AADL models through the staged
//! pipeline concurrently and collect ordered, reproducible reports.
//!
//! This is the first concrete step of the ROADMAP's "multi-model batch
//! verification service" direction: a [`BatchRunner`] takes N
//! [`BatchJob`]s (source text + root classifier + per-phase options), runs
//! them across a bounded pool of shared-nothing workers — every job builds
//! its own [`Session`], so no state crosses job boundaries — and returns
//! one [`BatchReport`] per job, **in submission order and independent of
//! the worker count**, with per-job wall-clock timing.
//!
//! ```
//! use polychrony_core::{BatchJob, BatchRunner};
//! use polychrony_core::aadl::synth::SyntheticSpec;
//!
//! let jobs = vec![
//!     BatchJob::case_study("prodcons"),
//!     BatchJob::synthetic("synthetic-4t", &SyntheticSpec::new(4, 1)),
//! ];
//! let results = BatchRunner::new().with_workers(2).run(&jobs)?;
//! assert_eq!(results.reports.len(), 2);
//! assert!(results.all_passed());
//! # Ok::<(), polychrony_core::CoreError>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aadl::case_study::PRODUCER_CONSUMER_AADL;
use aadl::synth::{generate_source, SyntheticSpec};
use polyobs::{Collector, RunRecord};

use crate::error::CoreError;
use crate::options::SessionOptions;
use crate::report::ToolChainReport;
use crate::session::Session;

/// One unit of batch work: an AADL model (source + root classifier) and the
/// per-phase options to run it with.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// Caller-chosen job label, echoed in the [`BatchReport`].
    pub name: String,
    /// AADL source text of the model.
    pub source: String,
    /// Root classifier to instantiate (e.g. `sysProdCons.impl`).
    pub root: String,
    /// Per-phase options of this job's session.
    pub options: SessionOptions,
}

impl BatchJob {
    /// Creates a job with default options.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        root: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            source: source.into(),
            root: root.into(),
            options: SessionOptions::default(),
        }
    }

    /// A job over the built-in ProducerConsumer case study.
    pub fn case_study(name: impl Into<String>) -> Self {
        Self::new(name, PRODUCER_CONSUMER_AADL, "sysProdCons.impl")
    }

    /// A job over a generated synthetic model (rooted at `top.impl`).
    pub fn synthetic(name: impl Into<String>, spec: &SyntheticSpec) -> Self {
        Self::new(name, generate_source(spec), "top.impl")
    }

    /// Replaces the job's per-phase options.
    #[must_use]
    pub fn with_options(mut self, options: SessionOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs this job's complete staged chain in the current thread.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, including
    /// [`CoreError::InvalidOptions`] for out-of-range options.
    pub fn run(&self) -> Result<ToolChainReport, CoreError> {
        Ok(Session::with_options(self.options.clone())?
            .parse(&self.source)?
            .instantiate(&self.root)?
            .schedule()?
            .translate()?
            .analyze()?
            .simulate()?
            .verify()?
            .into_report())
    }
}

/// The outcome of one [`BatchJob`]: its submission index, label, wall-clock
/// duration, and the tool-chain report (or the phase error that stopped
/// it). Job failures do not abort the batch — they are reported in place.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Submission index of the job (reports are returned sorted by it).
    pub index: usize,
    /// The job's label.
    pub job: String,
    /// Wall-clock time the job spent in its worker.
    pub duration: Duration,
    /// The aggregated report, or the error of the phase that failed.
    pub outcome: Result<ToolChainReport, CoreError>,
}

impl BatchReport {
    /// Returns `true` when the job completed and every check of its report
    /// passed.
    pub fn passed(&self) -> bool {
        matches!(&self.outcome, Ok(report) if report.all_checks_passed())
    }

    /// The job's per-phase telemetry record, when the job completed.
    pub fn run_record(&self) -> Option<&RunRecord> {
        self.outcome.as_ref().ok().map(|report| &report.run_record)
    }

    /// One-line rendering: index, label, duration, verdict.
    pub fn summary(&self) -> String {
        let verdict = match &self.outcome {
            Ok(report) if report.all_checks_passed() => "pass".to_string(),
            Ok(_) => "CHECKS FAILED".to_string(),
            Err(e) => format!("ERROR: {e}"),
        };
        format!(
            "#{:<3} {:<24} {:>8.1} ms  {}",
            self.index,
            self.job,
            self.duration.as_secs_f64() * 1e3,
            verdict
        )
    }
}

/// The result of one [`BatchRunner::run`]: the ordered per-job reports plus
/// batch-level totals.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// Worker-pool size the batch ran with.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// One report per job, in submission order.
    pub reports: Vec<BatchReport>,
}

impl BatchResults {
    /// Returns `true` when every job completed with all checks passing.
    pub fn all_passed(&self) -> bool {
        self.reports.iter().all(BatchReport::passed)
    }

    /// Number of jobs that failed (phase error or failed checks).
    pub fn failure_count(&self) -> usize {
        self.reports.iter().filter(|r| !r.passed()).count()
    }

    /// Completed models per second of batch wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.reports.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// The batch-level totals line of [`BatchResults::summary`].
    pub fn totals(&self) -> String {
        format!(
            "{} job(s), {} worker(s), {:.1} ms total, {:.1} models/s, {} failure(s)",
            self.reports.len(),
            self.workers,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput(),
            self.failure_count()
        )
    }

    /// A multi-line table: one line per job plus a totals line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for report in &self.reports {
            out.push_str(&report.summary());
            out.push('\n');
        }
        out.push_str(&self.totals());
        out.push('\n');
        out
    }
}

/// A bounded worker pool that drains a list of [`BatchJob`]s.
///
/// Workers are shared-nothing: each job constructs its own [`Session`] from
/// its own options, so verdicts depend only on the job, never on worker
/// interleaving — the same batch run with 1 or 8 workers yields equal
/// reports in the same order (only the timings differ).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRunner {
    workers: usize,
    collector: Collector,
}

impl Default for BatchRunner {
    /// Sizes the pool to the machine's available parallelism, capped at 8.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .min(8),
            collector: Collector::noop(),
        }
    }
}

impl BatchRunner {
    /// Creates a runner sized to the machine (see [`BatchRunner::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-pool size (validated by [`BatchRunner::run`]).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Installs a telemetry collector on the runner: each job gets a
    /// `batch.job` span, the `batch.queue_depth` gauge tracks unclaimed
    /// jobs, and the `batch.jobs` / `batch.failures` counters tally
    /// outcomes. The collector is also handed to every job's session (it
    /// replaces the collector in the job's options), so engine counters
    /// and phase spans from all jobs aggregate into one place. Collection
    /// mode never changes any verdict or report.
    #[must_use]
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// Runs every job across the worker pool and returns the reports in
    /// submission order.
    ///
    /// Job-level failures (parse errors, invalid per-job options, failed
    /// phases) land in the job's [`BatchReport::outcome`]; only a
    /// runner-level misconfiguration aborts the whole batch.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when the pool size is 0.
    pub fn run(&self, jobs: &[BatchJob]) -> Result<BatchResults, CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidOptions(
                "batch.workers must be at least 1 (got 0)".into(),
            ));
        }
        let started = Instant::now();
        let slots: Vec<Mutex<Option<BatchReport>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        if !jobs.is_empty() {
            let next = AtomicUsize::new(0);
            let queue_depth = self.collector.gauge("batch.queue_depth");
            let c_jobs = self.collector.counter("batch.jobs");
            let c_failures = self.collector.counter("batch.failures");
            queue_depth.set(jobs.len() as u64);
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(jobs.len()) {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        // Unclaimed jobs left in the queue after this claim.
                        queue_depth.set(jobs.len().saturating_sub(index + 1) as u64);
                        let mut span = self.collector.span("batch.job");
                        span.attr("index", index);
                        span.attr("job", job.name.as_str());
                        let job_started = Instant::now();
                        // The runner's collector rides into the job's own
                        // session, so phase spans and engine counters from
                        // all jobs aggregate on one collector.
                        let outcome = if self.collector.is_enabled() {
                            let mut job = job.clone();
                            job.options.collector = self.collector.clone();
                            job.run()
                        } else {
                            job.run()
                        };
                        c_jobs.incr();
                        if !matches!(&outcome, Ok(report) if report.all_checks_passed()) {
                            c_failures.incr();
                        }
                        drop(span);
                        *slots[index].lock().expect("job slot poisoned") = Some(BatchReport {
                            index,
                            job: job.name.clone(),
                            duration: job_started.elapsed(),
                            outcome,
                        });
                    });
                }
            });
        }
        let reports = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("job slot poisoned")
                    .expect("every job slot is filled when the scope exits")
            })
            .collect();
        Ok(BatchResults {
            workers: self.workers,
            elapsed: started.elapsed(),
            reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fast per-job options shared by the unit tests: one simulated
    /// hyper-period, no VCD, sequential in-job verification.
    fn quick_options() -> SessionOptions {
        SessionOptions::quick()
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| {
                BatchJob::synthetic(format!("job-{i}"), &SyntheticSpec::new(4, 1))
                    .with_options(quick_options())
            })
            .collect();
        let results = BatchRunner::new().with_workers(3).run(&jobs).unwrap();
        assert_eq!(results.reports.len(), 4);
        for (i, report) in results.reports.iter().enumerate() {
            assert_eq!(report.index, i);
            assert_eq!(report.job, format!("job-{i}"));
            assert!(report.passed(), "{}", report.summary());
        }
        assert!(results.all_passed());
        assert_eq!(results.failure_count(), 0);
        assert!(results.summary().contains("4 job(s)"));
    }

    #[test]
    fn a_failing_job_is_reported_in_place_without_aborting_the_batch() {
        let jobs = vec![
            BatchJob::case_study("good").with_options(quick_options()),
            BatchJob::new("broken", "package broken", "nothing").with_options(quick_options()),
        ];
        let results = BatchRunner::new().with_workers(2).run(&jobs).unwrap();
        assert!(results.reports[0].passed());
        assert!(matches!(
            results.reports[1].outcome,
            Err(CoreError::Aadl(_))
        ));
        assert_eq!(results.failure_count(), 1);
        assert!(!results.all_passed());
    }

    #[test]
    fn zero_workers_is_rejected() {
        let err = BatchRunner::new().with_workers(0).run(&[]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions(_)), "{err}");
    }

    #[test]
    fn an_empty_batch_is_a_no_op() {
        let results = BatchRunner::new().run(&[]).unwrap();
        assert!(results.reports.is_empty());
        assert!(results.all_passed());
    }

    #[test]
    fn invalid_per_job_options_fail_only_that_job() {
        let mut bad = quick_options();
        bad.verify.hyperperiods = 0;
        let jobs = vec![
            BatchJob::case_study("ok").with_options(quick_options()),
            BatchJob::case_study("bad-options").with_options(bad),
        ];
        let results = BatchRunner::new().with_workers(2).run(&jobs).unwrap();
        assert!(results.reports[0].passed());
        assert!(matches!(
            results.reports[1].outcome,
            Err(CoreError::InvalidOptions(_))
        ));
    }
}
