//! Multi-model batch verification: run many AADL models through the staged
//! pipeline concurrently and collect ordered, reproducible reports.
//!
//! This is the first concrete step of the ROADMAP's "multi-model batch
//! verification service" direction: a [`BatchRunner`] takes N
//! [`BatchJob`]s (source text + root classifier + per-phase options), runs
//! them across a bounded pool of shared-nothing workers — every job builds
//! its own [`Session`], so no state crosses job boundaries — and returns
//! one [`BatchReport`] per job, **in submission order and independent of
//! the worker count**, with per-job wall-clock timing.
//!
//! ```
//! use polychrony_core::{BatchJob, BatchRunner};
//! use polychrony_core::aadl::synth::SyntheticSpec;
//!
//! let jobs = vec![
//!     BatchJob::case_study("prodcons"),
//!     BatchJob::synthetic("synthetic-4t", &SyntheticSpec::new(4, 1)),
//! ];
//! let results = BatchRunner::new().with_workers(2).run(&jobs)?;
//! assert_eq!(results.reports.len(), 2);
//! assert!(results.all_passed());
//! # Ok::<(), polychrony_core::CoreError>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aadl::case_study::PRODUCER_CONSUMER_AADL;
use aadl::synth::{generate_source, SyntheticSpec};
use polyobs::{Collector, RunRecord};

use crate::cache::{job_content_hash, ArtifactCache, CacheOutcome};
use crate::error::CoreError;
use crate::options::SessionOptions;
use crate::report::ToolChainReport;
use crate::session::Session;

/// One unit of batch work: an AADL model (source + root classifier) and the
/// per-phase options to run it with.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// Caller-chosen job label, echoed in the [`BatchReport`].
    pub name: String,
    /// AADL source text of the model.
    pub source: String,
    /// Root classifier to instantiate (e.g. `sysProdCons.impl`).
    pub root: String,
    /// Per-phase options of this job's session.
    pub options: SessionOptions,
}

impl BatchJob {
    /// Creates a job with default options.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        root: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            source: source.into(),
            root: root.into(),
            options: SessionOptions::default(),
        }
    }

    /// A job over the built-in ProducerConsumer case study.
    pub fn case_study(name: impl Into<String>) -> Self {
        Self::new(name, PRODUCER_CONSUMER_AADL, "sysProdCons.impl")
    }

    /// A job over a generated synthetic model (rooted at `top.impl`).
    pub fn synthetic(name: impl Into<String>, spec: &SyntheticSpec) -> Self {
        Self::new(name, generate_source(spec), "top.impl")
    }

    /// Replaces the job's per-phase options.
    #[must_use]
    pub fn with_options(mut self, options: SessionOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs this job's complete staged chain in the current thread.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, including
    /// [`CoreError::InvalidOptions`] for out-of-range options.
    pub fn run(&self) -> Result<ToolChainReport, CoreError> {
        Ok(Session::with_options(self.options.clone())?
            .parse(&self.source)?
            .instantiate(&self.root)?
            .schedule()?
            .translate()?
            .analyze()?
            .simulate()?
            .verify()?
            .into_report())
    }

    /// Runs this job's chain through `cache`: the deepest cached pipeline
    /// prefix (frontend or simulated artifact) whose content key matches
    /// this job is reused, the remaining phases run under this job's own
    /// options, and the cache is populated for the next job. Verdicts and
    /// reports are identical to [`BatchJob::run`] — only the wall time (and
    /// the phase timings inside the [`RunRecord`], which equality ignores)
    /// can differ.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchJob::run`].
    pub fn run_cached(
        &self,
        cache: &ArtifactCache,
    ) -> Result<(ToolChainReport, CacheOutcome), CoreError> {
        let (simulated, outcome) = cache.simulated_for(&self.source, &self.root, &self.options)?;
        Ok((simulated.verify()?.into_report(), outcome))
    }
}

/// The outcome of one [`BatchJob`]: its submission index, label, wall-clock
/// duration, and the tool-chain report (or the phase error that stopped
/// it). Job failures do not abort the batch — they are reported in place.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Submission index of the job (reports are returned sorted by it).
    pub index: usize,
    /// The job's label.
    pub job: String,
    /// Wall-clock time the job spent in its worker.
    pub duration: Duration,
    /// The aggregated report, or the error of the phase that failed.
    pub outcome: Result<ToolChainReport, CoreError>,
    /// How the job resolved against the runner's [`ArtifactCache`]
    /// (`None` when the runner has no cache installed).
    pub cache: Option<CacheOutcome>,
}

impl BatchReport {
    /// Returns `true` when the job completed and every check of its report
    /// passed.
    pub fn passed(&self) -> bool {
        matches!(&self.outcome, Ok(report) if report.all_checks_passed())
    }

    /// The job's per-phase telemetry record, when the job completed.
    pub fn run_record(&self) -> Option<&RunRecord> {
        self.outcome.as_ref().ok().map(|report| &report.run_record)
    }

    /// One-line rendering: index, label, duration, verdict.
    pub fn summary(&self) -> String {
        let verdict = match &self.outcome {
            Ok(report) if report.all_checks_passed() => "pass".to_string(),
            Ok(_) => "CHECKS FAILED".to_string(),
            Err(e) => format!("ERROR: {e}"),
        };
        let cache = match self.cache {
            Some(outcome) => format!("  [cache: {outcome}]"),
            None => String::new(),
        };
        format!(
            "#{:<3} {:<24} {:>8.1} ms  {}{}",
            self.index,
            self.job,
            self.duration.as_secs_f64() * 1e3,
            verdict,
            cache
        )
    }
}

/// The result of one [`BatchRunner::run`]: the ordered per-job reports plus
/// batch-level totals.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// Worker-pool size the batch ran with.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// One report per job, in submission order.
    pub reports: Vec<BatchReport>,
}

impl BatchResults {
    /// Returns `true` when every job completed with all checks passing.
    pub fn all_passed(&self) -> bool {
        self.reports.iter().all(BatchReport::passed)
    }

    /// Number of jobs that failed (phase error or failed checks).
    pub fn failure_count(&self) -> usize {
        self.reports.iter().filter(|r| !r.passed()).count()
    }

    /// Completed models per second of batch wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.reports.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// The batch-level totals line of [`BatchResults::summary`].
    pub fn totals(&self) -> String {
        format!(
            "{} job(s), {} worker(s), {:.1} ms total, {:.1} models/s, {} failure(s)",
            self.reports.len(),
            self.workers,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput(),
            self.failure_count()
        )
    }

    /// A multi-line table: one line per job plus a totals line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for report in &self.reports {
            out.push_str(&report.summary());
            out.push('\n');
        }
        out.push_str(&self.totals());
        out.push('\n');
        out
    }
}

/// A bounded worker pool that drains a list of [`BatchJob`]s.
///
/// Workers are shared-nothing: each job constructs its own [`Session`] from
/// its own options, so verdicts depend only on the job, never on worker
/// interleaving — the same batch run with 1 or 8 workers yields equal
/// reports in the same order (only the timings differ).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRunner {
    workers: usize,
    collector: Collector,
    cache: Option<ArtifactCache>,
    dedupe: bool,
}

impl Default for BatchRunner {
    /// Sizes the pool to the machine's available parallelism, capped at 8.
    /// Content-hash deduplication is on; no artifact cache is installed.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .min(8),
            collector: Collector::noop(),
            cache: None,
            dedupe: true,
        }
    }
}

impl BatchRunner {
    /// Creates a runner sized to the machine (see [`BatchRunner::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-pool size (validated by [`BatchRunner::run`]).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Installs a telemetry collector on the runner: each job gets a
    /// `batch.job` span, the `batch.queue_depth` gauge tracks unclaimed
    /// jobs, and the `batch.jobs` / `batch.failures` counters tally
    /// outcomes. The collector is also handed to every job's session (it
    /// replaces the collector in the job's options), so engine counters
    /// and phase spans from all jobs aggregate into one place. Collection
    /// mode never changes any verdict or report.
    #[must_use]
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// Installs a shared [`ArtifactCache`]: every job runs through
    /// [`BatchJob::run_cached`], so jobs whose source and front-end options
    /// match a cached artifact skip the already-computed pipeline prefix.
    /// Each report's [`BatchReport::cache`] records how its job resolved.
    #[must_use]
    pub fn with_cache(mut self, cache: ArtifactCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enables or disables content-hash deduplication (on by default):
    /// jobs with equal source, root classifier and result-relevant options
    /// share one execution, and every duplicate receives a clone of the
    /// representative's report under its own index and label. Verdicts are
    /// unaffected — a duplicate job would have produced the identical
    /// report by itself.
    #[must_use]
    pub fn with_dedupe(mut self, dedupe: bool) -> Self {
        self.dedupe = dedupe;
        self
    }

    /// Runs every job across the worker pool and returns the reports in
    /// submission order.
    ///
    /// Job-level failures (parse errors, invalid per-job options, failed
    /// phases) land in the job's [`BatchReport::outcome`]; only a
    /// runner-level misconfiguration aborts the whole batch.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when the pool size is 0.
    pub fn run(&self, jobs: &[BatchJob]) -> Result<BatchResults, CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidOptions(
                "batch.workers must be at least 1 (got 0)".into(),
            ));
        }
        let started = Instant::now();
        // Content-hash dedupe: `canonical[i]` is the index of the first job
        // with identical content; only representatives (`canonical[i] == i`)
        // enter the work queue, duplicates get a clone of the
        // representative's report afterwards.
        let canonical = self.canonical_indices(jobs);
        let work: Vec<usize> = (0..jobs.len()).filter(|&i| canonical[i] == i).collect();
        let deduped = jobs.len() - work.len();
        let slots: Vec<Mutex<Option<BatchReport>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        if !work.is_empty() {
            let next = AtomicUsize::new(0);
            let queue_depth = self.collector.gauge("batch.queue_depth");
            let c_jobs = self.collector.counter("batch.jobs");
            let c_failures = self.collector.counter("batch.failures");
            queue_depth.set(work.len() as u64);
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(work.len()) {
                    scope.spawn(|| loop {
                        let claim = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&index) = work.get(claim) else { break };
                        let job = &jobs[index];
                        // Unclaimed jobs left in the queue after this claim.
                        queue_depth.set(work.len().saturating_sub(claim + 1) as u64);
                        let mut span = self.collector.span("batch.job");
                        span.attr("index", index);
                        span.attr("job", job.name.as_str());
                        let job_started = Instant::now();
                        let (outcome, cache) = self.execute(job);
                        c_jobs.incr();
                        if !matches!(&outcome, Ok(report) if report.all_checks_passed()) {
                            c_failures.incr();
                        }
                        if let Some(cache) = cache {
                            span.attr("cache", cache.label());
                        }
                        drop(span);
                        *slots[index].lock().expect("job slot poisoned") = Some(BatchReport {
                            index,
                            job: job.name.clone(),
                            duration: job_started.elapsed(),
                            outcome,
                            cache,
                        });
                    });
                }
            });
        }
        if deduped > 0 {
            self.collector.counter("batch.deduped").add(deduped as u64);
        }
        let mut reports: Vec<Option<BatchReport>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("job slot poisoned"))
            .collect();
        for i in 0..jobs.len() {
            if canonical[i] != i {
                let representative = reports[canonical[i]]
                    .clone()
                    .expect("representative slot is filled when the scope exits");
                reports[i] = Some(BatchReport {
                    index: i,
                    job: jobs[i].name.clone(),
                    duration: representative.duration,
                    outcome: representative.outcome,
                    cache: representative.cache,
                });
            }
        }
        let reports = reports
            .into_iter()
            .map(|report| report.expect("every job slot is filled when the scope exits"))
            .collect();
        Ok(BatchResults {
            workers: self.workers,
            elapsed: started.elapsed(),
            reports,
        })
    }

    /// Runs one job, through the cache when one is installed, with the
    /// runner's collector riding into the job's session when enabled (so
    /// phase spans and engine counters from all jobs aggregate in one
    /// place).
    fn execute(
        &self,
        job: &BatchJob,
    ) -> (Result<ToolChainReport, CoreError>, Option<CacheOutcome>) {
        let run = |job: &BatchJob| match &self.cache {
            Some(cache) => match job.run_cached(cache) {
                Ok((report, outcome)) => (Ok(report), Some(outcome)),
                Err(e) => (Err(e), None),
            },
            None => (job.run(), None),
        };
        if self.collector.is_enabled() {
            let mut job = job.clone();
            job.options.collector = self.collector.clone();
            run(&job)
        } else {
            run(job)
        }
    }

    /// Maps every job index to the index of the first job with identical
    /// content (source, root and result-relevant options — the collector is
    /// excluded). Hash buckets are confirmed field-by-field, so a 64-bit
    /// collision cannot merge distinct jobs.
    fn canonical_indices(&self, jobs: &[BatchJob]) -> Vec<usize> {
        let mut canonical: Vec<usize> = (0..jobs.len()).collect();
        if !self.dedupe {
            return canonical;
        }
        let mut seen: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
        for i in 0..jobs.len() {
            let group = seen.entry(job_content_hash(&jobs[i])).or_default();
            match group.iter().find(|&&j| same_content(&jobs[j], &jobs[i])) {
                Some(&j) => canonical[i] = j,
                None => group.push(i),
            }
        }
        canonical
    }
}

/// Content equality of two jobs: everything that can influence the report
/// except the label and the collector.
fn same_content(a: &BatchJob, b: &BatchJob) -> bool {
    a.source == b.source
        && a.root == b.root
        && a.options.schedule == b.options.schedule
        && a.options.translate == b.options.translate
        && a.options.simulate == b.options.simulate
        && a.options.verify == b.options.verify
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fast per-job options shared by the unit tests: one simulated
    /// hyper-period, no VCD, sequential in-job verification.
    fn quick_options() -> SessionOptions {
        SessionOptions::quick()
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| {
                BatchJob::synthetic(format!("job-{i}"), &SyntheticSpec::new(4, 1))
                    .with_options(quick_options())
            })
            .collect();
        let results = BatchRunner::new().with_workers(3).run(&jobs).unwrap();
        assert_eq!(results.reports.len(), 4);
        for (i, report) in results.reports.iter().enumerate() {
            assert_eq!(report.index, i);
            assert_eq!(report.job, format!("job-{i}"));
            assert!(report.passed(), "{}", report.summary());
        }
        assert!(results.all_passed());
        assert_eq!(results.failure_count(), 0);
        assert!(results.summary().contains("4 job(s)"));
    }

    #[test]
    fn a_failing_job_is_reported_in_place_without_aborting_the_batch() {
        let jobs = vec![
            BatchJob::case_study("good").with_options(quick_options()),
            BatchJob::new("broken", "package broken", "nothing").with_options(quick_options()),
        ];
        let results = BatchRunner::new().with_workers(2).run(&jobs).unwrap();
        assert!(results.reports[0].passed());
        assert!(matches!(
            results.reports[1].outcome,
            Err(CoreError::Aadl(_))
        ));
        assert_eq!(results.failure_count(), 1);
        assert!(!results.all_passed());
    }

    #[test]
    fn zero_workers_is_rejected() {
        let err = BatchRunner::new().with_workers(0).run(&[]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions(_)), "{err}");
    }

    #[test]
    fn an_empty_batch_is_a_no_op() {
        let results = BatchRunner::new().run(&[]).unwrap();
        assert!(results.reports.is_empty());
        assert!(results.all_passed());
    }

    #[test]
    fn identical_jobs_share_one_execution_and_both_get_the_report() {
        let collector = Collector::counters();
        let jobs = vec![
            BatchJob::case_study("first").with_options(quick_options()),
            BatchJob::case_study("second").with_options(quick_options()),
            BatchJob::synthetic("other", &SyntheticSpec::new(4, 1)).with_options(quick_options()),
        ];
        let results = BatchRunner::new()
            .with_workers(2)
            .with_collector(collector.clone())
            .run(&jobs)
            .unwrap();
        assert!(results.all_passed());
        // The duplicate kept its own index and label but shares the
        // representative's report and duration.
        assert_eq!(results.reports[1].index, 1);
        assert_eq!(results.reports[1].job, "second");
        assert_eq!(results.reports[0].outcome, results.reports[1].outcome);
        assert_eq!(results.reports[0].duration, results.reports[1].duration);
        let counters: std::collections::BTreeMap<String, u64> =
            collector.counter_values().into_iter().collect();
        assert_eq!(counters.get("batch.deduped"), Some(&1));
        assert_eq!(counters.get("batch.jobs"), Some(&2), "two executions");
    }

    #[test]
    fn dedupe_can_be_disabled() {
        let collector = Collector::counters();
        let jobs = vec![
            BatchJob::case_study("first").with_options(quick_options()),
            BatchJob::case_study("second").with_options(quick_options()),
        ];
        let results = BatchRunner::new()
            .with_workers(2)
            .with_dedupe(false)
            .with_collector(collector.clone())
            .run(&jobs)
            .unwrap();
        assert!(results.all_passed());
        let counters: std::collections::BTreeMap<String, u64> =
            collector.counter_values().into_iter().collect();
        assert_eq!(counters.get("batch.deduped"), None);
        assert_eq!(counters.get("batch.jobs"), Some(&2));
    }

    #[test]
    fn jobs_differing_only_in_verify_options_are_not_deduped() {
        let mut other = quick_options();
        other.verify.hyperperiods = 2;
        let jobs = vec![
            BatchJob::case_study("a").with_options(quick_options()),
            BatchJob::case_study("b").with_options(other),
        ];
        let runner = BatchRunner::new().with_workers(1);
        assert_eq!(runner.canonical_indices(&jobs), vec![0, 1]);
    }

    #[test]
    fn a_cached_runner_reports_per_job_cache_outcomes() {
        let cache = crate::ArtifactCache::new();
        let mut sweep = quick_options();
        sweep.verify.hyperperiods = 2;
        let jobs = vec![
            BatchJob::case_study("cold").with_options(quick_options()),
            BatchJob::case_study("warm").with_options(sweep),
        ];
        // One worker so the cold job populates the cache before the warm
        // job looks it up (with more workers both could race to a miss —
        // still correct, just not a deterministic assertion).
        let results = BatchRunner::new()
            .with_workers(1)
            .with_cache(cache.clone())
            .run(&jobs)
            .unwrap();
        assert!(results.all_passed());
        assert_eq!(results.reports[0].cache, Some(crate::CacheOutcome::Miss));
        assert_eq!(
            results.reports[1].cache,
            Some(crate::CacheOutcome::SimulatedHit)
        );
        assert!(results.reports[1]
            .summary()
            .contains("[cache: simulated-hit]"));
        // An uncached rerun of the warm job yields the identical report.
        let uncached = jobs[1].run().unwrap();
        assert_eq!(results.reports[1].outcome.as_ref().unwrap(), &uncached);
    }

    #[test]
    fn invalid_per_job_options_fail_only_that_job() {
        let mut bad = quick_options();
        bad.verify.hyperperiods = 0;
        let jobs = vec![
            BatchJob::case_study("ok").with_options(quick_options()),
            BatchJob::case_study("bad-options").with_options(bad),
        ];
        let results = BatchRunner::new().with_workers(2).run(&jobs).unwrap();
        assert!(results.reports[0].passed());
        assert!(matches!(
            results.reports[1].outcome,
            Err(CoreError::InvalidOptions(_))
        ));
    }
}
