//! Ready-made demonstration scenarios over the built-in case study, shared
//! by the CLI and the examples so the recipe cannot drift between them.

use aadl::case_study::producer_consumer_instance;
use asme2ssme::{system_under_schedule, thread_under_schedule, ThreadUnderScheduleError};
use polyverify::{
    inject_connection_latency, inject_deadline_overrun, InjectedFault, InjectedLinkFault,
    InputSpace, PortLink, ProductComponent, ProductSystem, ProductVerifier, Property, ReplayReport,
    VerificationOutcome, Verifier, VerifyOptions,
};
use sched::SchedulingPolicy;
use signal_moc::process::Process;
use signal_moc::trace::Trace;

use crate::error::CoreError;

/// The injected-deadline-overrun scenario: the case-study producer thread
/// under its EDF schedule, with the completion of the job guarding the
/// first deadline delayed past that deadline. Verifying `inputs` against
/// `never-raised(*Alarm*)` must produce a counterexample that replays.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineOverrunDemo {
    /// The flattened producer process.
    pub process: Process,
    /// The tampered scheduled timing trace.
    pub inputs: Trace,
    /// Where the fault was injected.
    pub fault: InjectedFault,
}

impl DeadlineOverrunDemo {
    /// Model-checks the tampered schedule for `never-raised(*Alarm*)` over
    /// the full trace with `workers` threads, and replays any counterexample
    /// in the simulator. This is the check-and-replay half shared by the
    /// CLI and the `verification` example (the front ends only format the
    /// result), so the demonstrated recipe cannot drift between them.
    ///
    /// # Errors
    ///
    /// Propagates verifier and replay errors as [`CoreError`].
    pub fn verify_and_replay(
        &self,
        workers: usize,
    ) -> Result<(VerificationOutcome, Option<ReplayReport>), CoreError> {
        self.verify_properties_and_replay(workers, &[Property::NeverRaised("*Alarm*".into())])
    }

    /// Like [`DeadlineOverrunDemo::verify_and_replay`], but checking a
    /// caller-chosen property list — e.g. a user-written past-time LTL
    /// expression from `polychrony verify --inject-deadline-bug
    /// --property '<expr>'`, demonstrating that the injected fault is
    /// caught by a property supplied on the command line alone.
    ///
    /// # Errors
    ///
    /// Propagates verifier and replay errors as [`CoreError`].
    pub fn verify_properties_and_replay(
        &self,
        workers: usize,
        properties: &[Property],
    ) -> Result<(VerificationOutcome, Option<ReplayReport>), CoreError> {
        let verifier = Verifier::new(
            &self.process,
            VerifyOptions::default()
                .with_workers(workers)
                .with_depth_bound(self.inputs.len()),
        )?;
        let outcome = verifier.verify(&InputSpace::Scheduled(self.inputs.clone()), properties)?;
        let replay = match outcome.violations().next() {
            Some((_, cex)) => Some(cex.replay(&self.process)?),
            None => None,
        };
        Ok((outcome, replay))
    }
}

impl From<ThreadUnderScheduleError> for CoreError {
    fn from(e: ThreadUnderScheduleError) -> Self {
        match e {
            ThreadUnderScheduleError::Aadl(e) => CoreError::Aadl(e),
            ThreadUnderScheduleError::Tasks(e) => CoreError::Scheduling(e.to_string()),
            ThreadUnderScheduleError::Scheduling(e) => CoreError::Scheduling(e.to_string()),
            ThreadUnderScheduleError::Translation(e) => CoreError::Translation(e),
            ThreadUnderScheduleError::Signal(e) => CoreError::Signal(e),
            other @ (ThreadUnderScheduleError::UnknownThread(_)
            | ThreadUnderScheduleError::NoSignalProcess(_)) => {
                CoreError::Scheduling(other.to_string())
            }
        }
    }
}

/// Builds the deadline-overrun demo over `hyperperiods` repetitions of the
/// producer's schedule.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOptions`] when `hyperperiods` is 0, and
/// propagates any tool-chain phase error as a [`CoreError`].
pub fn deadline_overrun_demo(hyperperiods: u64) -> Result<DeadlineOverrunDemo, CoreError> {
    if hyperperiods == 0 {
        return Err(CoreError::InvalidOptions(
            "demo.hyperperiods must be at least 1 (got 0)".into(),
        ));
    }
    let instance = producer_consumer_instance()?;
    let (thread_model, schedule) = thread_under_schedule(
        &instance,
        "thProducer",
        SchedulingPolicy::EarliestDeadlineFirst,
    )?;
    let mut inputs = thread_model.timing_trace(&schedule, hyperperiods);
    let fault = inject_deadline_overrun(&mut inputs, "").ok_or_else(|| {
        CoreError::Scheduling("producer schedule has no deadline/resume pair to tamper with".into())
    })?;
    Ok(DeadlineOverrunDemo {
        process: thread_model.flat,
        inputs,
        fault,
    })
}

/// The injected connection-latency scenario: the case-study thread product
/// under its EDF schedule, with the `cProdStartTimer` connection (producer →
/// producer timer) delayed so the sent start-timer event misses the timer
/// thread's next input freeze. The cross-thread
/// [`Property::EndToEndResponse`] over the link — an emission must be
/// frozen by the receiver within one of its periods — is violated on the
/// product, while per-thread verification (which never sees the connection)
/// still passes.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionLatencyDemo {
    /// The wired thread product with the tampered link.
    pub system: ProductSystem,
    /// Where the fault was injected.
    pub fault: InjectedLinkFault,
    /// The end-to-end response property that catches the fault.
    pub property: Property,
    /// The verification depth bound in ticks (initially one joint
    /// hyper-period; scale it to explore more repetitions).
    pub horizon: usize,
}

impl ConnectionLatencyDemo {
    /// Model-checks the tampered product for the end-to-end response (plus
    /// alarm freedom, which the fault must *not* break — that is the point:
    /// the bug is invisible to the per-thread alarm) with `workers`
    /// threads, and replays any counterexample in the lockstep
    /// co-simulation.
    ///
    /// # Errors
    ///
    /// Propagates verifier and replay errors as [`CoreError`].
    pub fn verify_and_replay(
        &self,
        workers: usize,
    ) -> Result<(VerificationOutcome, Option<ReplayReport>), CoreError> {
        self.verify_properties_and_replay(
            workers,
            &[
                self.property.clone(),
                Property::NeverRaised("*Alarm*".into()),
            ],
        )
    }

    /// Like [`ConnectionLatencyDemo::verify_and_replay`], but checking a
    /// caller-chosen property list over the tampered product — e.g. a
    /// user-written `always (<link>_sent implies <link>_consumed within N)`
    /// from the command line, catching the connection fault without any
    /// built-in property.
    ///
    /// # Errors
    ///
    /// Propagates verifier and replay errors as [`CoreError`].
    pub fn verify_properties_and_replay(
        &self,
        workers: usize,
        properties: &[Property],
    ) -> Result<(VerificationOutcome, Option<ReplayReport>), CoreError> {
        let verifier = ProductVerifier::new(
            self.system.clone(),
            VerifyOptions::default()
                .with_workers(workers)
                .with_depth_bound(self.horizon),
        )?;
        let outcome = verifier.verify(properties)?;
        let replay = match outcome.violations().next() {
            Some((_, cex)) => Some(verifier.replay(cex)?),
            None => None,
        };
        Ok((outcome, replay))
    }
}

/// Builds the connection-latency demo: the full case-study thread product,
/// with `added_latency` extra ticks injected on the `cProdStartTimer`
/// connection. An extra latency of the producer-timer period (8 ticks) is
/// enough to push every delivery past the receiver's freeze.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOptions`] when `added_latency` is 0, and
/// propagates any tool-chain phase error as a [`CoreError`].
pub fn connection_latency_demo(added_latency: usize) -> Result<ConnectionLatencyDemo, CoreError> {
    if added_latency == 0 {
        return Err(CoreError::InvalidOptions(
            "demo.added_latency must be at least 1 (got 0)".into(),
        ));
    }
    let instance = producer_consumer_instance()?;
    let (models, schedule, connections) =
        system_under_schedule(&instance, SchedulingPolicy::EarliestDeadlineFirst)?;
    let components: Vec<ProductComponent> = models
        .iter()
        .map(|model| ProductComponent {
            name: model.thread_name.clone(),
            process: model.flat.clone(),
            schedule: model.timing_trace(&schedule, 1),
        })
        .collect();
    let mut links: Vec<PortLink> = connections.iter().map(crate::port_link_for).collect();
    let fault = inject_connection_latency(&mut links, "cProdStartTimer", added_latency)
        .ok_or_else(|| {
            CoreError::Scheduling(
                "case study has no cProdStartTimer connection to tamper with".into(),
            )
        })?;
    let tampered = links
        .iter()
        .find(|l| l.name == fault.link)
        .expect("the tampered link exists");
    let tasks = asme2ssme::task_set_from_threads(&instance.threads()?)?;
    let property = crate::end_to_end_response_for(tampered, &tasks, schedule.hyperperiod);
    let horizon = (schedule.hyperperiod as usize).max(1);
    let system = ProductSystem::new(components, links)?;
    Ok(ConnectionLatencyDemo {
        system,
        fault,
        property,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hyperperiods_is_rejected() {
        assert!(matches!(
            deadline_overrun_demo(0),
            Err(CoreError::InvalidOptions(_))
        ));
    }

    #[test]
    fn demo_is_found_and_replays() {
        let demo = deadline_overrun_demo(1).unwrap();
        assert!(demo.fault.deadline_tick > demo.fault.resume_moved_from);
        let (outcome, replay) = demo.verify_and_replay(2).unwrap();
        assert!(!outcome.is_violation_free(), "{}", outcome.summary());
        let replay = replay.expect("violation carries a replay");
        assert!(replay.reproduced, "{}", replay.detail);
    }

    #[test]
    fn zero_added_latency_is_rejected() {
        assert!(matches!(
            connection_latency_demo(0),
            Err(CoreError::InvalidOptions(_))
        ));
    }

    #[test]
    fn connection_demo_is_found_and_replays_in_lockstep() {
        let demo = connection_latency_demo(8).unwrap();
        assert_eq!(demo.fault.link, "cProdStartTimer");
        assert_eq!(demo.fault.added_latency, 8);
        let (outcome, replay) = demo.verify_and_replay(2).unwrap();
        // The end-to-end response is violated ...
        assert!(
            outcome.verdicts[0].verdict.is_violated(),
            "{}",
            outcome.summary()
        );
        // ... while the alarm (the only per-thread-visible property) is not.
        assert!(
            outcome.verdicts[1].verdict.passed(),
            "{}",
            outcome.summary()
        );
        let replay = replay.expect("violation carries a replay");
        assert!(replay.reproduced, "{}", replay.detail);
    }
}
