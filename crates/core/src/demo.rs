//! Ready-made demonstration scenarios over the built-in case study, shared
//! by the CLI and the examples so the recipe cannot drift between them.

use aadl::case_study::producer_consumer_instance;
use asme2ssme::{thread_under_schedule, ThreadUnderScheduleError};
use polyverify::{
    inject_deadline_overrun, InjectedFault, InputSpace, Property, ReplayReport,
    VerificationOutcome, Verifier, VerifyOptions,
};
use sched::SchedulingPolicy;
use signal_moc::process::Process;
use signal_moc::trace::Trace;

use crate::error::CoreError;

/// The injected-deadline-overrun scenario: the case-study producer thread
/// under its EDF schedule, with the completion of the job guarding the
/// first deadline delayed past that deadline. Verifying `inputs` against
/// `never-raised(*Alarm*)` must produce a counterexample that replays.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineOverrunDemo {
    /// The flattened producer process.
    pub process: Process,
    /// The tampered scheduled timing trace.
    pub inputs: Trace,
    /// Where the fault was injected.
    pub fault: InjectedFault,
}

impl DeadlineOverrunDemo {
    /// Model-checks the tampered schedule for `never-raised(*Alarm*)` over
    /// the full trace with `workers` threads, and replays any counterexample
    /// in the simulator. This is the check-and-replay half shared by the
    /// CLI and the `verification` example (the front ends only format the
    /// result), so the demonstrated recipe cannot drift between them.
    ///
    /// # Errors
    ///
    /// Propagates verifier and replay errors as [`CoreError`].
    pub fn verify_and_replay(
        &self,
        workers: usize,
    ) -> Result<(VerificationOutcome, Option<ReplayReport>), CoreError> {
        let verifier = Verifier::new(
            &self.process,
            VerifyOptions::default()
                .with_workers(workers)
                .with_depth_bound(self.inputs.len()),
        )?;
        let outcome = verifier.verify(
            &InputSpace::Scheduled(self.inputs.clone()),
            &[Property::NeverRaised("*Alarm*".into())],
        )?;
        let replay = match outcome.violations().next() {
            Some((_, cex)) => Some(cex.replay(&self.process)?),
            None => None,
        };
        Ok((outcome, replay))
    }
}

impl From<ThreadUnderScheduleError> for CoreError {
    fn from(e: ThreadUnderScheduleError) -> Self {
        match e {
            ThreadUnderScheduleError::Aadl(e) => CoreError::Aadl(e),
            ThreadUnderScheduleError::Tasks(e) => CoreError::Scheduling(e.to_string()),
            ThreadUnderScheduleError::Scheduling(e) => CoreError::Scheduling(e.to_string()),
            ThreadUnderScheduleError::Translation(e) => CoreError::Translation(e),
            ThreadUnderScheduleError::Signal(e) => CoreError::Signal(e),
            other @ (ThreadUnderScheduleError::UnknownThread(_)
            | ThreadUnderScheduleError::NoSignalProcess(_)) => {
                CoreError::Scheduling(other.to_string())
            }
        }
    }
}

/// Builds the deadline-overrun demo over `hyperperiods` repetitions of the
/// producer's schedule.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOptions`] when `hyperperiods` is 0, and
/// propagates any tool-chain phase error as a [`CoreError`].
pub fn deadline_overrun_demo(hyperperiods: u64) -> Result<DeadlineOverrunDemo, CoreError> {
    if hyperperiods == 0 {
        return Err(CoreError::InvalidOptions(
            "demo.hyperperiods must be at least 1 (got 0)".into(),
        ));
    }
    let instance = producer_consumer_instance()?;
    let (thread_model, schedule) = thread_under_schedule(
        &instance,
        "thProducer",
        SchedulingPolicy::EarliestDeadlineFirst,
    )?;
    let mut inputs = thread_model.timing_trace(&schedule, hyperperiods);
    let fault = inject_deadline_overrun(&mut inputs, "").ok_or_else(|| {
        CoreError::Scheduling("producer schedule has no deadline/resume pair to tamper with".into())
    })?;
    Ok(DeadlineOverrunDemo {
        process: thread_model.flat,
        inputs,
        fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hyperperiods_is_rejected() {
        assert!(matches!(
            deadline_overrun_demo(0),
            Err(CoreError::InvalidOptions(_))
        ));
    }

    #[test]
    fn demo_is_found_and_replays() {
        let demo = deadline_overrun_demo(1).unwrap();
        assert!(demo.fault.deadline_tick > demo.fault.resume_moved_from);
        let (outcome, replay) = demo.verify_and_replay(2).unwrap();
        assert!(!outcome.is_violation_free(), "{}", outcome.summary());
        let replay = replay.expect("violation carries a replay");
        assert!(replay.reproduced, "{}", replay.detail);
    }
}
