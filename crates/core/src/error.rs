//! Unified error type of the tool chain.

use std::fmt;

/// Any error raised along the tool-chain pipeline, tagged by the phase that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A phase option is out of range (e.g. zero workers, zero
    /// hyper-periods, zero queue size). The message names the offending
    /// `phase.field` and the rejected value.
    InvalidOptions(String),
    /// AADL parsing, resolution or instantiation failed.
    Aadl(aadl::AadlError),
    /// Task-set extraction or scheduler synthesis failed.
    Scheduling(String),
    /// Affine-clock export or synchronizability verification failed.
    Affine(String),
    /// The AADL-to-SIGNAL translation failed.
    Translation(asme2ssme::TranslationError),
    /// A SIGNAL-level analysis or simulation failed.
    Signal(signal_moc::SignalError),
    /// The state-space verification phase failed.
    Verification(polyverify::VerifyError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidOptions(e) => write!(f, "invalid options: {e}"),
            CoreError::Aadl(e) => write!(f, "aadl front end: {e}"),
            CoreError::Scheduling(e) => write!(f, "scheduler synthesis: {e}"),
            CoreError::Affine(e) => write!(f, "affine clock export: {e}"),
            CoreError::Translation(e) => write!(f, "asme2ssme translation: {e}"),
            CoreError::Signal(e) => write!(f, "polychronous analysis: {e}"),
            CoreError::Verification(e) => write!(f, "state-space verification: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<aadl::AadlError> for CoreError {
    fn from(e: aadl::AadlError) -> Self {
        CoreError::Aadl(e)
    }
}

impl From<asme2ssme::TranslationError> for CoreError {
    fn from(e: asme2ssme::TranslationError) -> Self {
        CoreError::Translation(e)
    }
}

impl From<signal_moc::SignalError> for CoreError {
    fn from(e: signal_moc::SignalError) -> Self {
        CoreError::Signal(e)
    }
}

impl From<polyverify::VerifyError> for CoreError {
    fn from(e: polyverify::VerifyError) -> Self {
        CoreError::Verification(e)
    }
}

impl From<sched::SchedulingError> for CoreError {
    fn from(e: sched::SchedulingError) -> Self {
        CoreError::Scheduling(e.to_string())
    }
}

impl From<sched::TaskSetError> for CoreError {
    fn from(e: sched::TaskSetError) -> Self {
        CoreError::Scheduling(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = aadl::AadlError::UnknownClassifier("x".into()).into();
        assert!(e.to_string().contains("aadl front end"));
        let e: CoreError = sched::TaskSetError::ZeroPeriod("t".into()).into();
        assert!(e.to_string().contains("scheduler synthesis"));
        let e: CoreError = signal_moc::SignalError::UnknownProcess("p".into()).into();
        assert!(e.to_string().contains("polychronous analysis"));
        let e = CoreError::Affine("bad".into());
        assert!(e.to_string().contains("affine"));
        let e: CoreError = polyverify::VerifyError::NoProperties.into();
        assert!(e.to_string().contains("state-space verification"));
        let e = CoreError::InvalidOptions("verify.workers must be at least 1 (got 0)".into());
        assert!(e.to_string().contains("invalid options"));
    }
}
