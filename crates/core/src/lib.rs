//! End-to-end polychronous analysis and validation of timed software
//! architectures in AADL.
//!
//! This crate is the facade of the reproduction of *"Toward Polychronous
//! Analysis and Validation for Timed Software Architectures in AADL"*
//! (DATE 2013): it wires the AADL front end ([`aadl`]), the polychronous
//! core ([`signal_moc`]), the affine clock calculus ([`affine_clocks`]), the
//! thread-level scheduler ([`sched`]), the ASME2SSME translation
//! ([`asme2ssme`]) and the simulator ([`polysim`]) into the complete tool
//! chain of the paper:
//!
//! 1. parse and instantiate the AADL model,
//! 2. extract the periodic task set and synthesise a static non-preemptive
//!    schedule over the hyper-period,
//! 3. export the schedule as affine clock relations and verify
//!    synchronizability,
//! 4. translate the architecture into a SIGNAL process model,
//! 5. run the clock calculus and the static analyses (determinism
//!    identification, deadlock detection),
//! 6. co-simulate the scheduled threads and emit VCD traces and profiling
//!    reports,
//! 7. exhaustively verify each scheduled thread with the explicit-state
//!    model checker ([`polyverify`]): alarm freedom and deadlock freedom
//!    over the verification horizon, with replayable counterexamples.
//!
//! # Quick start
//!
//! ```
//! use polychrony_core::ToolChain;
//!
//! let report = ToolChain::new().run_case_study()?;
//! assert_eq!(report.schedule.hyperperiod, 24);
//! assert!(report.static_analysis.causality_cycle.is_none());
//! assert!(report.simulations.values().all(|sim| sim.is_alarm_free()));
//! # Ok::<(), polychrony_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demo;
pub mod error;
pub mod pipeline;
pub mod report;

pub use demo::{deadline_overrun_demo, DeadlineOverrunDemo};
pub use error::CoreError;
pub use pipeline::{ToolChain, ToolChainOptions};
pub use report::{ToolChainReport, VerificationReport};

// Re-export the main entry points of every layer so that downstream users
// (examples, benches, tests) need a single dependency.
pub use aadl;
pub use affine_clocks;
pub use asme2ssme;
pub use polysim;
pub use polyverify;
pub use sched;
pub use signal_moc;
