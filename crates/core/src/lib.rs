//! End-to-end polychronous analysis and validation of timed software
//! architectures in AADL.
//!
//! This crate is the facade of the reproduction of *"Toward Polychronous
//! Analysis and Validation for Timed Software Architectures in AADL"*
//! (DATE 2013): it wires the AADL front end ([`aadl`]), the polychronous
//! core ([`signal_moc`]), the affine clock calculus ([`affine_clocks`]), the
//! thread-level scheduler ([`sched`]), the ASME2SSME translation
//! ([`asme2ssme`]) and the simulator ([`polysim`]) into the complete tool
//! chain of the paper:
//!
//! 1. parse and instantiate the AADL model,
//! 2. extract the periodic task set and synthesise a static non-preemptive
//!    schedule over the hyper-period,
//! 3. export the schedule as affine clock relations and verify
//!    synchronizability,
//! 4. translate the architecture into a SIGNAL process model,
//! 5. run the clock calculus and the static analyses (determinism
//!    identification, deadlock detection),
//! 6. co-simulate the scheduled threads and emit VCD traces and profiling
//!    reports,
//! 7. exhaustively verify each scheduled thread with the explicit-state
//!    model checker ([`polyverify`]): alarm freedom and deadlock freedom
//!    over the verification horizon, with replayable counterexamples.
//!
//! The pipeline is exposed at three altitudes:
//!
//! * [`Session`] — the staged API: every phase is a typed artifact
//!   (`Parsed → Instantiated → Scheduled → Translated → Analyzed →
//!   Simulated → Verified`) with public fields, so runs can stop after any
//!   phase, inspect intermediate results, and reuse artifacts;
//! * [`ToolChain`] — the single-call facade over [`Session`] producing one
//!   aggregated [`ToolChainReport`];
//! * [`BatchRunner`] — many models through the chain concurrently, on a
//!   bounded pool of shared-nothing workers, with ordered per-job reports.
//!
//! # Quick start
//!
//! ```
//! use polychrony_core::ToolChain;
//!
//! let report = ToolChain::new().run_case_study()?;
//! assert_eq!(report.schedule.hyperperiod, 24);
//! assert!(report.static_analysis.causality_cycle.is_none());
//! assert!(report.simulations.values().all(|sim| sim.is_alarm_free()));
//! # Ok::<(), polychrony_core::CoreError>(())
//! ```
//!
//! Staged, stopping after the scheduling phase:
//!
//! ```
//! use polychrony_core::Session;
//!
//! let scheduled = Session::new()
//!     .parse_case_study()?
//!     .instantiate("sysProdCons.impl")?
//!     .schedule()?;
//! assert_eq!(scheduled.schedule.hyperperiod, 24);
//! assert!(scheduled.affine.verified_constraints > 0);
//! # Ok::<(), polychrony_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod demo;
pub mod error;
pub mod options;
pub mod pipeline;
pub mod report;
pub mod session;

pub use batch::{BatchJob, BatchReport, BatchResults, BatchRunner};
pub use cache::{
    frontend_fingerprint, job_content_hash, simulated_fingerprint, ArtifactCache, CacheOutcome,
};
pub use demo::{
    connection_latency_demo, deadline_overrun_demo, ConnectionLatencyDemo, DeadlineOverrunDemo,
};
pub use error::CoreError;
pub use options::{
    PropertySpec, ScheduleOptions, SessionOptions, SimulateOptions, TranslateOptions, VcdCapture,
    VerificationOptions, VerificationScope,
};
pub use pipeline::{ToolChain, ToolChainOptions};
pub use polyobs::{
    CollectionMode, Collector, JsonLinesSink, PhaseRecord, ProgressBridge, ProgressReporter,
    ProgressUpdate, RunRecord,
};
pub use report::{ProductVerificationReport, ToolChainReport, VerificationReport};
pub use session::{
    end_to_end_response_for, port_link_for, Analyzed, Instantiated, Parsed, Scheduled, Session,
    Simulated, ThreadUnit, Translated, Verified, VerifiedProduct,
};

// Re-export the main entry points of every layer so that downstream users
// (examples, benches, tests) need a single dependency.
pub use aadl;
pub use affine_clocks;
pub use asme2ssme;
pub use polyobs;
pub use polysim;
pub use polyverify;
pub use sched;
pub use signal_moc;
