//! Per-phase options of the staged [`Session`](crate::Session) API.
//!
//! Every pipeline phase owns the options that configure it: the scheduling
//! phase owns the policy, the translation phase owns the queue sizing, the
//! simulation phase owns the horizon and the VCD capture selection, and the
//! verification phase owns the worker count and the exploration bound.
//! [`SessionOptions`] bundles them for whole-chain runs (the
//! [`ToolChain`](crate::ToolChain) facade and the
//! [`BatchRunner`](crate::BatchRunner)).
//!
//! Validation is explicit: out-of-range values produce
//! [`CoreError::InvalidOptions`] instead of being silently clamped, so a
//! caller asking for zero workers or zero hyper-periods learns about the
//! mistake instead of running with a different configuration than requested.

use serde::{Deserialize, Serialize};

use polyverify::{Domain, FrontierMode, Property};
use sched::SchedulingPolicy;

use crate::error::CoreError;

/// A user-supplied property, written in the past-time LTL surface syntax
/// (see `docs/PROPERTIES.md` for the grammar and semantics). The
/// expression is validated when the options are validated and compiled
/// into a monitor automaton when the verification phase runs, so it is
/// checked by per-thread exploration and — under
/// [`VerificationScope::Product`] — over the joint product, with
/// counterexamples that replay like the built-in properties.
///
/// ```
/// use polychrony_core::PropertySpec;
///
/// let spec = PropertySpec::new("never raised(*Alarm*)");
/// assert!(spec.parse().is_ok());
/// assert!(PropertySpec::new("always (Deadline implies").parse().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertySpec {
    /// The property expression, e.g. `never raised(*Alarm*)` or
    /// `always (Deadline implies Resume within 2)`.
    pub expr: String,
}

impl PropertySpec {
    /// Wraps a property expression (validated by [`PropertySpec::parse`]).
    pub fn new(expr: impl Into<String>) -> Self {
        Self { expr: expr.into() }
    }

    /// Parses the expression into a checkable [`Property`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] carrying the parser's
    /// span-annotated message (the caret rendering points at the offending
    /// token).
    pub fn parse(&self) -> Result<Property, CoreError> {
        Property::parse_ltl(&self.expr)
            .map_err(|e| CoreError::InvalidOptions(format!("verify.properties: {e}")))
    }
}

/// Which thread's co-simulation is dumped as a VCD waveform by the
/// simulation phase (surfaced as
/// [`ToolChainReport::vcd_thread`](crate::ToolChainReport::vcd_thread)).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcdCapture {
    /// Capture the first simulated thread (instance-tree order). This is
    /// the default; on the built-in case study the first thread is the
    /// producer, matching the paper's waveform figure.
    #[default]
    First,
    /// Capture the thread with this name. When no simulated thread matches,
    /// the report carries an empty VCD and no capture marker.
    Thread(String),
    /// Do not capture any waveform.
    Off,
}

/// Options of the scheduling phase ([`Instantiated::schedule`](crate::Instantiated::schedule)):
/// task-set extraction and static schedule synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleOptions {
    /// Scheduling policy used for the static synthesis.
    pub policy: SchedulingPolicy,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        Self {
            policy: SchedulingPolicy::EarliestDeadlineFirst,
        }
    }
}

impl ScheduleOptions {
    /// Checks the options for consistency.
    ///
    /// # Errors
    ///
    /// Never fails today (every policy is valid); kept for uniformity with
    /// the other phases so future fields get a validation home.
    pub fn validate(&self) -> Result<(), CoreError> {
        Ok(())
    }
}

/// Options of the translation phase ([`Scheduled::translate`](crate::Scheduled::translate)):
/// the ASME2SSME transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslateOptions {
    /// Default queue size for event ports without an explicit `Queue_Size`
    /// property. Must be at least 1.
    pub default_queue_size: usize,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        Self {
            default_queue_size: 1,
        }
    }
}

impl TranslateOptions {
    /// Checks the options for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when `default_queue_size` is 0.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.default_queue_size == 0 {
            return Err(CoreError::InvalidOptions(
                "translate.default_queue_size must be at least 1 (got 0)".into(),
            ));
        }
        Ok(())
    }
}

/// Options of the simulation phase ([`Analyzed::simulate`](crate::Analyzed::simulate)):
/// the scheduled co-simulation of every thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulateOptions {
    /// Number of hyper-periods to co-simulate. Must be at least 1.
    pub hyperperiods: u64,
    /// Which thread's simulation is captured as a VCD waveform.
    pub vcd: VcdCapture,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        Self {
            hyperperiods: 4,
            vcd: VcdCapture::First,
        }
    }
}

impl SimulateOptions {
    /// Checks the options for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when `hyperperiods` is 0.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.hyperperiods == 0 {
            return Err(CoreError::InvalidOptions(
                "simulate.hyperperiods must be at least 1 (got 0)".into(),
            ));
        }
        Ok(())
    }
}

/// Which state spaces the verification phase explores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerificationScope {
    /// Each thread is verified against its own scheduled trace in
    /// isolation. Cross-thread properties (event-port latency) are
    /// invisible at this scope.
    #[default]
    PerThread,
    /// Per-thread verification *plus* the synchronous product of the
    /// communicating threads: event-port connections become synchronising
    /// actions, every connection gets an end-to-end response property
    /// bounded by its receiver's period, and the joint verdict is surfaced
    /// as a [`VerifiedProduct`](crate::VerifiedProduct) artifact.
    Product,
}

/// Options of the verification phase ([`Simulated::verify`](crate::Simulated::verify)):
/// the explicit-state exploration of every scheduled thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationOptions {
    /// Runs the state-space verification phase; when `false`,
    /// [`Simulated::verify`](crate::Simulated::verify) behaves like
    /// [`Simulated::skip_verification`](crate::Simulated::skip_verification).
    pub enabled: bool,
    /// Worker threads of the parallel reachability engine. Must be at
    /// least 1.
    pub workers: usize,
    /// Number of hyper-periods the exploration covers before the depth
    /// bound stops it. Must be at least 1.
    pub hyperperiods: u64,
    /// Whether the phase also verifies the product of the communicating
    /// threads.
    pub scope: VerificationScope,
    /// User-supplied past-time LTL properties, checked alongside the
    /// standard safety properties in every scope (per-thread and product).
    /// Each expression must parse (see [`PropertySpec::parse`]).
    pub properties: Vec<PropertySpec>,
    /// How each exploration level is distributed over the workers:
    /// work-stealing frontier deques (the default fast path) or contiguous
    /// barrier chunks. Verdicts are identical either way.
    pub frontier: FrontierMode,
    /// Clock-calculus pruning: the schedule's affine dispatch clocks are
    /// exported as a feasibility oracle that skips free-mode input
    /// valuations where a thread provably cannot dispatch, and the product
    /// memoizes per-component resolved instants.
    pub pruning: bool,
    /// Initial capacity (in states) of the state interner. Must be at
    /// least 1; the interner grows past it on demand.
    pub interner_capacity: usize,
    /// The state-space domain: [`Domain::Concrete`] explores exact states,
    /// [`Domain::Interval`] widens property-invisible monotone counters so
    /// unbounded-counter spaces can close with a genuine proof (see
    /// `docs/SYMBOLIC.md`).
    pub domain: Domain,
    /// Under [`Domain::Interval`], drops every property-invisible counter
    /// slot from the canonical state key instead of widening it.
    pub project_counters: bool,
    /// Widening threshold of the interval domain: counter values above it
    /// saturate. Must be at least 1.
    pub widen_threshold: i64,
}

impl Default for VerificationOptions {
    fn default() -> Self {
        Self {
            enabled: true,
            workers: 2,
            hyperperiods: 1,
            scope: VerificationScope::PerThread,
            properties: Vec::new(),
            frontier: FrontierMode::default(),
            pruning: true,
            interner_capacity: 4096,
            domain: Domain::Concrete,
            project_counters: false,
            widen_threshold: 8,
        }
    }
}

impl VerificationOptions {
    /// Checks the options for consistency. The bounds apply even when the
    /// phase is disabled, so re-enabling it cannot surface a stale invalid
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when `workers` or
    /// `hyperperiods` is 0, or when a property expression does not parse
    /// (the message carries the offending span).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidOptions(
                "verify.workers must be at least 1 (got 0)".into(),
            ));
        }
        if self.hyperperiods == 0 {
            return Err(CoreError::InvalidOptions(
                "verify.hyperperiods must be at least 1 (got 0)".into(),
            ));
        }
        if self.interner_capacity == 0 {
            return Err(CoreError::InvalidOptions(
                "verify.interner_capacity must be at least 1 (got 0)".into(),
            ));
        }
        if self.widen_threshold < 1 {
            return Err(CoreError::InvalidOptions(format!(
                "verify.widen_threshold must be at least 1 (got {})",
                self.widen_threshold
            )));
        }
        for spec in &self.properties {
            spec.parse()?;
        }
        Ok(())
    }
}

/// The options of every phase of one staged run, bundled so whole-chain
/// front ends ([`ToolChain`](crate::ToolChain), [`BatchRunner`](crate::BatchRunner))
/// can carry a single value.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionOptions {
    /// Scheduling-phase options.
    pub schedule: ScheduleOptions,
    /// Translation-phase options.
    pub translate: TranslateOptions,
    /// Simulation-phase options.
    pub simulate: SimulateOptions,
    /// Verification-phase options.
    pub verify: VerificationOptions,
    /// Telemetry collector shared by every phase of the chain: phase spans,
    /// engine counters and the `RunRecord` embedded into the final report
    /// all flow through it. Defaults to noop (records nothing, costs
    /// nothing). Collection mode never changes any phase result — see the
    /// determinism pins in `crates/verify/tests/obs_determinism.rs`.
    pub collector: polyobs::Collector,
}

impl SessionOptions {
    /// The recommended per-job configuration for batch and throughput
    /// runs: one simulated hyper-period, no VCD capture, and sequential
    /// in-job verification (when many jobs run concurrently, the
    /// parallelism belongs at the job level, not inside each verifier).
    /// Used by the `polychrony batch` CLI, the `batch_verification`
    /// example and the `batch_throughput` bench.
    pub fn quick() -> Self {
        Self {
            simulate: SimulateOptions {
                hyperperiods: 1,
                vcd: VcdCapture::Off,
            },
            verify: VerificationOptions {
                workers: 1,
                ..VerificationOptions::default()
            },
            ..Self::default()
        }
    }

    /// Checks every phase's options for consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError::InvalidOptions`] raised by a phase.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.schedule.validate()?;
        self.translate.validate()?;
        self.simulate.validate()?;
        self.verify.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        SessionOptions::default().validate().unwrap();
    }

    #[test]
    fn zero_values_are_rejected_with_the_offending_field() {
        let mut options = SessionOptions::default();
        options.simulate.hyperperiods = 0;
        let err = options.validate().unwrap_err();
        assert!(err.to_string().contains("simulate.hyperperiods"), "{err}");

        let mut options = SessionOptions::default();
        options.verify.workers = 0;
        let err = options.validate().unwrap_err();
        assert!(err.to_string().contains("verify.workers"), "{err}");

        let mut options = SessionOptions::default();
        options.verify.hyperperiods = 0;
        let err = options.validate().unwrap_err();
        assert!(err.to_string().contains("verify.hyperperiods"), "{err}");

        let mut options = SessionOptions::default();
        options.verify.interner_capacity = 0;
        let err = options.validate().unwrap_err();
        assert!(
            err.to_string().contains("verify.interner_capacity"),
            "{err}"
        );

        let mut options = SessionOptions::default();
        options.translate.default_queue_size = 0;
        let err = options.validate().unwrap_err();
        assert!(
            err.to_string().contains("translate.default_queue_size"),
            "{err}"
        );
    }

    #[test]
    fn malformed_property_specs_are_rejected_with_a_span() {
        let mut options = SessionOptions::default();
        options.verify.properties = vec![PropertySpec::new("always (Deadline implies")];
        let err = options.validate().unwrap_err();
        let message = err.to_string();
        assert!(message.contains("verify.properties"), "{message}");
        assert!(message.contains('^'), "{message}");

        let mut options = SessionOptions::default();
        options.verify.properties = vec![PropertySpec::new("never raised(*Alarm*)")];
        options.validate().unwrap();
    }

    #[test]
    fn disabled_verification_still_validates_bounds() {
        let mut options = SessionOptions::default();
        options.verify.enabled = false;
        options.verify.workers = 0;
        assert!(matches!(
            options.validate(),
            Err(CoreError::InvalidOptions(_))
        ));
    }
}
