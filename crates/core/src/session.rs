//! The staged pipeline API: a [`Session`] turns each phase of the
//! ASME2SSME tool chain into a typed artifact that can be inspected, kept,
//! or pushed into the next phase.
//!
//! The chain mirrors the paper's flow one type per phase:
//!
//! ```text
//! Session ─parse→ Parsed ─instantiate→ Instantiated ─schedule→ Scheduled
//!         ─translate→ Translated ─analyze→ Analyzed ─simulate→ Simulated
//!         ─verify→ Verified ─into_report→ ToolChainReport
//! ```
//!
//! Every intermediate artifact is a plain struct with public fields — the
//! instance model, the synthesised schedule, the affine-clock export, the
//! flat SIGNAL model, the per-thread simulation and verification outcomes —
//! so callers can stop after any phase, reuse an artifact across runs, or
//! feed it to another backend. The monolithic
//! [`ToolChain`](crate::ToolChain) is a thin facade over this chain.
//!
//! ```
//! use polychrony_core::Session;
//!
//! // Stop after scheduling: no translation or simulation runs.
//! let scheduled = Session::new()
//!     .parse_case_study()?
//!     .instantiate("sysProdCons.impl")?
//!     .schedule()?;
//! assert_eq!(scheduled.schedule.hyperperiod, 24);
//! assert!(scheduled.affine.clock_count() > 0);
//!
//! // ... or keep going all the way to the aggregated report.
//! let report = scheduled
//!     .translate()?
//!     .analyze()?
//!     .simulate()?
//!     .verify()?
//!     .into_report();
//! assert!(report.all_checks_passed());
//! # Ok::<(), polychrony_core::CoreError>(())
//! ```

use std::collections::BTreeMap;

use aadl::ast::Package;
use aadl::case_study::PRODUCER_CONSUMER_AADL;
use aadl::instance::{InstanceModel, ThreadInstance};
use aadl::parse_package;
use asme2ssme::{
    scheduled_thread_model, task_set_from_threads, thread_connections, ScheduledThreadModel,
    ThreadConnection, TranslatedSystem, Translator,
};
use polyobs::{Collector, PhaseRecord, RunRecord};
use polysim::{SimulationReport, Simulator};
use polyverify::{
    InputSpace, PortLink, ProductComponent, ProductSystem, ProductVerifier, Property,
    VerificationOutcome, Verifier, VerifyOptions,
};
use sched::{export_affine_clocks, AffineExport, BaselineReport, StaticSchedule, TaskSet};
use signal_moc::analysis::StaticAnalysisReport;
use signal_moc::process::Process;

use crate::error::CoreError;
use crate::options::{
    ScheduleOptions, SessionOptions, SimulateOptions, TranslateOptions, VcdCapture,
    VerificationOptions, VerificationScope,
};
use crate::report::{ProductVerificationReport, ToolChainReport, VerificationReport};

/// VCD timescale used by the simulation phase: the case-study processor has
/// a 1 ms clock period, so one simulated tick is one millisecond.
const VCD_TIMESCALE_NS: u64 = 1_000_000;

/// Times one pipeline phase: opens a `phase.<name>` span on the session's
/// collector (so trace sinks and progress reporters see phase boundaries)
/// and produces the [`PhaseRecord`] accumulated into the chain's
/// [`RunRecord`]. Dropping the timer without [`PhaseTimer::finish`] (the
/// error path) closes the span and records nothing.
struct PhaseTimer {
    span: polyobs::Span,
    started: std::time::Instant,
    name: &'static str,
}

impl PhaseTimer {
    fn start(collector: &Collector, name: &'static str) -> Self {
        PhaseTimer {
            span: collector.span(&format!("phase.{name}")),
            started: std::time::Instant::now(),
            name,
        }
    }

    fn finish(mut self, attrs: &[(&str, u64)]) -> PhaseRecord {
        for (k, v) in attrs {
            self.span.attr(k, *v);
        }
        PhaseRecord {
            name: self.name.to_string(),
            wall_us: self.started.elapsed().as_micros() as u64,
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }
}

/// Maps an extracted AADL thread connection onto its product link, using
/// the conventional signal names of the translation. A `Timing => Delayed`
/// connection delivers one tick later. This is the single conversion rule
/// shared by the pipeline's product phase, the demos and the test suites,
/// so the wiring cannot drift between them.
pub fn port_link_for(connection: &ThreadConnection) -> PortLink {
    let link = PortLink::event(
        connection.name.clone(),
        connection.source_thread.clone(),
        &connection.source_port,
        connection.target_thread.clone(),
        &connection.target_port,
    );
    if connection.delayed {
        link.with_latency(1)
    } else {
        link
    }
}

/// The standard cross-thread latency property of one link: an emission must
/// be frozen by the receiving thread within one of its periods (falling
/// back to the hyper-period when the receiver has no extracted task).
pub fn end_to_end_response_for(link: &PortLink, tasks: &TaskSet, hyperperiod: u64) -> Property {
    let bound = tasks
        .task(&link.target)
        .map(|task| task.period as u32)
        .unwrap_or(hyperperiod as u32);
    Property::EndToEndResponse {
        from: link.sent_signal(),
        to: link.consumed_signal(),
        bound,
    }
}

/// Entry point of the staged pipeline: holds the per-phase options and
/// opens the chain with [`Session::parse`] (or [`Session::load_instance`]
/// for an already-instantiated model).
///
/// A session is cheap to create and stateless between runs: every `parse`
/// starts an independent chain, so one configured session can front many
/// models (this is what [`BatchRunner`](crate::BatchRunner) relies on for
/// its shared-nothing workers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Session {
    options: SessionOptions,
}

impl Session {
    /// Creates a session with default options (EDF, 4 simulated
    /// hyper-periods, verification enabled with 2 workers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a session with explicit options, validated upfront.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when any phase option is out of
    /// range (zero workers, zero hyper-periods, zero queue size).
    pub fn with_options(options: SessionOptions) -> Result<Self, CoreError> {
        options.validate()?;
        Ok(Self { options })
    }

    /// The per-phase options this session will hand to each artifact.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Replaces the scheduling-phase options.
    #[must_use]
    pub fn schedule_options(mut self, options: ScheduleOptions) -> Self {
        self.options.schedule = options;
        self
    }

    /// Replaces the translation-phase options.
    #[must_use]
    pub fn translate_options(mut self, options: TranslateOptions) -> Self {
        self.options.translate = options;
        self
    }

    /// Replaces the simulation-phase options.
    #[must_use]
    pub fn simulate_options(mut self, options: SimulateOptions) -> Self {
        self.options.simulate = options;
        self
    }

    /// Replaces the verification-phase options.
    #[must_use]
    pub fn verification_options(mut self, options: VerificationOptions) -> Self {
        self.options.verify = options;
        self
    }

    /// Phase 1: parses AADL source text into a [`Parsed`] artifact.
    ///
    /// # Errors
    ///
    /// Propagates parser errors as [`CoreError::Aadl`].
    pub fn parse(&self, source: &str) -> Result<Parsed, CoreError> {
        let timer = PhaseTimer::start(&self.options.collector, "parse");
        let package = parse_package(source)?;
        let mut record = RunRecord::default();
        record.push(timer.finish(&[("classifiers", package.classifiers.len() as u64)]));
        Ok(Parsed {
            options: self.options.clone(),
            record,
            package,
        })
    }

    /// Phase 1 on the built-in ProducerConsumer case study of the paper
    /// (instantiate it with root classifier `"sysProdCons.impl"`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::parse`].
    pub fn parse_case_study(&self) -> Result<Parsed, CoreError> {
        self.parse(PRODUCER_CONSUMER_AADL)
    }

    /// Opens the chain at phase 2 with an already-instantiated model
    /// (skipping parse + instantiate), e.g. a synthetic model from
    /// [`aadl::synth::generate_instance`].
    pub fn load_instance(&self, instance: InstanceModel) -> Instantiated {
        Instantiated {
            options: self.options.clone(),
            record: RunRecord::default(),
            instance,
        }
    }
}

/// Phase-1 artifact: the parsed AADL package (declarative model).
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    options: SessionOptions,
    record: RunRecord,
    /// The parsed package, with classifiers in source order.
    pub package: Package,
}

impl Parsed {
    /// Phase 2: instantiates `root_classifier` into an AADL instance model.
    ///
    /// # Errors
    ///
    /// Propagates resolution/instantiation errors as [`CoreError::Aadl`].
    pub fn instantiate(mut self, root_classifier: &str) -> Result<Instantiated, CoreError> {
        let timer = PhaseTimer::start(&self.options.collector, "instantiate");
        let instance = InstanceModel::instantiate(&self.package, root_classifier)?;
        self.record
            .push(timer.finish(&[("components", instance.instance_count() as u64)]));
        Ok(Instantiated {
            options: self.options,
            record: self.record,
            instance,
        })
    }
}

/// Phase-2 artifact: the instantiated AADL model (instance tree, flattened
/// connections, processor bindings).
#[derive(Debug, Clone, PartialEq)]
pub struct Instantiated {
    options: SessionOptions,
    record: RunRecord,
    /// The instance model.
    pub instance: InstanceModel,
}

impl Instantiated {
    /// Phase 3: extracts the periodic task set, synthesises the static
    /// schedule over the hyper-period, runs the Cheddar-like baseline
    /// analyses, and exports the schedule as verified affine clock
    /// relations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Scheduling`] or [`CoreError::Affine`] when the
    /// task set is inconsistent, unschedulable, or not synchronizable.
    pub fn schedule(mut self) -> Result<Scheduled, CoreError> {
        self.options.schedule.validate()?;
        let timer = PhaseTimer::start(&self.options.collector, "schedule");
        let threads = self.instance.threads()?;
        let tasks = task_set_from_threads(&threads)?;
        let schedule = StaticSchedule::synthesize(&tasks, self.options.schedule.policy)?;
        let baseline = BaselineReport::analyze(&tasks);
        let affine = export_affine_clocks(&tasks, &schedule)
            .map_err(|e| CoreError::Affine(e.to_string()))?;
        self.record.push(timer.finish(&[
            ("tasks", tasks.len() as u64),
            ("hyperperiod", schedule.hyperperiod),
        ]));
        Ok(Scheduled {
            options: self.options,
            record: self.record,
            instance: self.instance,
            threads,
            tasks,
            schedule,
            baseline,
            affine,
        })
    }
}

/// Phase-3 artifact: the scheduled task set with its affine-clock export
/// and baseline schedulability analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled {
    options: SessionOptions,
    record: RunRecord,
    /// The instance model the schedule was synthesised for.
    pub instance: InstanceModel,
    /// The thread instances with resolved timing contracts.
    pub threads: Vec<ThreadInstance>,
    /// The extracted periodic task set.
    pub tasks: TaskSet,
    /// The synthesised static non-preemptive schedule.
    pub schedule: StaticSchedule,
    /// Cheddar-like baseline schedulability analyses of the task set.
    pub baseline: BaselineReport,
    /// The affine-clock export with its verified synchronizability
    /// constraints.
    pub affine: AffineExport,
}

impl Scheduled {
    /// Phase 4: runs the ASME2SSME transformation and assembles the
    /// flattened per-thread simulation/verification units.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] for a zero queue size,
    /// [`CoreError::Translation`] or [`CoreError::Signal`] when the
    /// transformation or the flattening fails.
    pub fn translate(mut self) -> Result<Translated, CoreError> {
        self.options.translate.validate()?;
        let timer = PhaseTimer::start(&self.options.collector, "translate");
        let system = Translator::new()
            .with_default_queue_size(self.options.translate.default_queue_size)
            .translate(&self.instance)?;
        // Threads without a SIGNAL process (no timing contract) are not
        // simulation units; they are simply absent from `thread_units`.
        let mut thread_units = Vec::new();
        for thread in &self.threads {
            if let Some(model) = scheduled_thread_model(&system, thread)? {
                thread_units.push(ThreadUnit {
                    path: thread.path.clone(),
                    model,
                });
            }
        }
        // Thread-to-thread event-port connections (the synchronising
        // actions of product verification), restricted to scheduled units.
        let connections = thread_connections(&self.instance)?
            .into_iter()
            .filter(|c| {
                thread_units
                    .iter()
                    .any(|u| u.model.thread_name == c.source_thread)
                    && thread_units
                        .iter()
                        .any(|u| u.model.thread_name == c.target_thread)
            })
            .collect();
        self.record.push(timer.finish(&[
            ("processes", system.model.len() as u64),
            ("equations", system.model.total_equations() as u64),
            ("thread_units", thread_units.len() as u64),
        ]));
        Ok(Translated {
            options: self.options,
            record: self.record,
            instance: self.instance,
            threads: self.threads,
            tasks: self.tasks,
            schedule: self.schedule,
            baseline: self.baseline,
            affine: self.affine,
            system,
            thread_units,
            connections,
        })
    }
}

/// One translated thread ready for simulation/verification: its instance
/// path (the key of the per-thread report maps) and its flattened
/// [`ScheduledThreadModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadUnit {
    /// Thread instance path (e.g. `sysProdCons.prProdCons.thProducer`).
    pub path: String,
    /// The flattened simulation/verification unit of the thread.
    pub model: ScheduledThreadModel,
}

/// Phase-4 artifact: the SIGNAL process model produced by the ASME2SSME
/// transformation, plus the flattened per-thread units.
#[derive(Debug, Clone, PartialEq)]
pub struct Translated {
    options: SessionOptions,
    record: RunRecord,
    /// The instance model.
    pub instance: InstanceModel,
    /// The thread instances with resolved timing contracts.
    pub threads: Vec<ThreadInstance>,
    /// The extracted periodic task set.
    pub tasks: TaskSet,
    /// The synthesised static schedule.
    pub schedule: StaticSchedule,
    /// Baseline schedulability analyses.
    pub baseline: BaselineReport,
    /// The affine-clock export.
    pub affine: AffineExport,
    /// The translated SIGNAL system with its traceability map.
    pub system: TranslatedSystem,
    /// The flattened simulation/verification unit of every thread that has
    /// a SIGNAL process, in instance-tree order.
    pub thread_units: Vec<ThreadUnit>,
    /// The thread-to-thread event-port connections between the scheduled
    /// units, extracted from the AADL connection instances.
    pub connections: Vec<ThreadConnection>,
}

impl Translated {
    /// Phase 5: flattens the whole model and runs the clock calculus and
    /// the static analyses (determinism identification, deadlock
    /// detection).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Signal`] when flattening or an analysis fails.
    pub fn analyze(mut self) -> Result<Analyzed, CoreError> {
        let timer = PhaseTimer::start(&self.options.collector, "analyze");
        let flat = self.system.model.flatten()?;
        let static_analysis = StaticAnalysisReport::analyze(&flat)?;
        self.record
            .push(timer.finish(&[("clocks", static_analysis.clock_count as u64)]));
        Ok(Analyzed {
            options: self.options,
            record: self.record,
            instance: self.instance,
            tasks: self.tasks,
            schedule: self.schedule,
            baseline: self.baseline,
            affine: self.affine,
            system: self.system,
            thread_units: self.thread_units,
            connections: self.connections,
            flat,
            static_analysis,
        })
    }
}

/// Phase-5 artifact: the flat SIGNAL model with its clock-calculus and
/// static-analysis results.
#[derive(Debug, Clone, PartialEq)]
pub struct Analyzed {
    options: SessionOptions,
    record: RunRecord,
    /// The instance model.
    pub instance: InstanceModel,
    /// The extracted periodic task set.
    pub tasks: TaskSet,
    /// The synthesised static schedule.
    pub schedule: StaticSchedule,
    /// Baseline schedulability analyses.
    pub baseline: BaselineReport,
    /// The affine-clock export.
    pub affine: AffineExport,
    /// The translated SIGNAL system.
    pub system: TranslatedSystem,
    /// The flattened per-thread simulation/verification units.
    pub thread_units: Vec<ThreadUnit>,
    /// The thread-to-thread event-port connections between the units.
    pub connections: Vec<ThreadConnection>,
    /// The whole architecture flattened into one SIGNAL process.
    pub flat: Process,
    /// Clock calculus, determinism and deadlock analysis of [`Self::flat`].
    pub static_analysis: StaticAnalysisReport,
}

impl Analyzed {
    /// The options this artifact will hand to later phases. Used by the
    /// artifact cache to fingerprint and scrub stored artifacts.
    pub(crate) fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Replaces the artifact's options wholesale. The artifact cache uses
    /// this to re-home a cached front end under the requesting job's
    /// options (and collector) before the remaining phases run, and to
    /// scrub stored copies down to a noop collector.
    pub(crate) fn adopt_options(&mut self, options: SessionOptions) {
        self.options = options;
    }

    /// Phase 6: co-simulates every thread unit under the synthesised
    /// schedule, capturing the VCD waveform selected by
    /// [`SimulateOptions::vcd`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] for a zero simulation horizon
    /// and [`CoreError::Signal`] when a simulation step fails.
    pub fn simulate(mut self) -> Result<Simulated, CoreError> {
        self.options.simulate.validate()?;
        let timer = PhaseTimer::start(&self.options.collector, "simulate");
        let mut simulations = BTreeMap::new();
        let mut vcd = String::new();
        let mut vcd_thread = None;
        for unit in &self.thread_units {
            let inputs = unit
                .model
                .timing_trace(&self.schedule, self.options.simulate.hyperperiods);
            let mut simulator = Simulator::new(&unit.model.flat)?;
            simulator.run(&inputs)?;
            simulations.insert(unit.path.clone(), simulator.report());
            let capture = match &self.options.simulate.vcd {
                VcdCapture::Off => false,
                VcdCapture::First => vcd_thread.is_none(),
                VcdCapture::Thread(name) => unit.model.thread_name == *name,
            };
            if capture {
                vcd = simulator.to_vcd(&unit.model.thread_name, VCD_TIMESCALE_NS);
                vcd_thread = Some(unit.model.thread_name.clone());
            }
        }
        self.record.push(timer.finish(&[
            ("threads", simulations.len() as u64),
            ("hyperperiods", self.options.simulate.hyperperiods),
        ]));
        Ok(Simulated {
            options: self.options,
            record: self.record,
            instance: self.instance,
            tasks: self.tasks,
            schedule: self.schedule,
            baseline: self.baseline,
            affine: self.affine,
            system: self.system,
            thread_units: self.thread_units,
            connections: self.connections,
            flat: self.flat,
            static_analysis: self.static_analysis,
            simulations,
            vcd,
            vcd_thread,
        })
    }
}

/// Phase-6 artifact: the per-thread co-simulation reports and the captured
/// VCD waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct Simulated {
    options: SessionOptions,
    record: RunRecord,
    /// The instance model.
    pub instance: InstanceModel,
    /// The extracted periodic task set.
    pub tasks: TaskSet,
    /// The synthesised static schedule.
    pub schedule: StaticSchedule,
    /// Baseline schedulability analyses.
    pub baseline: BaselineReport,
    /// The affine-clock export.
    pub affine: AffineExport,
    /// The translated SIGNAL system.
    pub system: TranslatedSystem,
    /// The flattened per-thread simulation/verification units.
    pub thread_units: Vec<ThreadUnit>,
    /// The thread-to-thread event-port connections between the units.
    pub connections: Vec<ThreadConnection>,
    /// The whole architecture flattened into one SIGNAL process.
    pub flat: Process,
    /// Static analysis of the flat model.
    pub static_analysis: StaticAnalysisReport,
    /// Per-thread co-simulation reports (keyed by thread instance path).
    pub simulations: BTreeMap<String, SimulationReport>,
    /// The captured VCD waveform (empty when capture is off or the selected
    /// thread does not exist).
    pub vcd: String,
    /// Name of the thread the VCD was captured from, when any.
    pub vcd_thread: Option<String>,
}

impl Simulated {
    /// The phase records accumulated so far (parse through simulate).
    pub fn record(&self) -> &RunRecord {
        &self.record
    }

    /// The options this artifact will hand to the verification phase.
    pub(crate) fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Replaces the artifact's options wholesale (see
    /// [`Analyzed::adopt_options`]).
    pub(crate) fn adopt_options(&mut self, options: SessionOptions) {
        self.options = options;
    }

    /// Phase 7: exhaustively model-checks every thread unit under the same
    /// schedule with the standard safety properties
    /// (`never-raised(*Alarm*)`, deadlock freedom) plus any user-supplied
    /// past-time LTL properties from
    /// [`VerificationOptions::properties`] — each gets its own
    /// per-property verdict in the [`VerificationReport`]. When the
    /// verification phase is disabled in [`VerificationOptions`], this is
    /// [`Simulated::skip_verification`].
    ///
    /// A single hyper-period trace wraps around (states recurring at the
    /// same schedule phase are deduplicated across repetitions), so the
    /// exploration either closes — proving the periodic system for
    /// unbounded time — or stops at the depth bound of
    /// [`VerificationOptions::hyperperiods`] hyper-periods.
    ///
    /// With [`VerificationScope::Product`], the phase additionally explores
    /// the synchronous product of the communicating threads: event-port
    /// connections become synchronising actions (the sender's scheduled
    /// emission fixes the receiver's input), every connection is checked
    /// against an end-to-end response property bounded by its receiver's
    /// period, and the joint verdict is returned as a [`VerifiedProduct`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] for zero workers or
    /// hyper-periods and [`CoreError::Verification`] when the exploration
    /// fails.
    pub fn verify(mut self) -> Result<Verified, CoreError> {
        self.options.verify.validate()?;
        if !self.options.verify.enabled {
            return Ok(self.skip_verification());
        }
        let timer = PhaseTimer::start(&self.options.collector, "verify");
        let mut properties = vec![
            Property::NeverRaised("*Alarm*".to_string()),
            Property::DeadlockFree,
        ];
        // User-supplied past-time LTL properties ride along in every
        // scope. A property over joint product signals is vacuous in a
        // thread's own namespace (the signals do not exist there), so
        // checking the full list per-thread is always sound.
        for spec in &self.options.verify.properties {
            properties.push(spec.parse()?);
        }
        // The schedule's affine dispatch clocks double as a feasibility
        // oracle: re-keyed into a thread's own namespace (its dispatch
        // signal is plainly `Dispatch`), it lets free-mode explorations
        // skip phases where the thread provably cannot dispatch. Scheduled
        // exploration — the session default — fixes the inputs anyway, so
        // installing the oracle is free there.
        let dispatch_clocks = self.affine.dispatch_feasibility();
        let mut outcomes = BTreeMap::new();
        for unit in &self.thread_units {
            let verify_inputs = unit.model.timing_trace(&self.schedule, 1);
            let bound = verify_inputs.len() * self.options.verify.hyperperiods as usize;
            let mut options = VerifyOptions::default()
                .with_workers(self.options.verify.workers)
                .with_depth_bound(bound)
                .with_frontier(self.options.verify.frontier)
                .with_pruning(self.options.verify.pruning)
                .with_interner_capacity(self.options.verify.interner_capacity)
                .with_domain(self.options.verify.domain)
                .with_project_counters(self.options.verify.project_counters)
                .with_widen_threshold(self.options.verify.widen_threshold)
                .with_collector(self.options.collector.clone());
            if let Some(relation) = dispatch_clocks.relation(&unit.model.thread_name) {
                let mut oracle = polyverify::DispatchFeasibility::new();
                oracle.insert("Dispatch", *relation);
                options = options.with_oracle(oracle);
            }
            let verifier = Verifier::new(&unit.model.flat, options)?;
            let outcome = verifier.verify(&InputSpace::Scheduled(verify_inputs), &properties)?;
            outcomes.insert(unit.path.clone(), outcome);
        }
        let states: usize = outcomes.values().map(|o| o.stats.states).sum();
        let transitions: usize = outcomes.values().map(|o| o.stats.transitions).sum();
        self.record.push(timer.finish(&[
            ("threads", outcomes.len() as u64),
            ("states", states as u64),
            ("transitions", transitions as u64),
        ]));
        let verification = Some(VerificationReport {
            workers: self.options.verify.workers,
            hyperperiods: self.options.verify.hyperperiods,
            properties: properties.iter().map(Property::name).collect(),
            outcomes,
            product: None,
        });
        let product = match self.options.verify.scope {
            VerificationScope::PerThread => None,
            VerificationScope::Product => {
                let timer = PhaseTimer::start(&self.options.collector, "verify.product");
                let product = self.verify_product()?;
                self.record.push(timer.finish(&[
                    ("states", product.outcome.stats.states as u64),
                    ("depth", product.outcome.stats.depth as u64),
                    ("memo_hits", product.outcome.stats.memo_hits as u64),
                ]));
                Some(product)
            }
        };
        Ok(Verified {
            simulated: self,
            verification,
            product,
        })
    }

    /// Builds the product of the scheduled thread units (event-port
    /// connections as synchronising actions) and model-checks it: alarm
    /// freedom, deadlock freedom, and one
    /// [`Property::EndToEndResponse`] per connection, bounded by the
    /// receiving thread's period (a released event must be frozen by the
    /// receiver within one of its periods).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Verification`] when the product is inconsistent
    /// or the exploration fails.
    pub fn verify_product(&self) -> Result<VerifiedProduct, CoreError> {
        self.verify_product_with_links(self.product_links())
    }

    /// One [`ProductComponent`] per scheduled thread unit — the pieces
    /// [`Simulated::verify_product`] assembles, exposed so harnesses can
    /// build tampered products (fault injection) from the same artifacts.
    pub fn product_components(&self) -> Vec<ProductComponent> {
        self.thread_units
            .iter()
            .map(|unit| ProductComponent {
                name: unit.model.thread_name.clone(),
                process: unit.model.flat.clone(),
                schedule: unit.model.timing_trace(&self.schedule, 1),
            })
            .collect()
    }

    /// The untampered [`PortLink`]s derived from the instance's event-port
    /// connections — the injection point for connection faults: tamper the
    /// returned links (e.g. with
    /// [`polyverify::inject_connection_latency`])
    /// and hand them to [`Simulated::verify_product_with_links`].
    pub fn product_links(&self) -> Vec<PortLink> {
        self.connections.iter().map(port_link_for).collect()
    }

    /// The product property set for `links`: alarm freedom, deadlock
    /// freedom, one end-to-end response bound per link, plus the user
    /// properties of the session options.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when a user property does not
    /// parse.
    pub fn product_properties(&self, links: &[PortLink]) -> Result<Vec<Property>, CoreError> {
        let mut properties = vec![
            Property::NeverRaised("*Alarm*".to_string()),
            Property::DeadlockFree,
        ];
        for link in links {
            properties.push(end_to_end_response_for(
                link,
                &self.tasks,
                self.schedule.hyperperiod,
            ));
        }
        // User properties are checked over the joint namespace too — this
        // is where link-derived `<link>_sent`/`<link>_consumed` atoms
        // become meaningful.
        for spec in &self.options.verify.properties {
            properties.push(spec.parse()?);
        }
        Ok(properties)
    }

    /// Like [`Simulated::verify_product`], but over caller-supplied
    /// `links` — the fault-injection hook: pass
    /// [`Simulated::product_links`] tampered by the `polyverify` injectors
    /// to model-check a system with a faulty interconnect against the
    /// untampered properties.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Verification`] when the product is inconsistent
    /// or the exploration fails.
    pub fn verify_product_with_links(
        &self,
        links: Vec<PortLink>,
    ) -> Result<VerifiedProduct, CoreError> {
        let components = self.product_components();
        let properties = self.product_properties(&links)?;
        let system = ProductSystem::new(components, links)?;
        let bound = system.horizon() * self.options.verify.hyperperiods as usize;
        let verifier = ProductVerifier::new(
            system,
            VerifyOptions::default()
                .with_workers(self.options.verify.workers)
                .with_depth_bound(bound)
                .with_frontier(self.options.verify.frontier)
                .with_pruning(self.options.verify.pruning)
                .with_interner_capacity(self.options.verify.interner_capacity)
                .with_domain(self.options.verify.domain)
                .with_project_counters(self.options.verify.project_counters)
                .with_widen_threshold(self.options.verify.widen_threshold)
                .with_collector(self.options.collector.clone()),
        )?;
        let outcome = verifier.verify(&properties)?;
        Ok(VerifiedProduct {
            connections: self.connections.clone(),
            properties,
            outcome,
            verifier,
        })
    }

    /// Closes the chain without running the verification phase (the
    /// resulting report carries no [`VerificationReport`]).
    pub fn skip_verification(self) -> Verified {
        Verified {
            simulated: self,
            verification: None,
            product: None,
        }
    }
}

/// The product-verification artifact: the joint verdict over the
/// synchronous product of the communicating threads, with the verifier kept
/// alive so counterexamples can be projected back to per-thread traces and
/// replayed in the lockstep co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedProduct {
    /// The event-port connections treated as synchronising actions.
    pub connections: Vec<ThreadConnection>,
    /// The checked properties (standard safety properties plus one
    /// end-to-end response per connection), in verdict order.
    pub properties: Vec<Property>,
    /// The joint exploration outcome.
    pub outcome: VerificationOutcome,
    /// The product verifier, for [`ProductVerifier::project`] and
    /// [`ProductVerifier::replay`] on the outcome's counterexamples.
    pub verifier: ProductVerifier,
}

impl VerifiedProduct {
    /// Condenses the artifact into the serialisable report section.
    pub fn to_report(&self) -> ProductVerificationReport {
        ProductVerificationReport {
            components: self
                .verifier
                .system()
                .components()
                .iter()
                .map(|c| c.name.clone())
                .collect(),
            connections: self.connections.iter().map(|c| c.name.clone()).collect(),
            properties: self.properties.iter().map(Property::name).collect(),
            outcome: self.outcome.clone(),
        }
    }
}

/// Phase-7 artifact: the completed chain, ready to be condensed into a
/// [`ToolChainReport`]. The full [`Simulated`] artifact stays accessible
/// through [`Verified::simulated`].
#[derive(Debug, Clone, PartialEq)]
pub struct Verified {
    /// The phase-6 artifact the verification ran on.
    pub simulated: Simulated,
    /// Per-thread verification outcomes (`None` when the phase was
    /// disabled or skipped).
    pub verification: Option<VerificationReport>,
    /// The product-verification artifact (`None` unless the phase ran with
    /// [`VerificationScope::Product`]).
    pub product: Option<VerifiedProduct>,
}

impl Verified {
    /// The phase records of the finished chain (parse through
    /// verification). [`Verified::into_report`] freezes these — plus the
    /// collector's final counter snapshot — into
    /// [`ToolChainReport::run_record`].
    pub fn record(&self) -> &RunRecord {
        &self.simulated.record
    }

    /// Condenses the whole chain into the aggregated [`ToolChainReport`]
    /// (the same report the [`ToolChain`](crate::ToolChain) facade
    /// returns).
    pub fn into_report(self) -> ToolChainReport {
        let mut verification = self.verification;
        if let (Some(report), Some(product)) = (verification.as_mut(), &self.product) {
            report.product = Some(product.to_report());
        }
        let simulated = self.simulated;
        // The report must stay self-contained after the collector is gone:
        // freeze the counter snapshot into the record now.
        let mut run_record = simulated.record;
        run_record.counters = simulated.options.collector.counter_values();
        let category_counts = simulated
            .instance
            .category_counts()
            .into_iter()
            .map(|(k, v)| (k.keyword().to_string(), v))
            .collect();
        ToolChainReport {
            root: simulated.instance.root.path.clone(),
            component_count: simulated.instance.instance_count(),
            category_counts,
            task_set_summary: simulated.tasks.to_string(),
            schedule: simulated.schedule,
            affine_clock_count: simulated.affine.clock_count(),
            verified_constraints: simulated.affine.verified_constraints,
            signal_process_count: simulated.system.model.len(),
            signal_equation_count: simulated.system.model.total_equations(),
            static_analysis: simulated.static_analysis,
            baseline: simulated.baseline,
            simulations: simulated.simulations,
            verification,
            vcd: simulated.vcd,
            vcd_thread: simulated.vcd_thread,
            run_record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::SchedulingPolicy;

    #[test]
    fn every_intermediate_artifact_is_inspectable() {
        let session = Session::new();
        let parsed = session.parse_case_study().unwrap();
        assert!(!parsed.package.classifiers.is_empty());
        let instantiated = parsed.instantiate("sysProdCons.impl").unwrap();
        assert_eq!(instantiated.instance.root.path, "sysProdCons");
        let scheduled = instantiated.schedule().unwrap();
        assert_eq!(scheduled.schedule.hyperperiod, 24);
        assert_eq!(scheduled.tasks.len(), 4);
        assert!(scheduled.affine.clock_count() > 0);
        assert!(scheduled.baseline.response_times.schedulable);
        let translated = scheduled.translate().unwrap();
        assert_eq!(translated.thread_units.len(), 4);
        let analyzed = translated.analyze().unwrap();
        assert!(analyzed.static_analysis.determinism.is_deterministic());
        assert!(analyzed.static_analysis.clock_count > 0);
        let simulated = analyzed.simulate().unwrap();
        assert_eq!(simulated.simulations.len(), 4);
        assert_eq!(simulated.vcd_thread.as_deref(), Some("thProducer"));
        let verified = simulated.verify().unwrap();
        let verification = verified.verification.as_ref().unwrap();
        assert_eq!(verification.outcomes.len(), 4);
        let report = verified.into_report();
        assert!(report.all_checks_passed(), "{}", report.summary());
    }

    #[test]
    fn the_run_record_tracks_every_phase_and_the_collector_counters() {
        let mut options = SessionOptions::default();
        options.simulate.hyperperiods = 1;
        options.collector = polyobs::Collector::counters();
        let report = Session::with_options(options)
            .unwrap()
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap()
            .translate()
            .unwrap()
            .analyze()
            .unwrap()
            .simulate()
            .unwrap()
            .verify()
            .unwrap()
            .into_report();
        let names: Vec<&str> = report
            .run_record
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "parse",
                "instantiate",
                "schedule",
                "translate",
                "analyze",
                "simulate",
                "verify"
            ]
        );
        let schedule = report.run_record.phase("schedule").unwrap();
        assert_eq!(schedule.attr("hyperperiod"), Some(24));
        assert_eq!(schedule.attr("tasks"), Some(4));
        let verify = report.run_record.phase("verify").unwrap();
        assert_eq!(verify.attr("threads"), Some(4));
        assert!(verify.attr("states").unwrap() > 0);
        // The engine streamed its counters into the session's collector and
        // the report froze the snapshot.
        assert!(report.run_record.counter("engine.states").unwrap() > 0);
        assert!(report.summary().contains("phases"));
        // A noop-collector run records the same phase shape (equal reports)
        // but no counters.
        let mut quiet = SessionOptions::default();
        quiet.simulate.hyperperiods = 1;
        let silent = Session::with_options(quiet)
            .unwrap()
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap()
            .translate()
            .unwrap()
            .analyze()
            .unwrap()
            .simulate()
            .unwrap()
            .verify()
            .unwrap()
            .into_report();
        assert!(silent.run_record.counters.is_empty());
        assert_eq!(silent.run_record, report.run_record);
        assert_eq!(silent, report);
    }

    #[test]
    fn product_scope_adds_the_joint_verdict() {
        let mut options = SessionOptions::default();
        options.simulate.hyperperiods = 1;
        options.verify.scope = VerificationScope::Product;
        let verified = Session::with_options(options)
            .unwrap()
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap()
            .translate()
            .unwrap()
            .analyze()
            .unwrap()
            .simulate()
            .unwrap()
            .verify()
            .unwrap();
        let product = verified.product.as_ref().expect("product scope requested");
        assert_eq!(product.connections.len(), 6);
        // Standard safety properties + one end-to-end response per link.
        assert_eq!(product.properties.len(), 2 + 6);
        assert!(
            product.outcome.is_violation_free(),
            "{}",
            product.outcome.summary()
        );
        // The product explored the full 24-tick hyper-period.
        assert_eq!(product.outcome.stats.depth, 24);
        let report = verified.into_report();
        let verification = report.verification.as_ref().unwrap();
        let section = verification.product.as_ref().expect("product section");
        assert_eq!(section.components.len(), 4);
        assert!(section.summary().contains("thProducer"));
        assert!(report.all_checks_passed(), "{}", report.summary());
        assert!(report
            .summary()
            .contains("product             : 4 component(s)"));
    }

    #[test]
    fn translated_artifact_exposes_the_thread_connections() {
        let translated = Session::new()
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap()
            .translate()
            .unwrap();
        assert_eq!(translated.connections.len(), 6);
        assert!(translated
            .connections
            .iter()
            .any(|c| c.name == "cProdStartTimer" && c.source_thread == "thProducer"));
    }

    #[test]
    fn a_schedule_artifact_can_fan_out_into_many_translations() {
        let session = Session::new();
        let scheduled = session
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap();
        // The artifact is a plain value: clone it and run two independent
        // later-phase configurations from the same schedule.
        let a = scheduled.clone().translate().unwrap();
        let b = scheduled.translate().unwrap();
        assert_eq!(a.system.model.len(), b.system.model.len());
    }

    #[test]
    fn vcd_capture_off_leaves_no_waveform() {
        let simulated = Session::new()
            .simulate_options(SimulateOptions {
                hyperperiods: 1,
                vcd: VcdCapture::Off,
            })
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap()
            .translate()
            .unwrap()
            .analyze()
            .unwrap()
            .simulate()
            .unwrap();
        assert!(simulated.vcd.is_empty());
        assert_eq!(simulated.vcd_thread, None);
    }

    #[test]
    fn vcd_capture_by_name_selects_that_thread() {
        let simulated = Session::new()
            .simulate_options(SimulateOptions {
                hyperperiods: 1,
                vcd: VcdCapture::Thread("thConsumer".into()),
            })
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap()
            .translate()
            .unwrap()
            .analyze()
            .unwrap()
            .simulate()
            .unwrap();
        assert_eq!(simulated.vcd_thread.as_deref(), Some("thConsumer"));
        assert!(simulated.vcd.contains("thConsumer"));
    }

    #[test]
    fn invalid_phase_options_fail_at_the_owning_phase() {
        let session = Session::new().simulate_options(SimulateOptions {
            hyperperiods: 0,
            vcd: VcdCapture::Off,
        });
        // Earlier phases still run fine...
        let analyzed = session
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap()
            .translate()
            .unwrap()
            .analyze()
            .unwrap();
        // ... and the owning phase rejects the zero horizon.
        let err = analyzed.simulate().unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions(_)), "{err}");
    }

    #[test]
    fn with_options_validates_upfront() {
        let mut options = SessionOptions::default();
        options.verify.workers = 0;
        assert!(matches!(
            Session::with_options(options),
            Err(CoreError::InvalidOptions(_))
        ));
    }

    #[test]
    fn alternate_policy_flows_through_the_chain() {
        let scheduled = Session::new()
            .schedule_options(ScheduleOptions {
                policy: SchedulingPolicy::RateMonotonic,
            })
            .parse_case_study()
            .unwrap()
            .instantiate("sysProdCons.impl")
            .unwrap()
            .schedule()
            .unwrap();
        assert_eq!(scheduled.schedule.policy, SchedulingPolicy::RateMonotonic);
        assert!(scheduled.schedule.is_valid());
    }
}
