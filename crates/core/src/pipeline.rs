//! The tool-chain pipeline: parse → instantiate → schedule → export →
//! translate → analyse → simulate.

use std::collections::BTreeMap;

use aadl::case_study::PRODUCER_CONSUMER_AADL;
use aadl::instance::InstanceModel;
use aadl::parse_package;
use asme2ssme::{schedule_to_timing_trace, task_set_from_threads, Translator};
use polysim::Simulator;
use sched::{export_affine_clocks, BaselineReport, SchedulingPolicy, StaticSchedule};
use signal_moc::analysis::StaticAnalysisReport;
use signal_moc::process::ProcessModel;

use crate::error::CoreError;
use crate::report::ToolChainReport;

/// Options controlling a tool-chain run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToolChainOptions {
    /// Scheduling policy used for the static synthesis.
    pub policy: SchedulingPolicy,
    /// Number of hyper-periods to co-simulate.
    pub hyperperiods: u64,
    /// Default queue size for event ports without `Queue_Size`.
    pub default_queue_size: usize,
}

impl Default for ToolChainOptions {
    fn default() -> Self {
        Self {
            policy: SchedulingPolicy::EarliestDeadlineFirst,
            hyperperiods: 4,
            default_queue_size: 1,
        }
    }
}

/// The end-to-end tool chain (the ASME2SSME + Polychrony flow of the paper).
#[derive(Debug, Clone, Default)]
pub struct ToolChain {
    options: ToolChainOptions,
}

impl ToolChain {
    /// Creates a tool chain with default options (EDF, 4 hyper-periods).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tool chain with explicit options.
    pub fn with_options(options: ToolChainOptions) -> Self {
        Self { options }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.options.policy = policy;
        self
    }

    /// Sets the number of simulated hyper-periods.
    pub fn with_hyperperiods(mut self, hyperperiods: u64) -> Self {
        self.options.hyperperiods = hyperperiods.max(1);
        self
    }

    /// Runs the whole pipeline on AADL source text, instantiating
    /// `root_classifier`.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, tagged by [`CoreError`].
    pub fn run_source(
        &self,
        source: &str,
        root_classifier: &str,
    ) -> Result<ToolChainReport, CoreError> {
        let package = parse_package(source)?;
        let instance = InstanceModel::instantiate(&package, root_classifier)?;
        self.run_instance(&instance)
    }

    /// Runs the whole pipeline on the ProducerConsumer case study of the
    /// paper.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ToolChain::run_source`].
    pub fn run_case_study(&self) -> Result<ToolChainReport, CoreError> {
        self.run_source(PRODUCER_CONSUMER_AADL, "sysProdCons.impl")
    }

    /// Runs the pipeline on an already-instantiated AADL model.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, tagged by [`CoreError`].
    pub fn run_instance(&self, instance: &InstanceModel) -> Result<ToolChainReport, CoreError> {
        // Phase 1: task-set extraction and scheduler synthesis.
        let threads = instance.threads()?;
        let tasks = task_set_from_threads(&threads)?;
        let schedule = StaticSchedule::synthesize(&tasks, self.options.policy)?;
        let baseline = BaselineReport::analyze(&tasks);

        // Phase 2: affine-clock export and synchronizability verification.
        let affine = export_affine_clocks(&tasks, &schedule)
            .map_err(|e| CoreError::Affine(e.to_string()))?;

        // Phase 3: ASME2SSME translation.
        let translated = Translator::new()
            .with_default_queue_size(self.options.default_queue_size)
            .translate(instance)?;

        // Phase 4: clock calculus and static analyses on the flat model.
        let flat = translated.model.flatten()?;
        let static_analysis = StaticAnalysisReport::analyze(&flat)?;

        // Phase 5: per-thread co-simulation driven by the schedule.
        let mut simulations = BTreeMap::new();
        let mut vcd = String::new();
        for thread in &threads {
            let Some(process_name) = translated.signal_process_for(&thread.path) else {
                continue;
            };
            let Some(process) = translated.model.process(process_name) else {
                continue;
            };
            // Flatten the thread process together with the library processes
            // it instantiates.
            let mut thread_model = ProcessModel::new(process_name.to_string());
            thread_model.add(process.clone());
            for library in translated.model.processes.values() {
                if library.name.starts_with("aadl2signal_") {
                    thread_model.add(library.clone());
                }
            }
            let flat_thread = thread_model.flatten()?;
            let translation = asme2ssme::thread_to_process(process_name, thread);
            let inputs = schedule_to_timing_trace(
                &schedule,
                &thread.name,
                "",
                &translation.in_ports,
                &translation.out_ports,
                self.options.hyperperiods,
            );
            let mut simulator = Simulator::new(&flat_thread)?;
            simulator.run(&inputs)?;
            let report = simulator.report();
            if thread.name == "thProducer" || vcd.is_empty() {
                vcd = simulator.to_vcd(&thread.name, 1_000_000);
            }
            simulations.insert(thread.path.clone(), report);
        }

        let category_counts = instance
            .category_counts()
            .into_iter()
            .map(|(k, v)| (k.keyword().to_string(), v))
            .collect();

        Ok(ToolChainReport {
            root: instance.root.path.clone(),
            component_count: instance.instance_count(),
            category_counts,
            task_set_summary: tasks.to_string(),
            schedule,
            affine_clock_count: affine.clock_count(),
            verified_constraints: affine.verified_constraints,
            signal_process_count: translated.model.len(),
            signal_equation_count: translated.model.total_equations(),
            static_analysis,
            baseline,
            simulations,
            vcd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::synth::{generate_instance, SyntheticSpec};

    #[test]
    fn case_study_pipeline_end_to_end() {
        let report = ToolChain::new().run_case_study().unwrap();
        assert_eq!(report.root, "sysProdCons");
        assert_eq!(report.schedule.hyperperiod, 24);
        assert_eq!(report.simulations.len(), 4);
        assert!(report.all_checks_passed(), "{}", report.summary());
        assert!(report.vcd.contains("$enddefinitions"));
        assert_eq!(report.category_counts["thread"], 4);
        assert!(report.summary().contains("hyper-period 24"));
    }

    #[test]
    fn policies_produce_valid_schedules() {
        for policy in SchedulingPolicy::ALL {
            let report = ToolChain::new()
                .with_policy(policy)
                .with_hyperperiods(1)
                .run_case_study()
                .unwrap();
            assert!(report.schedule.is_valid(), "{policy}");
        }
    }

    #[test]
    fn synthetic_model_runs_through_the_pipeline() {
        let instance = generate_instance(&SyntheticSpec::new(6, 1)).unwrap();
        let report = ToolChain::new()
            .with_hyperperiods(1)
            .run_instance(&instance)
            .unwrap();
        assert_eq!(report.simulations.len(), 6);
        assert!(report.static_analysis.clock_count > 6);
    }

    #[test]
    fn parse_errors_are_propagated() {
        let err = ToolChain::new()
            .run_source("package broken", "nothing")
            .unwrap_err();
        assert!(matches!(err, CoreError::Aadl(_)));
    }
}
