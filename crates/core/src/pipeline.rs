//! The tool-chain pipeline: parse → instantiate → schedule → export →
//! translate → analyse → simulate → verify.

use std::collections::BTreeMap;

use aadl::case_study::PRODUCER_CONSUMER_AADL;
use aadl::instance::InstanceModel;
use aadl::parse_package;
use asme2ssme::{scheduled_thread_model, task_set_from_threads, Translator};
use polysim::Simulator;
use polyverify::{InputSpace, Property, Verifier, VerifyOptions};
use sched::{export_affine_clocks, BaselineReport, SchedulingPolicy, StaticSchedule};
use signal_moc::analysis::StaticAnalysisReport;

use crate::error::CoreError;
use crate::report::{ToolChainReport, VerificationReport};

/// Options controlling a tool-chain run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToolChainOptions {
    /// Scheduling policy used for the static synthesis.
    pub policy: SchedulingPolicy,
    /// Number of hyper-periods to co-simulate.
    pub hyperperiods: u64,
    /// Default queue size for event ports without `Queue_Size`.
    pub default_queue_size: usize,
    /// Runs the state-space verification phase (`polyverify`) after the
    /// co-simulation.
    pub verify: bool,
    /// Worker threads of the parallel reachability engine.
    pub verify_workers: usize,
    /// Number of hyper-periods the verification explores exhaustively.
    pub verify_hyperperiods: u64,
}

impl Default for ToolChainOptions {
    fn default() -> Self {
        Self {
            policy: SchedulingPolicy::EarliestDeadlineFirst,
            hyperperiods: 4,
            default_queue_size: 1,
            verify: true,
            verify_workers: 2,
            verify_hyperperiods: 1,
        }
    }
}

/// The end-to-end tool chain (the ASME2SSME + Polychrony flow of the paper).
#[derive(Debug, Clone, Default)]
pub struct ToolChain {
    options: ToolChainOptions,
}

impl ToolChain {
    /// Creates a tool chain with default options (EDF, 4 hyper-periods).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tool chain with explicit options.
    pub fn with_options(options: ToolChainOptions) -> Self {
        Self { options }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.options.policy = policy;
        self
    }

    /// Sets the number of simulated hyper-periods.
    pub fn with_hyperperiods(mut self, hyperperiods: u64) -> Self {
        self.options.hyperperiods = hyperperiods.max(1);
        self
    }

    /// Enables or disables the state-space verification phase.
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.options.verify = verify;
        self
    }

    /// Sets the worker count of the parallel reachability engine.
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.options.verify_workers = workers.max(1);
        self
    }

    /// Sets the number of hyper-periods the verification explores.
    pub fn with_verify_hyperperiods(mut self, hyperperiods: u64) -> Self {
        self.options.verify_hyperperiods = hyperperiods.max(1);
        self
    }

    /// Runs the whole pipeline on AADL source text, instantiating
    /// `root_classifier`.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, tagged by [`CoreError`].
    pub fn run_source(
        &self,
        source: &str,
        root_classifier: &str,
    ) -> Result<ToolChainReport, CoreError> {
        let package = parse_package(source)?;
        let instance = InstanceModel::instantiate(&package, root_classifier)?;
        self.run_instance(&instance)
    }

    /// Runs the whole pipeline on the ProducerConsumer case study of the
    /// paper.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ToolChain::run_source`].
    pub fn run_case_study(&self) -> Result<ToolChainReport, CoreError> {
        self.run_source(PRODUCER_CONSUMER_AADL, "sysProdCons.impl")
    }

    /// Runs the pipeline on an already-instantiated AADL model.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, tagged by [`CoreError`].
    pub fn run_instance(&self, instance: &InstanceModel) -> Result<ToolChainReport, CoreError> {
        // Phase 1: task-set extraction and scheduler synthesis.
        let threads = instance.threads()?;
        let tasks = task_set_from_threads(&threads)?;
        let schedule = StaticSchedule::synthesize(&tasks, self.options.policy)?;
        let baseline = BaselineReport::analyze(&tasks);

        // Phase 2: affine-clock export and synchronizability verification.
        let affine = export_affine_clocks(&tasks, &schedule)
            .map_err(|e| CoreError::Affine(e.to_string()))?;

        // Phase 3: ASME2SSME translation.
        let translated = Translator::new()
            .with_default_queue_size(self.options.default_queue_size)
            .translate(instance)?;

        // Phase 4: clock calculus and static analyses on the flat model.
        let flat = translated.model.flatten()?;
        let static_analysis = StaticAnalysisReport::analyze(&flat)?;

        // Phase 5: per-thread co-simulation driven by the schedule, and
        // (phase 6) exhaustive state-space verification of each scheduled
        // thread over the verification horizon.
        let verify_properties = [
            Property::NeverRaised("*Alarm*".to_string()),
            Property::DeadlockFree,
        ];
        let mut simulations = BTreeMap::new();
        let mut verification_outcomes = BTreeMap::new();
        let mut vcd = String::new();
        for thread in &threads {
            // Flatten the thread process together with the library processes
            // it instantiates (shared recipe: asme2ssme::scheduled_thread_model).
            let Some(thread_model) = scheduled_thread_model(&translated, thread)? else {
                continue;
            };
            let inputs = thread_model.timing_trace(&schedule, self.options.hyperperiods);
            let mut simulator = Simulator::new(&thread_model.flat)?;
            simulator.run(&inputs)?;
            let report = simulator.report();
            if thread.name == "thProducer" || vcd.is_empty() {
                vcd = simulator.to_vcd(&thread.name, 1_000_000);
            }
            simulations.insert(thread.path.clone(), report);

            // Phase 6: explicit-state verification under the same schedule.
            // A single hyper-period trace wraps around (states recurring at
            // the same schedule phase are deduplicated across repetitions),
            // so the exploration either closes — proving the periodic
            // system for unbounded time — or stops at the depth bound of
            // `verify_hyperperiods` hyper-periods.
            if self.options.verify {
                let verify_inputs = thread_model.timing_trace(&schedule, 1);
                let bound = verify_inputs.len() * self.options.verify_hyperperiods.max(1) as usize;
                let verifier = Verifier::new(
                    &thread_model.flat,
                    VerifyOptions::default()
                        .with_workers(self.options.verify_workers)
                        .with_depth_bound(bound),
                )?;
                let outcome =
                    verifier.verify(&InputSpace::Scheduled(verify_inputs), &verify_properties)?;
                verification_outcomes.insert(thread.path.clone(), outcome);
            }
        }
        let verification = self.options.verify.then(|| VerificationReport {
            workers: self.options.verify_workers.max(1),
            hyperperiods: self.options.verify_hyperperiods.max(1),
            properties: verify_properties.iter().map(Property::name).collect(),
            outcomes: verification_outcomes,
        });

        let category_counts = instance
            .category_counts()
            .into_iter()
            .map(|(k, v)| (k.keyword().to_string(), v))
            .collect();

        Ok(ToolChainReport {
            root: instance.root.path.clone(),
            component_count: instance.instance_count(),
            category_counts,
            task_set_summary: tasks.to_string(),
            schedule,
            affine_clock_count: affine.clock_count(),
            verified_constraints: affine.verified_constraints,
            signal_process_count: translated.model.len(),
            signal_equation_count: translated.model.total_equations(),
            static_analysis,
            baseline,
            simulations,
            verification,
            vcd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::synth::{generate_instance, SyntheticSpec};

    #[test]
    fn case_study_pipeline_end_to_end() {
        let report = ToolChain::new().run_case_study().unwrap();
        assert_eq!(report.root, "sysProdCons");
        assert_eq!(report.schedule.hyperperiod, 24);
        assert_eq!(report.simulations.len(), 4);
        assert!(report.all_checks_passed(), "{}", report.summary());
        assert!(report.vcd.contains("$enddefinitions"));
        assert_eq!(report.category_counts["thread"], 4);
        assert!(report.summary().contains("hyper-period 24"));
        // Verification phase: every thread is alarm-free and deadlock-free
        // over the whole 24-tick hyper-period.
        let verification = report.verification.as_ref().expect("verification enabled");
        assert_eq!(verification.outcomes.len(), 4);
        assert!(
            verification.is_violation_free(),
            "{}",
            verification.summary()
        );
        for outcome in verification.outcomes.values() {
            assert_eq!(outcome.stats.depth, 24, "{}", outcome.summary());
            assert!(outcome.is_violation_free());
        }
        assert!(report.summary().contains("verification"));
    }

    #[test]
    fn verification_can_be_disabled() {
        let report = ToolChain::new()
            .with_verification(false)
            .with_hyperperiods(1)
            .run_case_study()
            .unwrap();
        assert!(report.verification.is_none());
        assert!(report.all_checks_passed());
        assert!(report.summary().contains("verification        : disabled"));
    }

    #[test]
    fn verification_worker_count_does_not_change_verdicts() {
        let sequential = ToolChain::new()
            .with_hyperperiods(1)
            .with_verify_workers(1)
            .run_case_study()
            .unwrap();
        let parallel = ToolChain::new()
            .with_hyperperiods(1)
            .with_verify_workers(4)
            .run_case_study()
            .unwrap();
        let seq = sequential.verification.unwrap();
        let par = parallel.verification.unwrap();
        for (thread, outcome) in &seq.outcomes {
            assert_eq!(outcome.verdicts, par.outcomes[thread].verdicts, "{thread}");
        }
    }

    #[test]
    fn policies_produce_valid_schedules() {
        for policy in SchedulingPolicy::ALL {
            let report = ToolChain::new()
                .with_policy(policy)
                .with_hyperperiods(1)
                .run_case_study()
                .unwrap();
            assert!(report.schedule.is_valid(), "{policy}");
        }
    }

    #[test]
    fn synthetic_model_runs_through_the_pipeline() {
        let instance = generate_instance(&SyntheticSpec::new(6, 1)).unwrap();
        let report = ToolChain::new()
            .with_hyperperiods(1)
            .run_instance(&instance)
            .unwrap();
        assert_eq!(report.simulations.len(), 6);
        assert!(report.static_analysis.clock_count > 6);
    }

    #[test]
    fn parse_errors_are_propagated() {
        let err = ToolChain::new()
            .run_source("package broken", "nothing")
            .unwrap_err();
        assert!(matches!(err, CoreError::Aadl(_)));
    }
}
