//! The monolithic tool-chain front end: a thin convenience facade over the
//! staged [`Session`] API (parse → instantiate → schedule → export →
//! translate → analyse → simulate → verify in one call).
//!
//! Use [`ToolChain`] when you want the whole pipeline and one aggregated
//! [`ToolChainReport`]; use [`Session`] when you want to stop after a
//! phase, inspect or reuse an intermediate artifact, or configure phases
//! individually; use [`crate::BatchRunner`] to push many models through
//! concurrently.

use aadl::instance::InstanceModel;

use crate::error::CoreError;
use crate::options::{
    PropertySpec, ScheduleOptions, SessionOptions, SimulateOptions, TranslateOptions, VcdCapture,
    VerificationOptions, VerificationScope,
};
use crate::report::ToolChainReport;
use crate::session::Session;

use polyverify::{Domain, FrontierMode};
use sched::SchedulingPolicy;

/// Options controlling a tool-chain run — the flat, all-phases-in-one view
/// of [`SessionOptions`]. Out-of-range values are rejected when the run
/// starts (see [`ToolChainOptions::validate`]); nothing is silently
/// clamped.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolChainOptions {
    /// Scheduling policy used for the static synthesis.
    pub policy: SchedulingPolicy,
    /// Number of hyper-periods to co-simulate. Must be at least 1.
    pub hyperperiods: u64,
    /// Default queue size for event ports without `Queue_Size`. Must be at
    /// least 1.
    pub default_queue_size: usize,
    /// Which thread's co-simulation is captured as a VCD waveform.
    pub vcd: VcdCapture,
    /// Runs the state-space verification phase (`polyverify`) after the
    /// co-simulation.
    pub verify: bool,
    /// Worker threads of the parallel reachability engine. Must be at
    /// least 1.
    pub verify_workers: usize,
    /// Number of hyper-periods the verification explores exhaustively.
    /// Must be at least 1.
    pub verify_hyperperiods: u64,
    /// Whether the verification phase also explores the product of the
    /// communicating threads.
    pub verify_scope: VerificationScope,
    /// User-supplied past-time LTL properties checked by the verification
    /// phase (see `docs/PROPERTIES.md`). Each expression must parse.
    pub properties: Vec<PropertySpec>,
    /// Frontier discipline of the reachability engine (work-stealing
    /// deques by default, level barriers for comparison). Verdicts are
    /// identical either way.
    pub verify_frontier: FrontierMode,
    /// Enables clock-calculus pruning: affine dispatch relations exported
    /// by the scheduler skip provably infeasible successor phases, and the
    /// product verifier memoizes per-component steps. Verdicts are
    /// identical with pruning on or off.
    pub verify_pruning: bool,
    /// Initial per-shard capacity of the state interner (grows on demand).
    /// Must be at least 1.
    pub verify_interner_capacity: usize,
    /// State-space domain of the verification phase: `concrete` explores
    /// exact states, `interval` widens property-invisible monotone counters
    /// so unbounded-counter spaces can close with a proof (see
    /// `docs/SYMBOLIC.md`).
    pub verify_domain: Domain,
    /// Under the interval domain, drops property-invisible counter slots
    /// from the canonical state key instead of widening them.
    pub verify_project_counters: bool,
    /// Telemetry collector handed to every phase of the run (phase spans,
    /// engine counters, the [`RunRecord`](polyobs::RunRecord) embedded into
    /// the report). Defaults to noop; collection mode never changes any
    /// result. Equality compares the collection mode only.
    pub collector: polyobs::Collector,
}

impl Default for ToolChainOptions {
    fn default() -> Self {
        Self {
            policy: SchedulingPolicy::EarliestDeadlineFirst,
            hyperperiods: 4,
            default_queue_size: 1,
            vcd: VcdCapture::First,
            verify: true,
            verify_workers: 2,
            verify_hyperperiods: 1,
            verify_scope: VerificationScope::PerThread,
            properties: Vec::new(),
            verify_frontier: FrontierMode::default(),
            verify_pruning: true,
            verify_interner_capacity: 4096,
            verify_domain: Domain::Concrete,
            verify_project_counters: false,
            collector: polyobs::Collector::noop(),
        }
    }
}

impl ToolChainOptions {
    /// The per-phase [`SessionOptions`] equivalent of this flat struct
    /// (the migration path from the old monolithic API to the staged one).
    pub fn session_options(&self) -> SessionOptions {
        SessionOptions {
            schedule: ScheduleOptions {
                policy: self.policy,
            },
            translate: TranslateOptions {
                default_queue_size: self.default_queue_size,
            },
            simulate: SimulateOptions {
                hyperperiods: self.hyperperiods,
                vcd: self.vcd.clone(),
            },
            verify: VerificationOptions {
                enabled: self.verify,
                workers: self.verify_workers,
                hyperperiods: self.verify_hyperperiods,
                scope: self.verify_scope,
                properties: self.properties.clone(),
                frontier: self.verify_frontier,
                pruning: self.verify_pruning,
                interner_capacity: self.verify_interner_capacity,
                domain: self.verify_domain,
                project_counters: self.verify_project_counters,
                widen_threshold: VerificationOptions::default().widen_threshold,
            },
            collector: self.collector.clone(),
        }
    }

    /// Checks every field for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] naming the offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.session_options().validate()
    }
}

/// The end-to-end tool chain (the ASME2SSME + Polychrony flow of the
/// paper), as a single-call facade over the staged [`Session`] API.
#[derive(Debug, Clone, Default)]
pub struct ToolChain {
    options: ToolChainOptions,
}

impl ToolChain {
    /// Creates a tool chain with default options (EDF, 4 hyper-periods).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tool chain with explicit options.
    pub fn with_options(options: ToolChainOptions) -> Self {
        Self { options }
    }

    /// Sets the scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.options.policy = policy;
        self
    }

    /// Sets the number of simulated hyper-periods (must be at least 1;
    /// validated when the run starts).
    #[must_use]
    pub fn with_hyperperiods(mut self, hyperperiods: u64) -> Self {
        self.options.hyperperiods = hyperperiods;
        self
    }

    /// Selects which thread's co-simulation is captured as a VCD waveform.
    #[must_use]
    pub fn with_vcd(mut self, vcd: VcdCapture) -> Self {
        self.options.vcd = vcd;
        self
    }

    /// Enables or disables the state-space verification phase.
    #[must_use]
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.options.verify = verify;
        self
    }

    /// Sets the worker count of the parallel reachability engine (must be
    /// at least 1; validated when the run starts).
    #[must_use]
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.options.verify_workers = workers;
        self
    }

    /// Sets the number of hyper-periods the verification explores (must be
    /// at least 1; validated when the run starts).
    #[must_use]
    pub fn with_verify_hyperperiods(mut self, hyperperiods: u64) -> Self {
        self.options.verify_hyperperiods = hyperperiods;
        self
    }

    /// Selects the verification scope (per-thread only, or per-thread plus
    /// the product of the communicating threads).
    #[must_use]
    pub fn with_verify_scope(mut self, scope: VerificationScope) -> Self {
        self.options.verify_scope = scope;
        self
    }

    /// Selects the frontier discipline of the reachability engine
    /// (work-stealing deques by default; level barriers for comparison).
    #[must_use]
    pub fn with_verify_frontier(mut self, frontier: FrontierMode) -> Self {
        self.options.verify_frontier = frontier;
        self
    }

    /// Enables or disables clock-calculus pruning (on by default; verdicts
    /// are identical either way).
    #[must_use]
    pub fn with_verify_pruning(mut self, pruning: bool) -> Self {
        self.options.verify_pruning = pruning;
        self
    }

    /// Sets the initial per-shard capacity of the state interner (must be
    /// at least 1; validated when the run starts).
    #[must_use]
    pub fn with_verify_interner_capacity(mut self, capacity: usize) -> Self {
        self.options.verify_interner_capacity = capacity;
        self
    }

    /// Selects the state-space domain of the verification phase
    /// (`Domain::Concrete` by default; `Domain::Interval` closes
    /// unbounded-counter spaces by widening — see `docs/SYMBOLIC.md`).
    #[must_use]
    pub fn with_verify_domain(mut self, domain: Domain) -> Self {
        self.options.verify_domain = domain;
        self
    }

    /// Under the interval domain, drops property-invisible counter slots
    /// from the canonical state key instead of widening them.
    #[must_use]
    pub fn with_verify_project_counters(mut self, project: bool) -> Self {
        self.options.verify_project_counters = project;
        self
    }

    /// Adds a user past-time LTL property to check (repeatable; the
    /// expression is validated when the run starts).
    #[must_use]
    pub fn with_property(mut self, expr: impl Into<String>) -> Self {
        self.options.properties.push(PropertySpec::new(expr));
        self
    }

    /// Installs a telemetry collector: every phase opens a span on it, the
    /// exploration engine streams counters into it, and the final report
    /// embeds its counter snapshot. Collection mode never changes any
    /// result (see the determinism pins in `polyverify`'s
    /// `obs_determinism` tests).
    #[must_use]
    pub fn with_collector(mut self, collector: polyobs::Collector) -> Self {
        self.options.collector = collector;
        self
    }

    /// Opens a staged [`Session`] configured with this tool chain's
    /// options, for callers that want to drop down to the phase-by-phase
    /// API.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOptions`] when any option is out of
    /// range.
    pub fn session(&self) -> Result<Session, CoreError> {
        Session::with_options(self.options.session_options())
    }

    /// Runs the whole pipeline on AADL source text, instantiating
    /// `root_classifier`.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, tagged by [`CoreError`]
    /// ([`CoreError::InvalidOptions`] before any phase runs).
    pub fn run_source(
        &self,
        source: &str,
        root_classifier: &str,
    ) -> Result<ToolChainReport, CoreError> {
        Ok(self
            .session()?
            .parse(source)?
            .instantiate(root_classifier)?
            .schedule()?
            .translate()?
            .analyze()?
            .simulate()?
            .verify()?
            .into_report())
    }

    /// Runs the whole pipeline on the ProducerConsumer case study of the
    /// paper.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ToolChain::run_source`].
    pub fn run_case_study(&self) -> Result<ToolChainReport, CoreError> {
        self.run_source(aadl::case_study::PRODUCER_CONSUMER_AADL, "sysProdCons.impl")
    }

    /// Runs the pipeline on an already-instantiated AADL model.
    ///
    /// # Errors
    ///
    /// Returns the first error of any phase, tagged by [`CoreError`]
    /// ([`CoreError::InvalidOptions`] before any phase runs).
    pub fn run_instance(&self, instance: &InstanceModel) -> Result<ToolChainReport, CoreError> {
        Ok(self
            .session()?
            .load_instance(instance.clone())
            .schedule()?
            .translate()?
            .analyze()?
            .simulate()?
            .verify()?
            .into_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aadl::synth::{generate_instance, SyntheticSpec};

    #[test]
    fn case_study_pipeline_end_to_end() {
        let report = ToolChain::new().run_case_study().unwrap();
        assert_eq!(report.root, "sysProdCons");
        assert_eq!(report.schedule.hyperperiod, 24);
        assert_eq!(report.simulations.len(), 4);
        assert!(report.all_checks_passed(), "{}", report.summary());
        assert!(report.vcd.contains("$enddefinitions"));
        assert_eq!(report.vcd_thread.as_deref(), Some("thProducer"));
        assert_eq!(report.category_counts["thread"], 4);
        assert!(report.summary().contains("hyper-period 24"));
        // Verification phase: every thread is alarm-free and deadlock-free
        // over the whole 24-tick hyper-period.
        let verification = report.verification.as_ref().expect("verification enabled");
        assert_eq!(verification.outcomes.len(), 4);
        assert!(
            verification.is_violation_free(),
            "{}",
            verification.summary()
        );
        for outcome in verification.outcomes.values() {
            assert_eq!(outcome.stats.depth, 24, "{}", outcome.summary());
            assert!(outcome.is_violation_free());
        }
        assert!(report.summary().contains("verification"));
    }

    #[test]
    fn verification_can_be_disabled() {
        let report = ToolChain::new()
            .with_verification(false)
            .with_hyperperiods(1)
            .run_case_study()
            .unwrap();
        assert!(report.verification.is_none());
        assert!(report.all_checks_passed());
        assert!(report.summary().contains("verification        : disabled"));
    }

    #[test]
    fn verification_worker_count_does_not_change_verdicts() {
        let sequential = ToolChain::new()
            .with_hyperperiods(1)
            .with_verify_workers(1)
            .run_case_study()
            .unwrap();
        let parallel = ToolChain::new()
            .with_hyperperiods(1)
            .with_verify_workers(4)
            .run_case_study()
            .unwrap();
        let seq = sequential.verification.unwrap();
        let par = parallel.verification.unwrap();
        for (thread, outcome) in &seq.outcomes {
            assert_eq!(outcome.verdicts, par.outcomes[thread].verdicts, "{thread}");
        }
    }

    #[test]
    fn frontier_and_pruning_modes_do_not_change_verdicts() {
        let fast = ToolChain::new()
            .with_hyperperiods(1)
            .run_case_study()
            .unwrap();
        let slow = ToolChain::new()
            .with_hyperperiods(1)
            .with_verify_frontier(FrontierMode::Barrier)
            .with_verify_pruning(false)
            .with_verify_interner_capacity(1)
            .run_case_study()
            .unwrap();
        let a = fast.verification.unwrap();
        let b = slow.verification.unwrap();
        for (thread, outcome) in &a.outcomes {
            let other = &b.outcomes[thread];
            assert_eq!(outcome.verdicts, other.verdicts, "{thread}");
            assert_eq!(outcome.stats.states, other.stats.states, "{thread}");
            assert_eq!(outcome.stats.depth, other.stats.depth, "{thread}");
        }
    }

    #[test]
    fn policies_produce_valid_schedules() {
        for policy in SchedulingPolicy::ALL {
            let report = ToolChain::new()
                .with_policy(policy)
                .with_hyperperiods(1)
                .run_case_study()
                .unwrap();
            assert!(report.schedule.is_valid(), "{policy}");
        }
    }

    #[test]
    fn synthetic_model_runs_through_the_pipeline() {
        let instance = generate_instance(&SyntheticSpec::new(6, 1)).unwrap();
        let report = ToolChain::new()
            .with_hyperperiods(1)
            .run_instance(&instance)
            .unwrap();
        assert_eq!(report.simulations.len(), 6);
        assert!(report.static_analysis.clock_count > 6);
    }

    #[test]
    fn parse_errors_are_propagated() {
        let err = ToolChain::new()
            .run_source("package broken", "nothing")
            .unwrap_err();
        assert!(matches!(err, CoreError::Aadl(_)));
    }

    #[test]
    fn zero_options_are_rejected_instead_of_clamped() {
        for chain in [
            ToolChain::new().with_hyperperiods(0),
            ToolChain::new().with_verify_workers(0),
            ToolChain::new().with_verify_hyperperiods(0),
            ToolChain::new().with_verify_interner_capacity(0),
            ToolChain::with_options(ToolChainOptions {
                default_queue_size: 0,
                ..ToolChainOptions::default()
            }),
        ] {
            let err = chain.run_case_study().unwrap_err();
            assert!(
                matches!(err, CoreError::InvalidOptions(_)),
                "expected InvalidOptions, got {err}"
            );
        }
    }

    #[test]
    fn vcd_capture_is_an_explicit_option() {
        let off = ToolChain::new()
            .with_verification(false)
            .with_hyperperiods(1)
            .with_vcd(VcdCapture::Off)
            .run_case_study()
            .unwrap();
        assert!(off.vcd.is_empty());
        assert_eq!(off.vcd_thread, None);
        assert!(off.summary().contains("vcd capture         : none"));

        let consumer = ToolChain::new()
            .with_verification(false)
            .with_hyperperiods(1)
            .with_vcd(VcdCapture::Thread("thConsumer".into()))
            .run_case_study()
            .unwrap();
        assert_eq!(consumer.vcd_thread.as_deref(), Some("thConsumer"));
        assert!(consumer
            .summary()
            .contains("vcd capture         : thConsumer"));

        // A named thread that does not exist leaves no waveform instead of
        // silently falling back to another thread.
        let missing = ToolChain::new()
            .with_verification(false)
            .with_hyperperiods(1)
            .with_vcd(VcdCapture::Thread("thGhost".into()))
            .run_case_study()
            .unwrap();
        assert!(missing.vcd.is_empty());
        assert_eq!(missing.vcd_thread, None);
    }
}
