//! Error type shared by all analyses of the polychronous core.

use std::fmt;

/// Errors reported by process construction, validation, the clock calculus
/// and the evaluator.
#[derive(Debug, Clone, PartialEq)]
pub enum SignalError {
    /// Two signals with the same name were declared in one process.
    DuplicateSignal {
        /// Enclosing process.
        process: String,
        /// Offending signal name.
        signal: String,
    },
    /// An equation references a signal that is not declared.
    UndeclaredSignal {
        /// Enclosing process.
        process: String,
        /// Offending signal name.
        signal: String,
    },
    /// A declared output has no defining equation.
    UndefinedOutput {
        /// Enclosing process.
        process: String,
        /// Offending signal name.
        signal: String,
    },
    /// A signal has more than one total definition.
    MultipleDefinitions {
        /// Enclosing process.
        process: String,
        /// Offending signal name.
        signal: String,
    },
    /// A sub-process instance refers to an unknown process model.
    UnknownProcess(String),
    /// A sub-process instance has the wrong number of arguments.
    ArityMismatch {
        /// Instantiating process.
        caller: String,
        /// Instantiated process.
        callee: String,
        /// Number of inputs declared by the callee.
        expected_inputs: usize,
        /// Number of inputs supplied by the caller.
        actual_inputs: usize,
        /// Number of outputs declared by the callee.
        expected_outputs: usize,
        /// Number of outputs supplied by the caller.
        actual_outputs: usize,
    },
    /// The process-instance graph is recursive.
    RecursionLimit(String),
    /// The instantaneous dependency graph contains a cycle (deadlock).
    CausalityCycle {
        /// Enclosing process.
        process: String,
        /// Signals participating in the cycle, in order.
        cycle: Vec<String>,
    },
    /// The clock calculus found contradictory synchronisation constraints.
    ClockContradiction {
        /// Enclosing process.
        process: String,
        /// Human-readable description of the contradiction.
        detail: String,
    },
    /// The evaluator was given traces that violate a synchronisation
    /// constraint.
    SynchronizationViolation {
        /// Instant index at which the violation occurred.
        instant: usize,
        /// Description of the violated constraint.
        detail: String,
    },
    /// The evaluator encountered a type error.
    TypeError {
        /// Description of the type mismatch.
        detail: String,
    },
    /// The evaluator could not resolve all signals at an instant (the process
    /// is not executable with the provided inputs).
    NotExecutable {
        /// Instant index at which execution got stuck.
        instant: usize,
        /// Signals whose presence could not be resolved.
        unresolved: Vec<String>,
    },
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::DuplicateSignal { process, signal } => {
                write!(f, "duplicate signal `{signal}` in process `{process}`")
            }
            SignalError::UndeclaredSignal { process, signal } => {
                write!(f, "signal `{signal}` is not declared in process `{process}`")
            }
            SignalError::UndefinedOutput { process, signal } => {
                write!(f, "output `{signal}` of process `{process}` has no definition")
            }
            SignalError::MultipleDefinitions { process, signal } => {
                write!(f, "signal `{signal}` has several total definitions in `{process}`")
            }
            SignalError::UnknownProcess(name) => write!(f, "unknown process `{name}`"),
            SignalError::ArityMismatch {
                caller,
                callee,
                expected_inputs,
                actual_inputs,
                expected_outputs,
                actual_outputs,
            } => write!(
                f,
                "instance of `{callee}` in `{caller}` has arity ({actual_inputs} in, {actual_outputs} out), expected ({expected_inputs} in, {expected_outputs} out)"
            ),
            SignalError::RecursionLimit(name) => {
                write!(f, "process instance graph is recursive at `{name}`")
            }
            SignalError::CausalityCycle { process, cycle } => {
                write!(f, "causality cycle in `{process}`: {}", cycle.join(" -> "))
            }
            SignalError::ClockContradiction { process, detail } => {
                write!(f, "clock contradiction in `{process}`: {detail}")
            }
            SignalError::SynchronizationViolation { instant, detail } => {
                write!(f, "synchronization violated at instant {instant}: {detail}")
            }
            SignalError::TypeError { detail } => write!(f, "type error: {detail}"),
            SignalError::NotExecutable { instant, unresolved } => write!(
                f,
                "process not executable at instant {instant}: unresolved signals {}",
                unresolved.join(", ")
            ),
        }
    }
}

impl std::error::Error for SignalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = SignalError::CausalityCycle {
            process: "p".into(),
            cycle: vec!["a".into(), "b".into(), "a".into()],
        };
        assert_eq!(err.to_string(), "causality cycle in `p`: a -> b -> a");
        let err = SignalError::UnknownProcess("q".into());
        assert!(err.to_string().contains("q"));
    }
}
