//! SIGNAL processes: signal declarations, equations and process models.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::SignalError;
use crate::expr::Expr;
use crate::value::ValueType;

/// The interface role of a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalRole {
    /// An input of the process (`?` in SIGNAL syntax).
    Input,
    /// An output of the process (`!` in SIGNAL syntax).
    Output,
    /// A local signal (declared in the `where` part).
    Local,
}

/// Declaration of a signal: name, type and interface role.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalDecl {
    /// Signal name, unique within its process.
    pub name: String,
    /// Carried value type.
    pub ty: ValueType,
    /// Input, output or local.
    pub role: SignalRole,
}

/// One equation of a SIGNAL process body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Equation {
    /// Total definition `target := expr`: defines `target` at the clock of
    /// `expr`, which must equal the clock of `target`.
    Definition {
        /// Defined signal.
        target: String,
        /// Defining expression.
        expr: Expr,
    },
    /// Partial definition `target ::= expr`: defines `target` only at the
    /// clock of `expr`. Several partial definitions of the same signal are
    /// merged; the clock calculus must prove them pairwise exclusive for the
    /// overall definition to be deterministic (Section IV-B of the paper).
    PartialDefinition {
        /// Defined signal.
        target: String,
        /// Defining expression, active on its own clock.
        expr: Expr,
    },
    /// Clock synchronisation constraint `s1 ^= s2 ^= …`: all listed signals
    /// share the same clock.
    ClockConstraint {
        /// Signals constrained to be synchronous.
        signals: Vec<String>,
    },
    /// Clock exclusion constraint: the listed signals are pairwise never
    /// present at the same instant (used for shared-data access clocks).
    ClockExclusion {
        /// Signals constrained to be mutually exclusive.
        signals: Vec<String>,
    },
    /// Instantiation of a sub-process: `(outs) := Name{params}(ins)`.
    Instance {
        /// Name of the instantiated process model.
        process: String,
        /// Instance label (unique within the parent), used for traceability.
        label: String,
        /// Actual input signals, in the order of the model's inputs.
        inputs: Vec<String>,
        /// Actual output signals, in the order of the model's outputs.
        outputs: Vec<String>,
    },
}

impl Equation {
    /// Name of the signal defined by this equation, if it is a (partial)
    /// definition.
    pub fn defined_signal(&self) -> Option<&str> {
        match self {
            Equation::Definition { target, .. } | Equation::PartialDefinition { target, .. } => {
                Some(target)
            }
            _ => None,
        }
    }
}

/// A SIGNAL process: an interface, a body of equations, and optional
/// sub-process models (declared in its `where` part).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    /// Process name.
    pub name: String,
    /// Declared signals (inputs, outputs and locals).
    pub signals: Vec<SignalDecl>,
    /// Body equations.
    pub equations: Vec<Equation>,
    /// Free-form annotations (pragmas) attached by the translator for
    /// traceability: AADL source path, component category, etc.
    pub annotations: BTreeMap<String, String>,
}

impl Process {
    /// Creates an empty process with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            signals: Vec::new(),
            equations: Vec::new(),
            annotations: BTreeMap::new(),
        }
    }

    /// Signals with [`SignalRole::Input`].
    pub fn inputs(&self) -> impl Iterator<Item = &SignalDecl> {
        self.signals.iter().filter(|s| s.role == SignalRole::Input)
    }

    /// Signals with [`SignalRole::Output`].
    pub fn outputs(&self) -> impl Iterator<Item = &SignalDecl> {
        self.signals.iter().filter(|s| s.role == SignalRole::Output)
    }

    /// Signals with [`SignalRole::Local`].
    pub fn locals(&self) -> impl Iterator<Item = &SignalDecl> {
        self.signals.iter().filter(|s| s.role == SignalRole::Local)
    }

    /// Looks up a signal declaration by name.
    pub fn signal(&self, name: &str) -> Option<&SignalDecl> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// Number of equations in the body (not counting sub-process bodies).
    pub fn equation_count(&self) -> usize {
        self.equations.len()
    }

    /// All signal names referenced anywhere in the body but not declared.
    pub fn undeclared_signals(&self) -> Vec<String> {
        let declared: std::collections::BTreeSet<&str> =
            self.signals.iter().map(|s| s.name.as_str()).collect();
        let mut missing = Vec::new();
        let mut note = |name: &str| {
            if !declared.contains(name) && !missing.iter().any(|m: &String| m == name) {
                missing.push(name.to_string());
            }
        };
        for eq in &self.equations {
            match eq {
                Equation::Definition { target, expr }
                | Equation::PartialDefinition { target, expr } => {
                    note(target);
                    for r in expr.referenced_signals() {
                        note(&r);
                    }
                }
                Equation::ClockConstraint { signals } | Equation::ClockExclusion { signals } => {
                    for s in signals {
                        note(s);
                    }
                }
                Equation::Instance {
                    inputs, outputs, ..
                } => {
                    for s in inputs.iter().chain(outputs) {
                        note(s);
                    }
                }
            }
        }
        missing.sort();
        missing
    }

    /// Structural well-formedness check: all referenced signals are declared,
    /// signal names are unique, and every output has at least one definition.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`SignalError`].
    pub fn validate(&self) -> Result<(), SignalError> {
        let mut seen = std::collections::BTreeSet::new();
        for decl in &self.signals {
            if !seen.insert(decl.name.as_str()) {
                return Err(SignalError::DuplicateSignal {
                    process: self.name.clone(),
                    signal: decl.name.clone(),
                });
            }
        }
        let missing = self.undeclared_signals();
        if let Some(name) = missing.into_iter().next() {
            return Err(SignalError::UndeclaredSignal {
                process: self.name.clone(),
                signal: name,
            });
        }
        for out in self.outputs() {
            let defined = self.equations.iter().any(|eq| match eq {
                Equation::Definition { target, .. }
                | Equation::PartialDefinition { target, .. } => target == &out.name,
                Equation::Instance { outputs, .. } => outputs.contains(&out.name),
                _ => false,
            });
            if !defined {
                return Err(SignalError::UndefinedOutput {
                    process: self.name.clone(),
                    signal: out.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Attaches a traceability annotation (e.g. the AADL source path).
    pub fn annotate(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.annotations.insert(key.into(), value.into());
    }
}

/// A model: a library of named processes, one of which is the root.
///
/// This mirrors the SSME (SIGNAL Syntax Model under Eclipse) produced by the
/// ASME2SSME transformation: the root process represents the AADL system
/// (bound to its processor), and the library contains the AADL2SIGNAL helper
/// processes plus one process per translated component.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProcessModel {
    /// Name of the root process.
    pub root: String,
    /// All process definitions, indexed by name.
    pub processes: BTreeMap<String, Process>,
}

impl ProcessModel {
    /// Creates an empty model with the given root process name (the root
    /// process itself must be added with [`ProcessModel::add`]).
    pub fn new(root: impl Into<String>) -> Self {
        Self {
            root: root.into(),
            processes: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a process definition.
    pub fn add(&mut self, process: Process) {
        self.processes.insert(process.name.clone(), process);
    }

    /// Looks up a process by name.
    pub fn process(&self, name: &str) -> Option<&Process> {
        self.processes.get(name)
    }

    /// The root process, if present.
    pub fn root_process(&self) -> Option<&Process> {
        self.processes.get(&self.root)
    }

    /// Number of processes in the model.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Returns `true` when the model contains no process.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Total number of equations across all processes — the "model size"
    /// metric used in the scalability experiments.
    pub fn total_equations(&self) -> usize {
        self.processes.values().map(Process::equation_count).sum()
    }

    /// Validates every process and checks that every instantiated sub-process
    /// exists in the model with a matching arity.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), SignalError> {
        if !self.processes.contains_key(&self.root) {
            return Err(SignalError::UnknownProcess(self.root.clone()));
        }
        for process in self.processes.values() {
            process.validate()?;
            for eq in &process.equations {
                if let Equation::Instance {
                    process: callee,
                    inputs,
                    outputs,
                    ..
                } = eq
                {
                    let model = self
                        .processes
                        .get(callee)
                        .ok_or_else(|| SignalError::UnknownProcess(callee.clone()))?;
                    let n_in = model.inputs().count();
                    let n_out = model.outputs().count();
                    if n_in != inputs.len() || n_out != outputs.len() {
                        return Err(SignalError::ArityMismatch {
                            caller: process.name.clone(),
                            callee: callee.clone(),
                            expected_inputs: n_in,
                            actual_inputs: inputs.len(),
                            expected_outputs: n_out,
                            actual_outputs: outputs.len(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Flattens the root process by inlining every sub-process instance
    /// (recursively), producing a single process whose local signal names are
    /// prefixed by the instance labels. Analyses and the evaluator work on
    /// flat processes.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::UnknownProcess`] if an instantiated process is
    /// missing, or [`SignalError::RecursionLimit`] if the instance graph is
    /// recursive beyond a fixed depth.
    pub fn flatten(&self) -> Result<Process, SignalError> {
        let root = self
            .root_process()
            .ok_or_else(|| SignalError::UnknownProcess(self.root.clone()))?;
        let mut flat = Process::new(format!("{}_flat", root.name));
        flat.annotations = root.annotations.clone();
        self.inline_into(&mut flat, root, "", 0)?;
        Ok(flat)
    }

    fn inline_into(
        &self,
        flat: &mut Process,
        process: &Process,
        prefix: &str,
        depth: usize,
    ) -> Result<(), SignalError> {
        const MAX_DEPTH: usize = 64;
        if depth > MAX_DEPTH {
            return Err(SignalError::RecursionLimit(process.name.clone()));
        }
        let rename = |name: &str| -> String {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}_{name}")
            }
        };
        for decl in &process.signals {
            let role = if prefix.is_empty() {
                decl.role
            } else {
                SignalRole::Local
            };
            flat.signals.push(SignalDecl {
                name: rename(&decl.name),
                ty: decl.ty,
                role,
            });
        }
        for eq in &process.equations {
            match eq {
                Equation::Definition { target, expr } => {
                    flat.equations.push(Equation::Definition {
                        target: rename(target),
                        expr: rename_expr(expr, &rename),
                    })
                }
                Equation::PartialDefinition { target, expr } => {
                    flat.equations.push(Equation::PartialDefinition {
                        target: rename(target),
                        expr: rename_expr(expr, &rename),
                    })
                }
                Equation::ClockConstraint { signals } => {
                    flat.equations.push(Equation::ClockConstraint {
                        signals: signals.iter().map(|s| rename(s)).collect(),
                    })
                }
                Equation::ClockExclusion { signals } => {
                    flat.equations.push(Equation::ClockExclusion {
                        signals: signals.iter().map(|s| rename(s)).collect(),
                    })
                }
                Equation::Instance {
                    process: callee,
                    label,
                    inputs,
                    outputs,
                } => {
                    let model = self
                        .processes
                        .get(callee)
                        .ok_or_else(|| SignalError::UnknownProcess(callee.clone()))?;
                    let sub_prefix = if prefix.is_empty() {
                        label.clone()
                    } else {
                        format!("{prefix}_{label}")
                    };
                    // Connect formal interface signals to the actual signals
                    // with synchronising definitions.
                    self.inline_into(flat, model, &sub_prefix, depth + 1)?;
                    for (formal, actual) in model.inputs().zip(inputs) {
                        flat.equations.push(Equation::Definition {
                            target: format!("{sub_prefix}_{}", formal.name),
                            expr: Expr::var(rename(actual)),
                        });
                    }
                    for (formal, actual) in model.outputs().zip(outputs) {
                        flat.equations.push(Equation::Definition {
                            target: rename(actual),
                            expr: Expr::var(format!("{sub_prefix}_{}", formal.name)),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

fn rename_expr(expr: &Expr, rename: &dyn Fn(&str) -> String) -> Expr {
    match expr {
        Expr::Var(name) => Expr::Var(rename(name)),
        Expr::Const(v) => Expr::Const(v.clone()),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(rename_expr(e, rename))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rename_expr(a, rename)),
            Box::new(rename_expr(b, rename)),
        ),
        Expr::Delay(e, init) => Expr::Delay(Box::new(rename_expr(e, rename)), init.clone()),
        Expr::When(e, b) => Expr::When(
            Box::new(rename_expr(e, rename)),
            Box::new(rename_expr(b, rename)),
        ),
        Expr::Default(u, v) => Expr::Default(
            Box::new(rename_expr(u, rename)),
            Box::new(rename_expr(v, rename)),
        ),
        Expr::Cell(i, b, init) => Expr::Cell(
            Box::new(rename_expr(i, rename)),
            Box::new(rename_expr(b, rename)),
            init.clone(),
        ),
        Expr::ClockOf(e) => Expr::ClockOf(Box::new(rename_expr(e, rename))),
        Expr::ClockWhen(b) => Expr::ClockWhen(Box::new(rename_expr(b, rename))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::value::ValueType;

    fn counter_process() -> Process {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(
                Expr::delay(Expr::var("count"), crate::value::Value::Int(0)),
                Expr::int(1),
            ),
        );
        b.synchronize(&["count", "tick"]);
        b.build().unwrap()
    }

    #[test]
    fn interface_queries() {
        let p = counter_process();
        assert_eq!(p.inputs().count(), 1);
        assert_eq!(p.outputs().count(), 1);
        assert_eq!(p.locals().count(), 0);
        assert!(p.signal("count").is_some());
        assert!(p.signal("missing").is_none());
    }

    #[test]
    fn undeclared_signal_detected() {
        let mut p = counter_process();
        p.equations.push(Equation::Definition {
            target: "ghost".into(),
            expr: Expr::int(1),
        });
        assert_eq!(p.undeclared_signals(), vec!["ghost".to_string()]);
        assert!(matches!(
            p.validate(),
            Err(SignalError::UndeclaredSignal { .. })
        ));
    }

    #[test]
    fn duplicate_signal_detected() {
        let mut p = counter_process();
        p.signals.push(SignalDecl {
            name: "count".into(),
            ty: ValueType::Integer,
            role: SignalRole::Local,
        });
        assert!(matches!(
            p.validate(),
            Err(SignalError::DuplicateSignal { .. })
        ));
    }

    #[test]
    fn undefined_output_detected() {
        let mut p = Process::new("empty");
        p.signals.push(SignalDecl {
            name: "y".into(),
            ty: ValueType::Integer,
            role: SignalRole::Output,
        });
        assert!(matches!(
            p.validate(),
            Err(SignalError::UndefinedOutput { .. })
        ));
    }

    #[test]
    fn model_validate_checks_instances() {
        let mut model = ProcessModel::new("top");
        let mut top = Process::new("top");
        top.signals.push(SignalDecl {
            name: "t".into(),
            ty: ValueType::Event,
            role: SignalRole::Input,
        });
        top.signals.push(SignalDecl {
            name: "c".into(),
            ty: ValueType::Integer,
            role: SignalRole::Output,
        });
        top.equations.push(Equation::Instance {
            process: "counter".into(),
            label: "k1".into(),
            inputs: vec!["t".into()],
            outputs: vec!["c".into()],
        });
        model.add(top);
        // Missing callee.
        assert!(matches!(
            model.validate(),
            Err(SignalError::UnknownProcess(_))
        ));
        model.add(counter_process());
        model.validate().unwrap();
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut model = ProcessModel::new("top");
        let mut top = Process::new("top");
        top.signals.push(SignalDecl {
            name: "c".into(),
            ty: ValueType::Integer,
            role: SignalRole::Output,
        });
        top.equations.push(Equation::Instance {
            process: "counter".into(),
            label: "k1".into(),
            inputs: vec![],
            outputs: vec!["c".into()],
        });
        model.add(top);
        model.add(counter_process());
        assert!(matches!(
            model.validate(),
            Err(SignalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn flatten_inlines_instances() {
        let mut model = ProcessModel::new("top");
        let mut top = Process::new("top");
        top.signals.push(SignalDecl {
            name: "t".into(),
            ty: ValueType::Event,
            role: SignalRole::Input,
        });
        top.signals.push(SignalDecl {
            name: "c".into(),
            ty: ValueType::Integer,
            role: SignalRole::Output,
        });
        top.equations.push(Equation::Instance {
            process: "counter".into(),
            label: "k1".into(),
            inputs: vec!["t".into()],
            outputs: vec!["c".into()],
        });
        model.add(top);
        model.add(counter_process());
        let flat = model.flatten().unwrap();
        // Original interface kept, sub-process signals prefixed.
        assert!(flat.signal("t").is_some());
        assert!(flat.signal("c").is_some());
        assert!(flat.signal("k1_count").is_some());
        assert!(flat.signal("k1_tick").is_some());
        assert!(flat.equations.len() >= 4);
        flat.validate().unwrap();
    }

    #[test]
    fn total_equations_counts_all_processes() {
        let mut model = ProcessModel::new("counter");
        model.add(counter_process());
        assert_eq!(model.total_equations(), 2);
        assert_eq!(model.len(), 1);
        assert!(!model.is_empty());
    }
}
