//! The clock calculus: synchronisation classes, clock hierarchy and
//! determinism identification.
//!
//! The clock calculus is the heart of the Polychrony compilation chain: it
//! computes, from the equations of a process, which signals are synchronous
//! (share a clock), how the remaining clocks relate (sub-clock / super-clock),
//! which clocks are *master* clocks (not dominated by any other), and whether
//! the process is deterministic and endochronous (a single master clock that
//! can drive a sequential simulation — the "fastest clock" the paper says
//! users should not have to build by hand).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::error::SignalError;
use crate::expr::Expr;
use crate::process::{Equation, Process};

/// A synchronisation class: a set of signals proven to share the same clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockClass {
    /// Stable identifier of the class (index in the calculus).
    pub id: usize,
    /// Signals belonging to the class, sorted by name.
    pub signals: Vec<String>,
}

impl ClockClass {
    /// A readable label for the class: the first signal name.
    pub fn label(&self) -> &str {
        self.signals
            .first()
            .map(String::as_str)
            .unwrap_or("<empty>")
    }
}

/// Verdict of the determinism identification analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeterminismVerdict {
    /// Every signal has a single, conflict-free definition.
    Deterministic,
    /// Potential non-determinism was identified; each entry explains one
    /// reason (e.g. overlapping partial definitions that could not be proven
    /// exclusive).
    NonDeterministic(Vec<String>),
}

impl DeterminismVerdict {
    /// Returns `true` for [`DeterminismVerdict::Deterministic`].
    pub fn is_deterministic(&self) -> bool {
        matches!(self, DeterminismVerdict::Deterministic)
    }
}

/// Result of running the clock calculus on a process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockCalculus {
    process: String,
    classes: Vec<ClockClass>,
    class_of: BTreeMap<String, usize>,
    /// `(child, parent)` pairs: the child clock is a sub-clock of the parent.
    hierarchy: Vec<(usize, usize)>,
    /// Pairs of classes constrained to be mutually exclusive.
    exclusions: Vec<(usize, usize)>,
    verdict: DeterminismVerdict,
}

impl ClockCalculus {
    /// Runs the clock calculus on `process`.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::MultipleDefinitions`] if a signal has two total
    /// definitions, or a validation error if the process is ill-formed.
    pub fn analyze(process: &Process) -> Result<Self, SignalError> {
        process.validate()?;
        let names: Vec<String> = process.signals.iter().map(|d| d.name.clone()).collect();
        let index: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut uf = UnionFind::new(names.len());

        // Pass 1: detect duplicate total definitions.
        let mut total_defs: BTreeMap<&str, usize> = BTreeMap::new();
        for eq in &process.equations {
            if let Equation::Definition { target, .. } = eq {
                let count = total_defs.entry(target.as_str()).or_insert(0);
                *count += 1;
                if *count > 1 {
                    return Err(SignalError::MultipleDefinitions {
                        process: process.name.clone(),
                        signal: target.clone(),
                    });
                }
            }
        }

        // Pass 2: synchronisation classes from definitions and constraints.
        for eq in &process.equations {
            match eq {
                Equation::Definition { target, expr } => {
                    if let Some(peer) = synchronous_peer(expr) {
                        if let (Some(&a), Some(&b)) =
                            (index.get(target.as_str()), index.get(peer.as_str()))
                        {
                            uf.union(a, b);
                        }
                    }
                }
                Equation::ClockConstraint { signals } => {
                    let ids: Vec<usize> = signals
                        .iter()
                        .filter_map(|s| index.get(s.as_str()).copied())
                        .collect();
                    for pair in ids.windows(2) {
                        uf.union(pair[0], pair[1]);
                    }
                }
                _ => {}
            }
        }

        // Build classes.
        let mut roots: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (i, name) in names.iter().enumerate() {
            roots.entry(uf.find(i)).or_default().push(name.clone());
        }
        let mut classes = Vec::new();
        let mut class_of = BTreeMap::new();
        let mut root_to_class: BTreeMap<usize, usize> = BTreeMap::new();
        for (class_id, (root, mut members)) in roots.into_iter().enumerate() {
            members.sort();
            for m in &members {
                class_of.insert(m.clone(), class_id);
            }
            root_to_class.insert(root, class_id);
            classes.push(ClockClass {
                id: class_id,
                signals: members,
            });
        }

        // Pass 3: hierarchy edges (child is a sub-clock of parent) and
        // exclusions.
        let class_idx = |name: &str| -> Option<usize> { class_of.get(name).copied() };
        let mut hierarchy: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut exclusions: BTreeSet<(usize, usize)> = BTreeSet::new();
        for eq in &process.equations {
            match eq {
                Equation::Definition { target, expr } => {
                    let Some(t) = class_idx(target) else { continue };
                    collect_hierarchy(expr, t, &class_idx, &mut hierarchy);
                }
                Equation::PartialDefinition { target, expr } => {
                    let Some(t) = class_idx(target) else { continue };
                    // The clock of the partial contribution is a sub-clock of
                    // the target's clock.
                    for dep in expr.referenced_signals() {
                        if let Some(d) = class_idx(&dep) {
                            if d != t {
                                hierarchy.insert((d, t));
                            }
                        }
                    }
                    collect_hierarchy(expr, t, &class_idx, &mut hierarchy);
                }
                Equation::ClockExclusion { signals } => {
                    let ids: Vec<usize> = signals.iter().filter_map(|s| class_idx(s)).collect();
                    for (i, &a) in ids.iter().enumerate() {
                        for &b in &ids[i + 1..] {
                            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                            if lo != hi {
                                exclusions.insert((lo, hi));
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // Pass 4: determinism identification.
        let verdict = determinism_verdict(process, &class_of, &exclusions);

        Ok(Self {
            process: process.name.clone(),
            classes,
            class_of,
            hierarchy: hierarchy.into_iter().collect(),
            exclusions: exclusions.into_iter().collect(),
            verdict,
        })
    }

    /// Name of the analysed process.
    pub fn process_name(&self) -> &str {
        &self.process
    }

    /// Number of distinct clocks (synchronisation classes) — the metric the
    /// paper's scalability claim is about ("several thousand clocks can be
    /// handled by the clock calculus").
    pub fn clock_count(&self) -> usize {
        self.classes.len()
    }

    /// All synchronisation classes.
    pub fn classes(&self) -> &[ClockClass] {
        &self.classes
    }

    /// The class containing `signal`, if any.
    pub fn class_of(&self, signal: &str) -> Option<&ClockClass> {
        self.class_of.get(signal).map(|&id| &self.classes[id])
    }

    /// Returns `true` when the two signals were proven synchronous.
    pub fn are_synchronous(&self, a: &str, b: &str) -> bool {
        match (self.class_of.get(a), self.class_of.get(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Sub-clock edges `(child, parent)` between class ids.
    pub fn hierarchy(&self) -> &[(usize, usize)] {
        &self.hierarchy
    }

    /// Returns `true` when class `child` was proven to be a sub-clock of
    /// class `parent` (directly or transitively).
    pub fn is_subclock(&self, child: usize, parent: usize) -> bool {
        if child == parent {
            return true;
        }
        let mut stack = vec![child];
        let mut seen = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for &(lo, hi) in &self.hierarchy {
                if lo == c {
                    if hi == parent {
                        return true;
                    }
                    stack.push(hi);
                }
            }
        }
        false
    }

    /// The master clocks: classes that are not a sub-clock of any other
    /// class. A process with a single master clock is *endochronous*: the
    /// fastest simulation clock can be synthesised automatically.
    pub fn master_clocks(&self) -> Vec<&ClockClass> {
        let children: BTreeSet<usize> = self.hierarchy.iter().map(|&(c, _)| c).collect();
        self.classes
            .iter()
            .filter(|c| !children.contains(&c.id))
            .collect()
    }

    /// Returns `true` when the process has a single master clock.
    pub fn is_endochronous(&self) -> bool {
        self.master_clocks().len() == 1
    }

    /// Pairs of classes constrained to be mutually exclusive.
    pub fn exclusions(&self) -> &[(usize, usize)] {
        &self.exclusions
    }

    /// The determinism identification verdict.
    pub fn determinism(&self) -> &DeterminismVerdict {
        &self.verdict
    }

    /// Depth of the clock hierarchy (longest child→parent chain), a proxy for
    /// the "clock tree depth" reported by Polychrony.
    pub fn hierarchy_depth(&self) -> usize {
        fn depth_of(
            class: usize,
            hierarchy: &[(usize, usize)],
            memo: &mut BTreeMap<usize, usize>,
            guard: &mut BTreeSet<usize>,
        ) -> usize {
            if let Some(&d) = memo.get(&class) {
                return d;
            }
            if !guard.insert(class) {
                return 0; // cycle guard
            }
            let d = hierarchy
                .iter()
                .filter(|&&(c, _)| c == class)
                .map(|&(_, p)| 1 + depth_of(p, hierarchy, memo, guard))
                .max()
                .unwrap_or(0);
            guard.remove(&class);
            memo.insert(class, d);
            d
        }
        let mut memo = BTreeMap::new();
        let mut guard = BTreeSet::new();
        self.classes
            .iter()
            .map(|c| depth_of(c.id, &self.hierarchy, &mut memo, &mut guard))
            .max()
            .unwrap_or(0)
    }
}

/// For a defining expression whose clock is *equal* to one of its operands'
/// clocks (stepwise functions, delay), returns that operand signal, so the
/// target can be unified with it.
fn synchronous_peer(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Var(name) => Some(name.clone()),
        Expr::Unary(_, e) | Expr::Delay(e, _) => synchronous_peer(e),
        Expr::Binary(_, a, b) => synchronous_peer(a).or_else(|| synchronous_peer(b)),
        Expr::ClockOf(e) => synchronous_peer(e),
        // when / default / cell / clock_when change the clock.
        _ => None,
    }
}

/// Records sub-clock relations implied by the structure of `expr`, whose
/// overall clock belongs to class `target`.
fn collect_hierarchy(
    expr: &Expr,
    target: usize,
    class_idx: &dyn Fn(&str) -> Option<usize>,
    hierarchy: &mut BTreeSet<(usize, usize)>,
) {
    match expr {
        Expr::When(e, b) => {
            // target ⊆ clock(e) and target ⊆ clock(b)
            for dep in e
                .referenced_signals()
                .into_iter()
                .chain(b.referenced_signals())
            {
                if let Some(d) = class_idx(&dep) {
                    if d != target {
                        hierarchy.insert((target, d));
                    }
                }
            }
        }
        Expr::Default(u, v) => {
            // clock(u) ⊆ target and clock(v) ⊆ target
            for dep in u.referenced_signals() {
                if let Some(d) = class_idx(&dep) {
                    if d != target {
                        hierarchy.insert((d, target));
                    }
                }
            }
            for dep in v.referenced_signals() {
                if let Some(d) = class_idx(&dep) {
                    if d != target {
                        hierarchy.insert((d, target));
                    }
                }
            }
            collect_hierarchy(u, target, class_idx, hierarchy);
            collect_hierarchy(v, target, class_idx, hierarchy);
        }
        Expr::Cell(i, b, _) => {
            // clock(i) ⊆ target ⊆ clock(i) ∪ [b]
            for dep in i.referenced_signals() {
                if let Some(d) = class_idx(&dep) {
                    if d != target {
                        hierarchy.insert((d, target));
                    }
                }
            }
            collect_hierarchy(b, target, class_idx, hierarchy);
        }
        Expr::ClockWhen(b) => {
            for dep in b.referenced_signals() {
                if let Some(d) = class_idx(&dep) {
                    if d != target {
                        hierarchy.insert((target, d));
                    }
                }
            }
        }
        Expr::Unary(_, e) | Expr::Delay(e, _) | Expr::ClockOf(e) => {
            collect_hierarchy(e, target, class_idx, hierarchy)
        }
        Expr::Binary(_, a, b) => {
            collect_hierarchy(a, target, class_idx, hierarchy);
            collect_hierarchy(b, target, class_idx, hierarchy);
        }
        Expr::Var(_) | Expr::Const(_) => {}
    }
}

/// Determinism identification: overlapping partial definitions must be proven
/// pairwise exclusive, either syntactically (complementary `when` guards) or
/// through a declared clock exclusion.
fn determinism_verdict(
    process: &Process,
    class_of: &BTreeMap<String, usize>,
    exclusions: &BTreeSet<(usize, usize)>,
) -> DeterminismVerdict {
    let mut reasons = Vec::new();
    let mut partials: BTreeMap<&str, Vec<&Expr>> = BTreeMap::new();
    let mut totals: BTreeSet<&str> = BTreeSet::new();
    for eq in &process.equations {
        match eq {
            Equation::PartialDefinition { target, expr } => {
                partials.entry(target.as_str()).or_default().push(expr);
            }
            Equation::Definition { target, .. } => {
                totals.insert(target.as_str());
            }
            _ => {}
        }
    }
    for (target, exprs) in &partials {
        if totals.contains(target) {
            reasons.push(format!(
                "signal `{target}` has both a total and a partial definition"
            ));
        }
        for (i, a) in exprs.iter().enumerate() {
            for b in &exprs[i + 1..] {
                if !provably_exclusive(a, b, class_of, exclusions) {
                    reasons.push(format!(
                        "partial definitions of `{target}` may overlap: `{a}` vs `{b}`"
                    ));
                }
            }
        }
    }
    if reasons.is_empty() {
        DeterminismVerdict::Deterministic
    } else {
        DeterminismVerdict::NonDeterministic(reasons)
    }
}

/// Conservative syntactic proof that two partial contributions can never be
/// active at the same instant.
fn provably_exclusive(
    a: &Expr,
    b: &Expr,
    class_of: &BTreeMap<String, usize>,
    exclusions: &BTreeSet<(usize, usize)>,
) -> bool {
    // Complementary guards: `e when c` vs `f when not c` (either order).
    if let (Expr::When(_, ga), Expr::When(_, gb)) = (a, b) {
        if complementary(ga, gb) {
            return true;
        }
        // Guards sampled on clocks declared mutually exclusive.
        if let (Some(ca), Some(cb)) = (guard_class(ga, class_of), guard_class(gb, class_of)) {
            let key = if ca < cb { (ca, cb) } else { (cb, ca) };
            if ca != cb && exclusions.contains(&key) {
                return true;
            }
        }
    }
    // Contributions whose root signals live in mutually exclusive classes.
    let ca = expr_class(a, class_of);
    let cb = expr_class(b, class_of);
    if let (Some(x), Some(y)) = (ca, cb) {
        let key = if x < y { (x, y) } else { (y, x) };
        if x != y && exclusions.contains(&key) {
            return true;
        }
    }
    false
}

fn complementary(a: &Expr, b: &Expr) -> bool {
    matches!((a, b), (Expr::Unary(crate::expr::UnOp::Not, inner), other)
        | (other, Expr::Unary(crate::expr::UnOp::Not, inner)) if inner.as_ref() == other)
}

fn guard_class(guard: &Expr, class_of: &BTreeMap<String, usize>) -> Option<usize> {
    match guard {
        Expr::Var(name) => class_of.get(name).copied(),
        _ => None,
    }
}

fn expr_class(expr: &Expr, class_of: &BTreeMap<String, usize>) -> Option<usize> {
    let refs = expr.referenced_signals();
    if refs.len() == 1 {
        class_of.get(&refs[0]).copied()
    } else {
        None
    }
}

/// A small union-find over signal indices.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::value::{Value, ValueType};

    fn counter() -> Process {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        b.build().unwrap()
    }

    #[test]
    fn counter_is_single_clocked_and_deterministic() {
        let cc = ClockCalculus::analyze(&counter()).unwrap();
        assert_eq!(cc.clock_count(), 1);
        assert!(cc.are_synchronous("tick", "count"));
        assert!(cc.is_endochronous());
        assert!(cc.determinism().is_deterministic());
        assert_eq!(cc.hierarchy_depth(), 0);
        assert_eq!(cc.process_name(), "counter");
    }

    #[test]
    fn sampling_creates_subclock() {
        let mut b = ProcessBuilder::new("sampler");
        b.input("x", ValueType::Integer);
        b.input("c", ValueType::Boolean);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::when(Expr::var("x"), Expr::var("c")));
        let p = b.build().unwrap();
        let cc = ClockCalculus::analyze(&p).unwrap();
        assert_eq!(cc.clock_count(), 3);
        let y = cc.class_of("y").unwrap().id;
        let x = cc.class_of("x").unwrap().id;
        let c = cc.class_of("c").unwrap().id;
        assert!(cc.is_subclock(y, x));
        assert!(cc.is_subclock(y, c));
        assert!(!cc.is_subclock(x, y));
        // x and c are unrelated master clocks: the process is polychronous.
        assert_eq!(cc.master_clocks().len(), 2);
        assert!(!cc.is_endochronous());
    }

    #[test]
    fn merge_creates_superclock() {
        let mut b = ProcessBuilder::new("merge");
        b.input("u", ValueType::Integer);
        b.input("v", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::default(Expr::var("u"), Expr::var("v")));
        let p = b.build().unwrap();
        let cc = ClockCalculus::analyze(&p).unwrap();
        let y = cc.class_of("y").unwrap().id;
        let u = cc.class_of("u").unwrap().id;
        let v = cc.class_of("v").unwrap().id;
        assert!(cc.is_subclock(u, y));
        assert!(cc.is_subclock(v, y));
        // y dominates everything: single master clock.
        assert_eq!(cc.master_clocks().len(), 1);
        assert_eq!(cc.master_clocks()[0].id, y);
        assert_eq!(cc.hierarchy_depth(), 1);
    }

    #[test]
    fn duplicate_total_definitions_rejected() {
        let mut b = ProcessBuilder::new("dup");
        b.input("x", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::var("x"));
        b.define("y", Expr::add(Expr::var("x"), Expr::int(1)));
        let p = b.build().unwrap();
        assert!(matches!(
            ClockCalculus::analyze(&p),
            Err(SignalError::MultipleDefinitions { .. })
        ));
    }

    #[test]
    fn overlapping_partials_flagged() {
        let mut b = ProcessBuilder::new("shared");
        b.input("a", ValueType::Integer);
        b.input("b", ValueType::Integer);
        b.output("x", ValueType::Integer);
        b.define_partial("x", Expr::var("a"));
        b.define_partial("x", Expr::var("b"));
        let p = b.build().unwrap();
        let cc = ClockCalculus::analyze(&p).unwrap();
        assert!(!cc.determinism().is_deterministic());
    }

    #[test]
    fn exclusive_partials_by_declared_exclusion_are_deterministic() {
        let mut b = ProcessBuilder::new("shared");
        b.input("a", ValueType::Integer);
        b.input("b", ValueType::Integer);
        b.output("x", ValueType::Integer);
        b.define_partial("x", Expr::var("a"));
        b.define_partial("x", Expr::var("b"));
        b.exclude(&["a", "b"]);
        let p = b.build().unwrap();
        let cc = ClockCalculus::analyze(&p).unwrap();
        assert!(cc.determinism().is_deterministic());
        assert_eq!(cc.exclusions().len(), 1);
    }

    #[test]
    fn complementary_guards_are_deterministic() {
        let mut b = ProcessBuilder::new("guarded");
        b.input("a", ValueType::Integer);
        b.input("c", ValueType::Boolean);
        b.output("x", ValueType::Integer);
        b.define_partial("x", Expr::when(Expr::var("a"), Expr::var("c")));
        b.define_partial("x", Expr::when(Expr::var("a"), Expr::not(Expr::var("c"))));
        let p = b.build().unwrap();
        let cc = ClockCalculus::analyze(&p).unwrap();
        assert!(cc.determinism().is_deterministic());
    }

    #[test]
    fn mixed_total_and_partial_flagged() {
        let mut b = ProcessBuilder::new("mixed");
        b.input("a", ValueType::Integer);
        b.output("x", ValueType::Integer);
        b.define("x", Expr::var("a"));
        b.define_partial("x", Expr::var("a"));
        let p = b.build().unwrap();
        let cc = ClockCalculus::analyze(&p).unwrap();
        assert!(!cc.determinism().is_deterministic());
    }

    #[test]
    fn class_lookup_and_label() {
        let cc = ClockCalculus::analyze(&counter()).unwrap();
        let class = cc.class_of("count").unwrap();
        assert_eq!(class.signals, vec!["count".to_string(), "tick".to_string()]);
        assert_eq!(class.label(), "count");
        assert!(cc.class_of("nope").is_none());
    }
}
