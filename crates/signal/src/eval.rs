//! A denotational evaluator for flat SIGNAL processes over multi-clock
//! traces.
//!
//! The evaluator executes the kernel operators with their polychronous
//! semantics (Section III of the paper): at each logical instant it resolves
//! the presence and value of every signal from the provided input step, using
//! a fixpoint over the equations, then commits the state of `delay` and
//! `cell` operators. It is used to validate the AADL-to-SIGNAL translation
//! (input freezing, port FIFOs, shared data) and as the kernel of the
//! simulator crate.

use std::collections::BTreeMap;

use crate::error::SignalError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::process::{Equation, Process};
use crate::trace::{Trace, TraceStep};
use crate::value::Value;

/// Resolution of a signal (or sub-expression) at an instant.
#[derive(Debug, Clone, PartialEq)]
enum Res {
    /// Not yet determined.
    Unknown,
    /// Known absent.
    Absent,
    /// Known present, value not yet determined (e.g. propagated through a
    /// clock constraint before the defining equation could be computed).
    PresentUnknown,
    /// Known present with a value.
    Present(Value),
    /// A constant: present at whatever clock the context requires.
    Any(Value),
}

impl Res {
    fn known(&self) -> bool {
        !matches!(self, Res::Unknown)
    }

    fn is_present(&self) -> bool {
        matches!(self, Res::Present(_) | Res::Any(_) | Res::PresentUnknown)
    }

    fn value(&self) -> Option<&Value> {
        match self {
            Res::Present(v) | Res::Any(v) => Some(v),
            _ => None,
        }
    }
}

/// State of one stateful operator (`delay` or `cell`) in the process body.
#[derive(Debug, Clone)]
struct OperatorState {
    current: Value,
    pending: Option<Value>,
}

/// Evaluator of a flat [`Process`] (no sub-process instances; use
/// [`crate::process::ProcessModel::flatten`] first).
///
/// ```
/// use signal_moc::builder::ProcessBuilder;
/// use signal_moc::eval::Evaluator;
/// use signal_moc::expr::Expr;
/// use signal_moc::trace::{Trace, TraceStep};
/// use signal_moc::value::{Value, ValueType};
///
/// let mut b = ProcessBuilder::new("counter");
/// b.input("tick", ValueType::Event);
/// b.output("count", ValueType::Integer);
/// b.define("count", Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)));
/// b.synchronize(&["count", "tick"]);
/// let process = b.build()?;
///
/// let mut inputs = Trace::new();
/// for t in 0..3 { inputs.set(t, "tick", Value::Event); }
/// let mut eval = Evaluator::new(&process)?;
/// let out = eval.run(&inputs)?;
/// assert_eq!(out.flow_of("count"), vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
/// # Ok::<(), signal_moc::SignalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    process: Process,
    states: Vec<OperatorState>,
    max_iterations: usize,
}

impl Evaluator {
    /// Prepares an evaluator for `process`.
    ///
    /// # Errors
    ///
    /// Returns an error if the process contains sub-process instances (it
    /// must be flattened first) or fails validation.
    pub fn new(process: &Process) -> Result<Self, SignalError> {
        process.validate()?;
        if process
            .equations
            .iter()
            .any(|eq| matches!(eq, Equation::Instance { .. }))
        {
            return Err(SignalError::UnknownProcess(format!(
                "process `{}` must be flattened before evaluation",
                process.name
            )));
        }
        let mut states = Vec::new();
        for eq in &process.equations {
            if let Equation::Definition { expr, .. } | Equation::PartialDefinition { expr, .. } = eq
            {
                collect_states(expr, &mut states);
            }
        }
        Ok(Self {
            process: process.clone(),
            states,
            max_iterations: 64,
        })
    }

    /// The process being evaluated.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Number of stateful (`delay`/`cell`) operators in the process body —
    /// the length of the memory vector returned by [`Evaluator::memory`].
    pub fn memory_len(&self) -> usize {
        self.states.len()
    }

    /// Snapshot of the current memory of every `delay`/`cell` operator, in
    /// the pre-order of the equations. Together with an input prefix this is
    /// the complete execution state of a flat process, which is what an
    /// explicit-state model checker needs to hash and restore.
    pub fn memory(&self) -> Vec<Value> {
        self.states.iter().map(|s| s.current.clone()).collect()
    }

    /// Restores a memory snapshot previously taken with
    /// [`Evaluator::memory`] (pending half-steps are discarded).
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::TypeError`] when `memory` does not have exactly
    /// [`Evaluator::memory_len`] entries.
    pub fn restore_memory(&mut self, memory: &[Value]) -> Result<(), SignalError> {
        if memory.len() != self.states.len() {
            return Err(SignalError::TypeError {
                detail: format!(
                    "memory snapshot has {} entries, process `{}` has {} stateful operators",
                    memory.len(),
                    self.process.name,
                    self.states.len()
                ),
            });
        }
        for (st, v) in self.states.iter_mut().zip(memory) {
            st.current = v.clone();
            st.pending = None;
        }
        Ok(())
    }

    /// Resets all `delay`/`cell` states to their initial values.
    pub fn reset(&mut self) {
        let mut fresh = Vec::new();
        for eq in &self.process.equations {
            if let Equation::Definition { expr, .. } | Equation::PartialDefinition { expr, .. } = eq
            {
                collect_states(expr, &mut fresh);
            }
        }
        self.states = fresh;
    }

    /// Executes the process for every instant of `inputs`, returning the
    /// complete trace (inputs, locals and outputs).
    ///
    /// # Errors
    ///
    /// Returns a [`SignalError`] if a synchronisation constraint is violated,
    /// a stepwise operator is applied to non-synchronous operands, a signal
    /// receives two different values at the same instant, or the process is
    /// not executable from the provided inputs.
    pub fn run(&mut self, inputs: &Trace) -> Result<Trace, SignalError> {
        let mut out = Trace::new();
        for t in 0..inputs.len() {
            let step = inputs.step(t).cloned().unwrap_or_default();
            let resolved = self.step(t, &step)?;
            out.push(resolved);
        }
        Ok(out)
    }

    /// Executes a single instant given the input step, committing operator
    /// states, and returns the full resolved step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::run`].
    pub fn step(&mut self, instant: usize, input: &TraceStep) -> Result<TraceStep, SignalError> {
        let mut env: BTreeMap<String, Res> = BTreeMap::new();
        // Inputs are fully specified by the caller: absent unless given.
        for decl in self.process.inputs() {
            match input.get(&decl.name) {
                Some(v) => env.insert(decl.name.clone(), Res::Present(v.clone())),
                None => env.insert(decl.name.clone(), Res::Absent),
            };
        }
        for decl in self.process.signals.iter() {
            env.entry(decl.name.clone()).or_insert(Res::Unknown);
        }

        // Fixpoint over the equations.
        let mut changed = true;
        let mut iterations = 0;
        while changed {
            changed = false;
            iterations += 1;
            if iterations > self.max_iterations {
                break;
            }
            let mut cursor = 0usize;
            for eq in &self.process.equations {
                match eq {
                    Equation::Definition { target, expr } => {
                        let res = self.eval(expr, &env, &mut cursor, instant)?;
                        changed |= merge_total(&mut env, target, res, instant)?;
                    }
                    Equation::PartialDefinition { target, expr } => {
                        let res = self.eval(expr, &env, &mut cursor, instant)?;
                        changed |= merge_partial(&mut env, target, res, instant)?;
                    }
                    Equation::ClockConstraint { signals } => {
                        // Propagate presence/absence across a synchronisation
                        // class: if any member is decided, undecided members
                        // follow.
                        let any_present = signals
                            .iter()
                            .any(|s| env.get(s).map(Res::is_present).unwrap_or(false));
                        let any_absent = signals
                            .iter()
                            .any(|s| matches!(env.get(s), Some(Res::Absent)));
                        if any_present && any_absent {
                            return Err(SignalError::SynchronizationViolation {
                                instant,
                                detail: format!(
                                    "signals {} must be synchronous",
                                    signals.join(" ^= ")
                                ),
                            });
                        }
                        if any_present || any_absent {
                            for s in signals {
                                if matches!(env.get(s), Some(Res::Unknown) | None) {
                                    let fill = if any_present {
                                        Res::PresentUnknown
                                    } else {
                                        Res::Absent
                                    };
                                    env.insert(s.clone(), fill);
                                    changed = true;
                                }
                            }
                        }
                    }
                    Equation::ClockExclusion { .. } => {}
                    Equation::Instance { .. } => unreachable!("rejected in new()"),
                }
            }
        }

        // Signals known present but without a computed value: pure events
        // carry no value, so presence is enough; anything else is stuck.
        let mut stuck = Vec::new();
        let decls: Vec<(String, crate::value::ValueType)> = self
            .process
            .signals
            .iter()
            .map(|d| (d.name.clone(), d.ty))
            .collect();
        for (name, ty) in &decls {
            if matches!(env.get(name), Some(Res::PresentUnknown)) {
                if *ty == crate::value::ValueType::Event {
                    env.insert(name.clone(), Res::Present(Value::Event));
                } else {
                    stuck.push(name.clone());
                }
            }
        }
        if !stuck.is_empty() {
            return Err(SignalError::NotExecutable {
                instant,
                unresolved: stuck,
            });
        }

        // Default-to-absent completion: any still-unknown signal is assumed
        // absent, then all equations are re-checked for consistency.
        let unresolved: Vec<String> = env
            .iter()
            .filter(|(_, r)| !r.known())
            .map(|(n, _)| n.clone())
            .collect();
        for name in &unresolved {
            env.insert(name.clone(), Res::Absent);
        }
        self.verify(&env, instant)?;
        self.check_constraints(&env, instant)?;
        self.commit(&env, instant)?;

        let mut step = TraceStep::new();
        for (name, res) in &env {
            if let Res::Present(v) | Res::Any(v) = res {
                step.set(name.clone(), v.clone());
            }
        }
        Ok(step)
    }

    /// Re-evaluates every definition under the completed environment and
    /// checks consistency.
    fn verify(&self, env: &BTreeMap<String, Res>, instant: usize) -> Result<(), SignalError> {
        let mut cursor = 0usize;
        // Track, per partially-defined signal, whether some partial fired.
        let mut partial_fired: BTreeMap<String, bool> = BTreeMap::new();
        let mut partial_targets: Vec<String> = Vec::new();
        for eq in &self.process.equations {
            match eq {
                Equation::Definition { target, expr } => {
                    let res = self.eval(expr, env, &mut cursor, instant)?;
                    let current = env.get(target).cloned().unwrap_or(Res::Unknown);
                    if !consistent(&current, &res) {
                        return Err(SignalError::NotExecutable {
                            instant,
                            unresolved: vec![target.clone()],
                        });
                    }
                }
                Equation::PartialDefinition { target, expr } => {
                    partial_targets.push(target.clone());
                    let res = self.eval(expr, env, &mut cursor, instant)?;
                    let entry = partial_fired.entry(target.clone()).or_insert(false);
                    match res {
                        Res::Present(ref v) | Res::Any(ref v) => {
                            *entry = true;
                            let current = env.get(target).cloned().unwrap_or(Res::Unknown);
                            if let Some(cv) = current.value() {
                                if cv != v {
                                    return Err(SignalError::MultipleDefinitions {
                                        process: self.process.name.clone(),
                                        signal: target.clone(),
                                    });
                                }
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        // A partially-defined signal that is present must have at least one
        // firing partial definition or be an input.
        for target in partial_targets {
            let is_input = self.process.inputs().any(|d| d.name == target);
            if is_input {
                continue;
            }
            let present = matches!(env.get(&target), Some(Res::Present(_)) | Some(Res::Any(_)));
            let has_total = self
                .process
                .equations
                .iter()
                .any(|eq| matches!(eq, Equation::Definition { target: t, .. } if t == &target));
            if present && !has_total && !partial_fired.get(&target).copied().unwrap_or(false) {
                return Err(SignalError::NotExecutable {
                    instant,
                    unresolved: vec![target],
                });
            }
        }
        Ok(())
    }

    fn check_constraints(
        &self,
        env: &BTreeMap<String, Res>,
        instant: usize,
    ) -> Result<(), SignalError> {
        for eq in &self.process.equations {
            match eq {
                Equation::ClockConstraint { signals } => {
                    let mut present: Option<bool> = None;
                    for s in signals {
                        let p = matches!(env.get(s), Some(Res::Present(_)) | Some(Res::Any(_)));
                        match present {
                            None => present = Some(p),
                            Some(prev) if prev != p => {
                                return Err(SignalError::SynchronizationViolation {
                                    instant,
                                    detail: format!(
                                        "signals {} must be synchronous",
                                        signals.join(" ^= ")
                                    ),
                                });
                            }
                            _ => {}
                        }
                    }
                }
                Equation::ClockExclusion { signals } => {
                    let count = signals
                        .iter()
                        .filter(|s| {
                            matches!(
                                env.get(s.as_str()),
                                Some(Res::Present(_)) | Some(Res::Any(_))
                            )
                        })
                        .count();
                    if count > 1 {
                        return Err(SignalError::SynchronizationViolation {
                            instant,
                            detail: format!(
                                "signals {} must be mutually exclusive",
                                signals.join(" # ")
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Commits the pending state of every `delay`/`cell` operator.
    fn commit(&mut self, env: &BTreeMap<String, Res>, instant: usize) -> Result<(), SignalError> {
        // Recompute pending updates under the final environment, then apply.
        // The equation list is moved out (not deep-cloned — this runs once
        // per instant, the model checker's hottest path) so that
        // `record_pending` can borrow `self` mutably, and is restored before
        // returning even on error.
        let mut cursor = 0usize;
        let equations = std::mem::take(&mut self.process.equations);
        for st in &mut self.states {
            st.pending = None;
        }
        let mut result = Ok(());
        for eq in &equations {
            if let Equation::Definition { expr, .. } | Equation::PartialDefinition { expr, .. } = eq
            {
                if let Err(e) = self.record_pending(expr, env, &mut cursor, instant) {
                    result = Err(e);
                    break;
                }
            }
        }
        self.process.equations = equations;
        result?;
        for st in &mut self.states {
            if let Some(v) = st.pending.take() {
                st.current = v;
            }
        }
        Ok(())
    }

    fn record_pending(
        &mut self,
        expr: &Expr,
        env: &BTreeMap<String, Res>,
        cursor: &mut usize,
        instant: usize,
    ) -> Result<Res, SignalError> {
        match expr {
            Expr::Delay(e, _) => {
                let idx = *cursor;
                *cursor += 1;
                let inner = self.record_pending(e, env, cursor, instant)?;
                let res = match &inner {
                    Res::Present(_) | Res::Any(_) | Res::PresentUnknown => {
                        Res::Present(self.states[idx].current.clone())
                    }
                    Res::Absent => Res::Absent,
                    Res::Unknown => Res::Unknown,
                };
                if let Some(v) = inner.value() {
                    self.states[idx].pending = Some(v.clone());
                }
                Ok(res)
            }
            Expr::Cell(i, b, _) => {
                let idx = *cursor;
                *cursor += 1;
                let vi = self.record_pending(i, env, cursor, instant)?;
                let vb = self.record_pending(b, env, cursor, instant)?;
                if let Some(v) = vi.value() {
                    self.states[idx].pending = Some(v.clone());
                }
                let res = cell_result(&vi, &vb, &self.states[idx].current);
                Ok(res)
            }
            Expr::Var(name) => Ok(env.get(name).cloned().unwrap_or(Res::Unknown)),
            Expr::Const(v) => Ok(Res::Any(v.clone())),
            Expr::Unary(op, e) => {
                let v = self.record_pending(e, env, cursor, instant)?;
                apply_unary(*op, &v)
            }
            Expr::Binary(op, a, b) => {
                let va = self.record_pending(a, env, cursor, instant)?;
                let vb = self.record_pending(b, env, cursor, instant)?;
                apply_binary(*op, &va, &vb, instant)
            }
            Expr::When(e, b) => {
                let ve = self.record_pending(e, env, cursor, instant)?;
                let vb = self.record_pending(b, env, cursor, instant)?;
                Ok(when_result(&ve, &vb))
            }
            Expr::Default(u, v) => {
                let vu = self.record_pending(u, env, cursor, instant)?;
                let vv = self.record_pending(v, env, cursor, instant)?;
                Ok(default_result(&vu, &vv))
            }
            Expr::ClockOf(e) => {
                let v = self.record_pending(e, env, cursor, instant)?;
                Ok(clock_of_result(&v))
            }
            Expr::ClockWhen(b) => {
                let v = self.record_pending(b, env, cursor, instant)?;
                Ok(clock_when_result(&v))
            }
        }
    }

    /// Evaluates an expression under the current (possibly partial)
    /// environment. `cursor` walks the stateful-operator table in the same
    /// pre-order as [`collect_states`].
    fn eval(
        &self,
        expr: &Expr,
        env: &BTreeMap<String, Res>,
        cursor: &mut usize,
        instant: usize,
    ) -> Result<Res, SignalError> {
        match expr {
            Expr::Var(name) => Ok(env.get(name).cloned().unwrap_or(Res::Unknown)),
            Expr::Const(v) => Ok(Res::Any(v.clone())),
            Expr::Unary(op, e) => {
                let v = self.eval(e, env, cursor, instant)?;
                apply_unary(*op, &v)
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, env, cursor, instant)?;
                let vb = self.eval(b, env, cursor, instant)?;
                apply_binary(*op, &va, &vb, instant)
            }
            Expr::Delay(e, _) => {
                let idx = *cursor;
                *cursor += 1;
                let inner = self.eval(e, env, cursor, instant)?;
                Ok(match inner {
                    Res::Present(_) | Res::Any(_) | Res::PresentUnknown => {
                        Res::Present(self.states[idx].current.clone())
                    }
                    Res::Absent => Res::Absent,
                    Res::Unknown => Res::Unknown,
                })
            }
            Expr::When(e, b) => {
                let ve = self.eval(e, env, cursor, instant)?;
                let vb = self.eval(b, env, cursor, instant)?;
                Ok(when_result(&ve, &vb))
            }
            Expr::Default(u, v) => {
                let vu = self.eval(u, env, cursor, instant)?;
                let vv = self.eval(v, env, cursor, instant)?;
                Ok(default_result(&vu, &vv))
            }
            Expr::Cell(i, b, _) => {
                let idx = *cursor;
                *cursor += 1;
                let vi = self.eval(i, env, cursor, instant)?;
                let vb = self.eval(b, env, cursor, instant)?;
                Ok(cell_result(&vi, &vb, &self.states[idx].current))
            }
            Expr::ClockOf(e) => {
                let v = self.eval(e, env, cursor, instant)?;
                Ok(clock_of_result(&v))
            }
            Expr::ClockWhen(b) => {
                let v = self.eval(b, env, cursor, instant)?;
                Ok(clock_when_result(&v))
            }
        }
    }
}

/// Pre-order collection of the initial states of `delay`/`cell` operators.
fn collect_states(expr: &Expr, states: &mut Vec<OperatorState>) {
    match expr {
        Expr::Delay(e, init) => {
            states.push(OperatorState {
                current: init.clone(),
                pending: None,
            });
            collect_states(e, states);
        }
        Expr::Cell(i, b, init) => {
            states.push(OperatorState {
                current: init.clone(),
                pending: None,
            });
            collect_states(i, states);
            collect_states(b, states);
        }
        Expr::Unary(_, e) | Expr::ClockOf(e) | Expr::ClockWhen(e) => collect_states(e, states),
        Expr::Binary(_, a, b) | Expr::When(a, b) | Expr::Default(a, b) => {
            collect_states(a, states);
            collect_states(b, states);
        }
        Expr::Var(_) | Expr::Const(_) => {}
    }
}

fn consistent(current: &Res, computed: &Res) -> bool {
    match (current, computed) {
        (_, Res::Unknown) | (Res::Unknown, _) => true,
        (_, Res::PresentUnknown) => current.is_present() || matches!(current, Res::Unknown),
        (Res::PresentUnknown, _) => computed.is_present(),
        (Res::Absent, Res::Absent) => true,
        // A constant expression is satisfied by an absent target (the
        // constant takes the clock of the target).
        (Res::Absent, Res::Any(_)) => true,
        (Res::Present(a) | Res::Any(a), Res::Present(b) | Res::Any(b)) => a == b,
        (Res::Present(_), Res::Absent) | (Res::Absent, Res::Present(_)) => false,
        (Res::Any(_), Res::Absent) => false,
    }
}

fn merge_total(
    env: &mut BTreeMap<String, Res>,
    target: &str,
    res: Res,
    instant: usize,
) -> Result<bool, SignalError> {
    let current = env.get(target).cloned().unwrap_or(Res::Unknown);
    match (&current, &res) {
        (_, Res::Unknown) => Ok(false),
        (Res::Unknown, _) => {
            // A constant defining expression leaves the clock free; keep it
            // as Any so that constraints can still decide.
            env.insert(target.to_string(), res);
            Ok(true)
        }
        // Upgrade a presence-only resolution to a full value.
        (Res::PresentUnknown, Res::Present(_) | Res::Any(_)) => {
            env.insert(target.to_string(), res);
            Ok(true)
        }
        _ => {
            if consistent(&current, &res) {
                Ok(false)
            } else {
                Err(SignalError::SynchronizationViolation {
                    instant,
                    detail: format!("conflicting resolutions for `{target}`"),
                })
            }
        }
    }
}

fn merge_partial(
    env: &mut BTreeMap<String, Res>,
    target: &str,
    res: Res,
    instant: usize,
) -> Result<bool, SignalError> {
    match res {
        Res::Present(v) | Res::Any(v) => {
            let current = env.get(target).cloned().unwrap_or(Res::Unknown);
            match current {
                Res::Unknown | Res::Absent | Res::PresentUnknown => {
                    env.insert(target.to_string(), Res::Present(v));
                    Ok(true)
                }
                Res::Present(ref cv) | Res::Any(ref cv) => {
                    if cv == &v {
                        Ok(false)
                    } else {
                        Err(SignalError::SynchronizationViolation {
                            instant,
                            detail: format!(
                                "partial definitions give `{target}` two values at the same instant"
                            ),
                        })
                    }
                }
            }
        }
        // An absent or unknown partial contributes nothing; absence of the
        // target can only be concluded globally.
        _ => Ok(false),
    }
}

fn when_result(e: &Res, b: &Res) -> Res {
    match b {
        Res::Absent => Res::Absent,
        Res::Present(v) | Res::Any(v) => {
            if v.as_bool() {
                match e {
                    Res::Present(x) | Res::Any(x) => Res::Present(x.clone()),
                    Res::PresentUnknown => Res::PresentUnknown,
                    Res::Absent => Res::Absent,
                    Res::Unknown => Res::Unknown,
                }
            } else {
                Res::Absent
            }
        }
        // The sampling condition is known present but its value is not known
        // yet: the result cannot be decided.
        Res::PresentUnknown => match e {
            Res::Absent => Res::Absent,
            _ => Res::Unknown,
        },
        Res::Unknown => match e {
            Res::Absent => Res::Absent,
            _ => Res::Unknown,
        },
    }
}

fn default_result(u: &Res, v: &Res) -> Res {
    match u {
        Res::Present(x) | Res::Any(x) => Res::Present(x.clone()),
        Res::PresentUnknown => Res::PresentUnknown,
        Res::Absent => match v {
            Res::Present(y) | Res::Any(y) => Res::Present(y.clone()),
            Res::PresentUnknown => Res::PresentUnknown,
            Res::Absent => Res::Absent,
            Res::Unknown => Res::Unknown,
        },
        Res::Unknown => Res::Unknown,
    }
}

fn cell_result(i: &Res, b: &Res, memory: &Value) -> Res {
    match i {
        Res::Present(v) | Res::Any(v) => Res::Present(v.clone()),
        Res::PresentUnknown => Res::PresentUnknown,
        Res::Absent => match b {
            Res::Present(bv) | Res::Any(bv) => {
                if bv.as_bool() {
                    Res::Present(memory.clone())
                } else {
                    Res::Absent
                }
            }
            Res::PresentUnknown => Res::Unknown,
            Res::Absent => Res::Absent,
            Res::Unknown => Res::Unknown,
        },
        Res::Unknown => Res::Unknown,
    }
}

fn clock_of_result(e: &Res) -> Res {
    match e {
        Res::Present(_) | Res::Any(_) | Res::PresentUnknown => Res::Present(Value::Event),
        Res::Absent => Res::Absent,
        Res::Unknown => Res::Unknown,
    }
}

fn clock_when_result(b: &Res) -> Res {
    match b {
        Res::Present(v) | Res::Any(v) => {
            if v.as_bool() {
                Res::Present(Value::Event)
            } else {
                Res::Absent
            }
        }
        Res::PresentUnknown => Res::Unknown,
        Res::Absent => Res::Absent,
        Res::Unknown => Res::Unknown,
    }
}

fn apply_unary(op: UnOp, v: &Res) -> Result<Res, SignalError> {
    match v {
        Res::Unknown => Ok(Res::Unknown),
        Res::PresentUnknown => Ok(Res::PresentUnknown),
        Res::Absent => Ok(Res::Absent),
        Res::Present(x) | Res::Any(x) => {
            let out = match op {
                UnOp::Neg => match x {
                    Value::Int(i) => Value::Int(-i),
                    Value::Real(r) => Value::Real(-r),
                    other => {
                        return Err(SignalError::TypeError {
                            detail: format!("cannot negate {other}"),
                        })
                    }
                },
                UnOp::Not => Value::Bool(!x.as_bool()),
            };
            Ok(match v {
                Res::Any(_) => Res::Any(out),
                _ => Res::Present(out),
            })
        }
    }
}

fn apply_binary(op: BinOp, a: &Res, b: &Res, instant: usize) -> Result<Res, SignalError> {
    match (a, b) {
        (Res::Unknown, _) | (_, Res::Unknown) => Ok(Res::Unknown),
        (Res::Absent, Res::Absent) => Ok(Res::Absent),
        (Res::Absent, Res::Any(_)) | (Res::Any(_), Res::Absent) => Ok(Res::Absent),
        (Res::Absent, Res::Present(_) | Res::PresentUnknown)
        | (Res::Present(_) | Res::PresentUnknown, Res::Absent) => {
            Err(SignalError::SynchronizationViolation {
                instant,
                detail: format!("operands of `{}` are not synchronous", op.symbol()),
            })
        }
        (Res::PresentUnknown, _) | (_, Res::PresentUnknown) => Ok(Res::PresentUnknown),
        (Res::Present(x) | Res::Any(x), Res::Present(y) | Res::Any(y)) => {
            let out = compute_binary(op, x, y)?;
            if matches!(a, Res::Any(_)) && matches!(b, Res::Any(_)) {
                Ok(Res::Any(out))
            } else {
                Ok(Res::Present(out))
            }
        }
    }
}

fn compute_binary(op: BinOp, x: &Value, y: &Value) -> Result<Value, SignalError> {
    use BinOp::*;
    let type_err = || SignalError::TypeError {
        detail: format!("cannot apply `{}` to {x} and {y}", op.symbol()),
    };
    match op {
        And => Ok(Value::Bool(x.as_bool() && y.as_bool())),
        Or => Ok(Value::Bool(x.as_bool() || y.as_bool())),
        Eq => Ok(Value::Bool(values_equal(x, y))),
        Ne => Ok(Value::Bool(!values_equal(x, y))),
        Lt | Le | Gt | Ge => {
            let (a, b) = (
                x.as_real().ok_or_else(type_err)?,
                y.as_real().ok_or_else(type_err)?,
            );
            let r = match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        Add | Sub | Mul | Div | Mod => match (x, y) {
            (Value::Int(a), Value::Int(b)) => {
                let r = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    Div => {
                        if *b == 0 {
                            return Err(SignalError::TypeError {
                                detail: "integer division by zero".into(),
                            });
                        }
                        a / b
                    }
                    Mod => {
                        if *b == 0 {
                            return Err(SignalError::TypeError {
                                detail: "integer modulo by zero".into(),
                            });
                        }
                        a.rem_euclid(*b)
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(r))
            }
            _ => {
                let (a, b) = (
                    x.as_real().ok_or_else(type_err)?,
                    y.as_real().ok_or_else(type_err)?,
                );
                let r = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a.rem_euclid(b),
                    _ => unreachable!(),
                };
                Ok(Value::Real(r))
            }
        },
    }
}

fn values_equal(x: &Value, y: &Value) -> bool {
    match (x, y) {
        (Value::Int(a), Value::Real(b)) | (Value::Real(b), Value::Int(a)) => (*a as f64) == *b,
        _ => x == y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::value::ValueType;

    fn run_process(p: &Process, inputs: &Trace) -> Trace {
        Evaluator::new(p).unwrap().run(inputs).unwrap()
    }

    #[test]
    fn counter_counts_ticks() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        for t in [0usize, 2, 3, 5] {
            inputs.set(t, "tick", Value::Event);
        }
        inputs.step_mut(6);
        let out = run_process(&p, &inputs);
        assert_eq!(out.clock_of("count"), vec![0, 2, 3, 5]);
        assert_eq!(
            out.flow_of("count"),
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]
        );
    }

    #[test]
    fn when_samples_on_true() {
        let mut b = ProcessBuilder::new("sampler");
        b.input("x", ValueType::Integer);
        b.input("c", ValueType::Boolean);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::when(Expr::var("x"), Expr::var("c")));
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        inputs.set(0, "x", Value::Int(10));
        inputs.set(0, "c", Value::Bool(true));
        inputs.set(1, "x", Value::Int(20));
        inputs.set(1, "c", Value::Bool(false));
        inputs.set(2, "x", Value::Int(30));
        // c absent at 2
        let out = run_process(&p, &inputs);
        assert_eq!(out.clock_of("y"), vec![0]);
        assert_eq!(out.flow_of("y"), vec![Value::Int(10)]);
    }

    #[test]
    fn default_merges_deterministically() {
        let mut b = ProcessBuilder::new("merge");
        b.input("u", ValueType::Integer);
        b.input("v", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::default(Expr::var("u"), Expr::var("v")));
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        inputs.set(0, "u", Value::Int(1));
        inputs.set(0, "v", Value::Int(9));
        inputs.set(1, "v", Value::Int(2));
        inputs.step_mut(2);
        let out = run_process(&p, &inputs);
        assert_eq!(out.flow_of("y"), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(out.clock_of("y"), vec![0, 1]);
    }

    #[test]
    fn cell_implements_memory_process_fm() {
        // o = fm(i, b): o holds i when i present, previous i when b true.
        let mut b = ProcessBuilder::new("fm");
        b.input("i", ValueType::Integer);
        b.input("b", ValueType::Boolean);
        b.output("o", ValueType::Integer);
        b.define(
            "o",
            Expr::cell(Expr::var("i"), Expr::var("b"), Value::Int(0)),
        );
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        // t0: i=5 (b absent)  -> o=5
        // t1: b=true          -> o=5 (memorised)
        // t2: b=false         -> absent
        // t3: i=7, b=true     -> o=7
        // t4: b=true          -> o=7
        inputs.set(0, "i", Value::Int(5));
        inputs.set(1, "b", Value::Bool(true));
        inputs.set(2, "b", Value::Bool(false));
        inputs.set(3, "i", Value::Int(7));
        inputs.set(3, "b", Value::Bool(true));
        inputs.set(4, "b", Value::Bool(true));
        let out = run_process(&p, &inputs);
        assert_eq!(out.clock_of("o"), vec![0, 1, 3, 4]);
        assert_eq!(
            out.flow_of("o"),
            vec![Value::Int(5), Value::Int(5), Value::Int(7), Value::Int(7)]
        );
    }

    #[test]
    fn synchronization_violation_detected() {
        let mut b = ProcessBuilder::new("sync");
        b.input("a", ValueType::Integer);
        b.input("b", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::add(Expr::var("a"), Expr::var("b")));
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Int(1));
        // b absent at 0: a + b is not computable.
        let err = Evaluator::new(&p).unwrap().run(&inputs).unwrap_err();
        assert!(matches!(err, SignalError::SynchronizationViolation { .. }));
    }

    #[test]
    fn clock_constraint_checked() {
        let mut b = ProcessBuilder::new("constrained");
        b.input("a", ValueType::Event);
        b.input("b", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::var("a"));
        b.synchronize(&["a", "b"]);
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Event);
        let err = Evaluator::new(&p).unwrap().run(&inputs).unwrap_err();
        assert!(matches!(err, SignalError::SynchronizationViolation { .. }));
    }

    #[test]
    fn exclusion_constraint_checked() {
        let mut b = ProcessBuilder::new("excl");
        b.input("r", ValueType::Event);
        b.input("w", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::default(Expr::var("r"), Expr::var("w")));
        b.exclude(&["r", "w"]);
        let p = b.build().unwrap();
        let mut ok_inputs = Trace::new();
        ok_inputs.set(0, "r", Value::Event);
        ok_inputs.set(1, "w", Value::Event);
        Evaluator::new(&p).unwrap().run(&ok_inputs).unwrap();
        let mut bad_inputs = Trace::new();
        bad_inputs.set(0, "r", Value::Event);
        bad_inputs.set(0, "w", Value::Event);
        let err = Evaluator::new(&p).unwrap().run(&bad_inputs).unwrap_err();
        assert!(matches!(err, SignalError::SynchronizationViolation { .. }));
    }

    #[test]
    fn partial_definitions_merge() {
        // x ::= a when ca ; x ::= b when cb with exclusive conditions.
        let mut bld = ProcessBuilder::new("partial");
        bld.input("a", ValueType::Integer);
        bld.input("b", ValueType::Integer);
        bld.input("ca", ValueType::Boolean);
        bld.input("cb", ValueType::Boolean);
        bld.output("x", ValueType::Integer);
        bld.define_partial("x", Expr::when(Expr::var("a"), Expr::var("ca")));
        bld.define_partial("x", Expr::when(Expr::var("b"), Expr::var("cb")));
        let p = bld.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Int(1));
        inputs.set(0, "ca", Value::Bool(true));
        inputs.set(0, "cb", Value::Bool(false));
        inputs.set(1, "b", Value::Int(2));
        inputs.set(1, "ca", Value::Bool(false));
        inputs.set(1, "cb", Value::Bool(true));
        inputs.step_mut(2);
        let out = run_process(&p, &inputs);
        assert_eq!(out.flow_of("x"), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn conflicting_partials_rejected() {
        let mut bld = ProcessBuilder::new("conflict");
        bld.input("a", ValueType::Integer);
        bld.input("b", ValueType::Integer);
        bld.output("x", ValueType::Integer);
        bld.define_partial("x", Expr::var("a"));
        bld.define_partial("x", Expr::var("b"));
        let p = bld.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Int(1));
        inputs.set(0, "b", Value::Int(2));
        let err = Evaluator::new(&p).unwrap().run(&inputs).unwrap_err();
        assert!(matches!(
            err,
            SignalError::SynchronizationViolation { .. } | SignalError::MultipleDefinitions { .. }
        ));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "tick", Value::Event);
        let mut eval = Evaluator::new(&p).unwrap();
        let first = eval.run(&inputs).unwrap();
        let second = eval.run(&inputs).unwrap();
        assert_eq!(second.flow_of("count"), vec![Value::Int(2)]);
        eval.reset();
        let third = eval.run(&inputs).unwrap();
        assert_eq!(first.flow_of("count"), third.flow_of("count"));
    }

    #[test]
    fn memory_snapshot_round_trips() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "tick", Value::Event);
        let mut eval = Evaluator::new(&p).unwrap();
        assert_eq!(eval.memory_len(), 1);
        assert_eq!(eval.memory(), vec![Value::Int(0)]);
        eval.run(&inputs).unwrap();
        let snapshot = eval.memory();
        assert_eq!(snapshot, vec![Value::Int(1)]);
        eval.run(&inputs).unwrap();
        assert_eq!(eval.memory(), vec![Value::Int(2)]);
        // Restoring the snapshot replays the same future.
        eval.restore_memory(&snapshot).unwrap();
        let out = eval.run(&inputs).unwrap();
        assert_eq!(out.flow_of("count"), vec![Value::Int(2)]);
        // Arity is checked.
        assert!(eval.restore_memory(&[]).is_err());
    }

    #[test]
    fn evaluator_rejects_unflattened_process() {
        let mut b = ProcessBuilder::new("parent");
        b.input("x", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.instance("child", "c1", &["x"], &["y"]);
        let p = b.build().unwrap();
        assert!(Evaluator::new(&p).is_err());
    }
}
