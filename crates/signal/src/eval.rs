//! A denotational evaluator for flat SIGNAL processes over multi-clock
//! traces.
//!
//! The evaluator executes the kernel operators with their polychronous
//! semantics (Section III of the paper): at each logical instant it resolves
//! the presence and value of every signal from the provided input step, using
//! a fixpoint over the equations, then commits the state of `delay` and
//! `cell` operators. It is used to validate the AADL-to-SIGNAL translation
//! (input freezing, port FIFOs, shared data) and as the kernel of the
//! simulator crate.
//!
//! Internally the evaluator is *compiled*: at construction every signal name
//! is interned to a dense `u32` id, every equation expression is lowered to
//! a `CExpr` mirror whose variables are ids and whose `delay`/`cell`
//! operators carry their state-table index directly, and the per-instant
//! environment is a reusable `Vec<Res>` indexed by id. This removes the
//! string-keyed map rebuild that used to dominate the model checker's hot
//! path; the public API (name-keyed [`TraceStep`]s in and out) is unchanged,
//! and [`Evaluator::step_resolved`] additionally exposes the resolved
//! instant as a borrow-only [`ResolvedStep`] so explorers can skip the
//! `TraceStep` materialisation entirely.

use std::collections::HashMap;

use crate::error::SignalError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::process::{Equation, Process};
use crate::trace::{Trace, TraceStep};
use crate::value::{Value, ValueType};
use crate::view::InstantView;

/// Resolution of a signal (or sub-expression) at an instant.
#[derive(Debug, Clone, PartialEq)]
enum Res {
    /// Not yet determined.
    Unknown,
    /// Known absent.
    Absent,
    /// Known present, value not yet determined (e.g. propagated through a
    /// clock constraint before the defining equation could be computed).
    PresentUnknown,
    /// Known present with a value.
    Present(Value),
    /// A constant: present at whatever clock the context requires.
    Any(Value),
}

impl Res {
    fn known(&self) -> bool {
        !matches!(self, Res::Unknown)
    }

    fn is_present(&self) -> bool {
        matches!(self, Res::Present(_) | Res::Any(_) | Res::PresentUnknown)
    }

    fn value(&self) -> Option<&Value> {
        match self {
            Res::Present(v) | Res::Any(v) => Some(v),
            _ => None,
        }
    }
}

/// State of one stateful operator (`delay` or `cell`) in the process body.
#[derive(Debug, Clone)]
struct OperatorState {
    current: Value,
    pending: Option<Value>,
}

/// An equation expression compiled against the signal-id table: variables
/// are dense ids and stateful operators carry their state-table slot, so
/// evaluation needs neither name lookups nor a pre-order cursor.
#[derive(Debug, Clone)]
enum CExpr {
    Var(u32),
    Const(Value),
    Unary(UnOp, Box<CExpr>),
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    Delay(usize, Box<CExpr>),
    When(Box<CExpr>, Box<CExpr>),
    Default(Box<CExpr>, Box<CExpr>),
    Cell(usize, Box<CExpr>, Box<CExpr>),
    ClockOf(Box<CExpr>),
    ClockWhen(Box<CExpr>),
}

/// One compiled equation.
#[derive(Debug, Clone)]
enum CEq {
    Def {
        target: u32,
        expr: CExpr,
    },
    Partial {
        target: u32,
        expr: CExpr,
    },
    /// `label` is the pre-joined signal list for the error message.
    Sync {
        signals: Vec<u32>,
        label: String,
    },
    Excl {
        signals: Vec<u32>,
        label: String,
    },
}

/// Evaluator of a flat [`Process`] (no sub-process instances; use
/// [`crate::process::ProcessModel::flatten`] first).
///
/// ```
/// use signal_moc::builder::ProcessBuilder;
/// use signal_moc::eval::Evaluator;
/// use signal_moc::expr::Expr;
/// use signal_moc::trace::{Trace, TraceStep};
/// use signal_moc::value::{Value, ValueType};
///
/// let mut b = ProcessBuilder::new("counter");
/// b.input("tick", ValueType::Event);
/// b.output("count", ValueType::Integer);
/// b.define("count", Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)));
/// b.synchronize(&["count", "tick"]);
/// let process = b.build()?;
///
/// let mut inputs = Trace::new();
/// for t in 0..3 { inputs.set(t, "tick", Value::Event); }
/// let mut eval = Evaluator::new(&process)?;
/// let out = eval.run(&inputs)?;
/// assert_eq!(out.flow_of("count"), vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
/// # Ok::<(), signal_moc::SignalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    process: Process,
    states: Vec<OperatorState>,
    /// Initial memory, for [`Evaluator::reset`].
    initial: Vec<Value>,
    max_iterations: usize,
    /// id → name; the first `decl_count` ids are `process.signals` in
    /// declaration order, any extra names found in equations follow.
    names: Vec<String>,
    /// name → id.
    ids: HashMap<String, u32>,
    /// Ids sorted by name, for name-ordered iteration ([`ResolvedStep`]).
    sorted_ids: Vec<u32>,
    /// Number of declared signals (prefix of `names`).
    decl_count: usize,
    /// Declared type per declared id.
    decl_ty: Vec<ValueType>,
    /// Whether the declared id is an input.
    is_input: Vec<bool>,
    /// Input ids in `process.inputs()` order.
    input_ids: Vec<u32>,
    /// Whether the id has a total definition (for the partial discipline).
    has_total: Vec<bool>,
    /// Compiled equations, in source order.
    ceqs: Vec<CEq>,
    /// Reusable per-instant environment, indexed by id.
    env: Vec<Res>,
}

/// Name interner used during compilation.
struct Interner<'a> {
    ids: &'a mut HashMap<String, u32>,
    names: &'a mut Vec<String>,
}

impl Interner<'_> {
    fn id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }
}

fn compile_expr(
    expr: &Expr,
    interner: &mut Interner<'_>,
    states: &mut Vec<OperatorState>,
) -> CExpr {
    match expr {
        Expr::Var(name) => CExpr::Var(interner.id(name)),
        Expr::Const(v) => CExpr::Const(v.clone()),
        Expr::Unary(op, e) => CExpr::Unary(*op, Box::new(compile_expr(e, interner, states))),
        Expr::Binary(op, a, b) => CExpr::Binary(
            *op,
            Box::new(compile_expr(a, interner, states)),
            Box::new(compile_expr(b, interner, states)),
        ),
        Expr::Delay(e, init) => {
            let idx = states.len();
            states.push(OperatorState {
                current: init.clone(),
                pending: None,
            });
            CExpr::Delay(idx, Box::new(compile_expr(e, interner, states)))
        }
        Expr::When(e, b) => CExpr::When(
            Box::new(compile_expr(e, interner, states)),
            Box::new(compile_expr(b, interner, states)),
        ),
        Expr::Default(u, v) => CExpr::Default(
            Box::new(compile_expr(u, interner, states)),
            Box::new(compile_expr(v, interner, states)),
        ),
        Expr::Cell(i, b, init) => {
            let idx = states.len();
            states.push(OperatorState {
                current: init.clone(),
                pending: None,
            });
            CExpr::Cell(
                idx,
                Box::new(compile_expr(i, interner, states)),
                Box::new(compile_expr(b, interner, states)),
            )
        }
        Expr::ClockOf(e) => CExpr::ClockOf(Box::new(compile_expr(e, interner, states))),
        Expr::ClockWhen(b) => CExpr::ClockWhen(Box::new(compile_expr(b, interner, states))),
    }
}

impl Evaluator {
    /// Prepares an evaluator for `process`.
    ///
    /// # Errors
    ///
    /// Returns an error if the process contains sub-process instances (it
    /// must be flattened first) or fails validation.
    pub fn new(process: &Process) -> Result<Self, SignalError> {
        process.validate()?;
        if process
            .equations
            .iter()
            .any(|eq| matches!(eq, Equation::Instance { .. }))
        {
            return Err(SignalError::UnknownProcess(format!(
                "process `{}` must be flattened before evaluation",
                process.name
            )));
        }

        let mut names: Vec<String> = Vec::with_capacity(process.signals.len());
        let mut ids: HashMap<String, u32> = HashMap::with_capacity(process.signals.len());
        let mut decl_ty = Vec::with_capacity(process.signals.len());
        let mut is_input = Vec::with_capacity(process.signals.len());
        for decl in &process.signals {
            let id = names.len() as u32;
            names.push(decl.name.clone());
            ids.insert(decl.name.clone(), id);
            decl_ty.push(decl.ty);
            is_input.push(decl.role == crate::process::SignalRole::Input);
        }
        let decl_count = names.len();
        let input_ids: Vec<u32> = process.inputs().map(|d| ids[&d.name]).collect();

        let mut states = Vec::new();
        let mut ceqs = Vec::with_capacity(process.equations.len());
        {
            let mut interner = Interner {
                ids: &mut ids,
                names: &mut names,
            };
            for eq in &process.equations {
                match eq {
                    Equation::Definition { target, expr } => ceqs.push(CEq::Def {
                        target: interner.id(target),
                        expr: compile_expr(expr, &mut interner, &mut states),
                    }),
                    Equation::PartialDefinition { target, expr } => ceqs.push(CEq::Partial {
                        target: interner.id(target),
                        expr: compile_expr(expr, &mut interner, &mut states),
                    }),
                    Equation::ClockConstraint { signals } => ceqs.push(CEq::Sync {
                        signals: signals.iter().map(|s| interner.id(s)).collect(),
                        label: signals.join(" ^= "),
                    }),
                    Equation::ClockExclusion { signals } => ceqs.push(CEq::Excl {
                        signals: signals.iter().map(|s| interner.id(s)).collect(),
                        label: signals.join(" # "),
                    }),
                    Equation::Instance { .. } => unreachable!("rejected above"),
                }
            }
        }

        let mut has_total = vec![false; names.len()];
        for ceq in &ceqs {
            if let CEq::Def { target, .. } = ceq {
                has_total[*target as usize] = true;
            }
        }
        let mut sorted_ids: Vec<u32> = (0..names.len() as u32).collect();
        sorted_ids.sort_by(|&a, &b| names[a as usize].cmp(&names[b as usize]));

        let initial: Vec<Value> = states.iter().map(|s| s.current.clone()).collect();
        let env = vec![Res::Unknown; names.len()];
        Ok(Self {
            process: process.clone(),
            states,
            initial,
            max_iterations: 64,
            names,
            ids,
            sorted_ids,
            decl_count,
            decl_ty,
            is_input,
            input_ids,
            has_total,
            ceqs,
            env,
        })
    }

    /// The process being evaluated.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Number of stateful (`delay`/`cell`) operators in the process body —
    /// the length of the memory vector returned by [`Evaluator::memory`].
    pub fn memory_len(&self) -> usize {
        self.states.len()
    }

    /// Snapshot of the current memory of every `delay`/`cell` operator, in
    /// the pre-order of the equations. Together with an input prefix this is
    /// the complete execution state of a flat process, which is what an
    /// explicit-state model checker needs to hash and restore.
    pub fn memory(&self) -> Vec<Value> {
        self.states.iter().map(|s| s.current.clone()).collect()
    }

    /// Writes the memory snapshot into `out` (cleared first), reusing its
    /// allocation — the model checker's per-successor variant of
    /// [`Evaluator::memory`].
    pub fn memory_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.states.iter().map(|s| s.current.clone()));
    }

    /// Restores a memory snapshot previously taken with
    /// [`Evaluator::memory`] (pending half-steps are discarded).
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::TypeError`] when `memory` does not have exactly
    /// [`Evaluator::memory_len`] entries.
    pub fn restore_memory(&mut self, memory: &[Value]) -> Result<(), SignalError> {
        if memory.len() != self.states.len() {
            return Err(SignalError::TypeError {
                detail: format!(
                    "memory snapshot has {} entries, process `{}` has {} stateful operators",
                    memory.len(),
                    self.process.name,
                    self.states.len()
                ),
            });
        }
        for (st, v) in self.states.iter_mut().zip(memory) {
            st.current.clone_from(v);
            st.pending = None;
        }
        Ok(())
    }

    /// Resets all `delay`/`cell` states to their initial values.
    pub fn reset(&mut self) {
        for (st, v) in self.states.iter_mut().zip(&self.initial) {
            st.current.clone_from(v);
            st.pending = None;
        }
    }

    /// Executes the process for every instant of `inputs`, returning the
    /// complete trace (inputs, locals and outputs).
    ///
    /// # Errors
    ///
    /// Returns a [`SignalError`] if a synchronisation constraint is violated,
    /// a stepwise operator is applied to non-synchronous operands, a signal
    /// receives two different values at the same instant, or the process is
    /// not executable from the provided inputs.
    pub fn run(&mut self, inputs: &Trace) -> Result<Trace, SignalError> {
        let mut out = Trace::new();
        let empty = TraceStep::new();
        for t in 0..inputs.len() {
            let step = inputs.step(t).unwrap_or(&empty);
            let resolved = self.step(t, step)?;
            out.push(resolved);
        }
        Ok(out)
    }

    /// Executes a single instant given the input step, committing operator
    /// states, and returns the full resolved step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::run`].
    pub fn step(&mut self, instant: usize, input: &TraceStep) -> Result<TraceStep, SignalError> {
        self.step_commit(instant, input)?;
        let mut step = TraceStep::new();
        for (id, res) in self.env.iter().enumerate() {
            if let Res::Present(v) | Res::Any(v) = res {
                step.set(self.names[id].clone(), v.clone());
            }
        }
        Ok(step)
    }

    /// Executes a single instant like [`Evaluator::step`], but returns the
    /// resolved signals as a borrow-only [`ResolvedStep`] over the internal
    /// environment instead of materialising a [`TraceStep`]. The view stays
    /// valid (and unchanged) until the next step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::run`].
    pub fn step_resolved(
        &mut self,
        instant: usize,
        input: &TraceStep,
    ) -> Result<ResolvedStep<'_>, SignalError> {
        self.step_commit(instant, input)?;
        Ok(self.resolved())
    }

    /// The resolved view of the last executed instant (empty before the
    /// first step).
    pub fn resolved(&self) -> ResolvedStep<'_> {
        ResolvedStep {
            names: &self.names,
            ids: &self.ids,
            env: &self.env,
            sorted_ids: &self.sorted_ids,
        }
    }

    /// Resolves one instant into `self.env` and commits operator states.
    fn step_commit(&mut self, instant: usize, input: &TraceStep) -> Result<(), SignalError> {
        let mut env = std::mem::take(&mut self.env);
        let result = self.step_into(instant, input, &mut env);
        self.env = env;
        result
    }

    fn step_into(
        &mut self,
        instant: usize,
        input: &TraceStep,
        env: &mut Vec<Res>,
    ) -> Result<(), SignalError> {
        env.clear();
        env.resize(self.names.len(), Res::Unknown);
        // Inputs are fully specified by the caller: absent unless given.
        for &id in &self.input_ids {
            env[id as usize] = match input.get(&self.names[id as usize]) {
                Some(v) => Res::Present(v.clone()),
                None => Res::Absent,
            };
        }

        // Fixpoint over the equations.
        let mut changed = true;
        let mut iterations = 0;
        while changed {
            changed = false;
            iterations += 1;
            if iterations > self.max_iterations {
                break;
            }
            for ceq in &self.ceqs {
                match ceq {
                    CEq::Def { target, expr } => {
                        let res = eval(expr, env, &self.states, instant)?;
                        changed |= merge_total(env, *target, res, instant, &self.names)?;
                    }
                    CEq::Partial { target, expr } => {
                        let res = eval(expr, env, &self.states, instant)?;
                        changed |= merge_partial(env, *target, res, instant, &self.names)?;
                    }
                    CEq::Sync { signals, label } => {
                        // Propagate presence/absence across a synchronisation
                        // class: if any member is decided, undecided members
                        // follow.
                        let any_present = signals.iter().any(|&s| env[s as usize].is_present());
                        let any_absent = signals
                            .iter()
                            .any(|&s| matches!(env[s as usize], Res::Absent));
                        if any_present && any_absent {
                            return Err(SignalError::SynchronizationViolation {
                                instant,
                                detail: format!("signals {label} must be synchronous"),
                            });
                        }
                        if any_present || any_absent {
                            for &s in signals {
                                if matches!(env[s as usize], Res::Unknown) {
                                    env[s as usize] = if any_present {
                                        Res::PresentUnknown
                                    } else {
                                        Res::Absent
                                    };
                                    changed = true;
                                }
                            }
                        }
                    }
                    CEq::Excl { .. } => {}
                }
            }
        }

        // Signals known present but without a computed value: pure events
        // carry no value, so presence is enough; anything else is stuck.
        let mut stuck = Vec::new();
        for (id, res) in env.iter_mut().enumerate().take(self.decl_count) {
            if matches!(res, Res::PresentUnknown) {
                if self.decl_ty[id] == ValueType::Event {
                    *res = Res::Present(Value::Event);
                } else {
                    stuck.push(self.names[id].clone());
                }
            }
        }
        if !stuck.is_empty() {
            return Err(SignalError::NotExecutable {
                instant,
                unresolved: stuck,
            });
        }

        // Default-to-absent completion: any still-unknown signal is assumed
        // absent, then all equations are re-checked for consistency.
        for res in env.iter_mut() {
            if !res.known() {
                *res = Res::Absent;
            }
        }
        self.verify(env, instant)?;
        self.check_constraints(env, instant)?;
        self.commit(env, instant)
    }

    /// Re-evaluates every definition under the completed environment and
    /// checks consistency.
    fn verify(&self, env: &[Res], instant: usize) -> Result<(), SignalError> {
        // Track, per partially-defined signal, whether some partial fired.
        let mut partial_fired = vec![false; self.names.len()];
        let mut partial_targets: Vec<u32> = Vec::new();
        for ceq in &self.ceqs {
            match ceq {
                CEq::Def { target, expr } => {
                    let res = eval(expr, env, &self.states, instant)?;
                    let current = &env[*target as usize];
                    if !consistent(current, &res) {
                        return Err(SignalError::NotExecutable {
                            instant,
                            unresolved: vec![self.names[*target as usize].clone()],
                        });
                    }
                }
                CEq::Partial { target, expr } => {
                    partial_targets.push(*target);
                    let res = eval(expr, env, &self.states, instant)?;
                    if let Res::Present(ref v) | Res::Any(ref v) = res {
                        partial_fired[*target as usize] = true;
                        if let Some(cv) = env[*target as usize].value() {
                            if cv != v {
                                return Err(SignalError::MultipleDefinitions {
                                    process: self.process.name.clone(),
                                    signal: self.names[*target as usize].clone(),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // A partially-defined signal that is present must have at least one
        // firing partial definition or be an input.
        for target in partial_targets {
            let id = target as usize;
            if id < self.decl_count && self.is_input[id] {
                continue;
            }
            let present = matches!(env[id], Res::Present(_) | Res::Any(_));
            if present && !self.has_total[id] && !partial_fired[id] {
                return Err(SignalError::NotExecutable {
                    instant,
                    unresolved: vec![self.names[id].clone()],
                });
            }
        }
        Ok(())
    }

    fn check_constraints(&self, env: &[Res], instant: usize) -> Result<(), SignalError> {
        for ceq in &self.ceqs {
            match ceq {
                CEq::Sync { signals, label } => {
                    let mut present: Option<bool> = None;
                    for &s in signals {
                        let p = matches!(env[s as usize], Res::Present(_) | Res::Any(_));
                        match present {
                            None => present = Some(p),
                            Some(prev) if prev != p => {
                                return Err(SignalError::SynchronizationViolation {
                                    instant,
                                    detail: format!("signals {label} must be synchronous"),
                                });
                            }
                            _ => {}
                        }
                    }
                }
                CEq::Excl { signals, label } => {
                    let count = signals
                        .iter()
                        .filter(|&&s| matches!(env[s as usize], Res::Present(_) | Res::Any(_)))
                        .count();
                    if count > 1 {
                        return Err(SignalError::SynchronizationViolation {
                            instant,
                            detail: format!("signals {label} must be mutually exclusive"),
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Commits the pending state of every `delay`/`cell` operator.
    fn commit(&mut self, env: &[Res], instant: usize) -> Result<(), SignalError> {
        // Recompute pending updates under the final environment, then apply.
        for st in &mut self.states {
            st.pending = None;
        }
        let states = &mut self.states;
        for ceq in &self.ceqs {
            if let CEq::Def { expr, .. } | CEq::Partial { expr, .. } = ceq {
                record_pending(expr, env, states, instant)?;
            }
        }
        for st in states.iter_mut() {
            if let Some(v) = st.pending.take() {
                st.current = v;
            }
        }
        Ok(())
    }
}

/// Borrow-only view of the last resolved instant of an [`Evaluator`];
/// implements [`InstantView`] so property monitors can read it without a
/// materialised [`TraceStep`].
#[derive(Debug, Clone, Copy)]
pub struct ResolvedStep<'a> {
    names: &'a [String],
    ids: &'a HashMap<String, u32>,
    env: &'a [Res],
    sorted_ids: &'a [u32],
}

impl InstantView for ResolvedStep<'_> {
    fn value_of(&self, name: &str) -> Option<&Value> {
        self.ids
            .get(name)
            .and_then(|&id| self.env.get(id as usize))
            .and_then(Res::value)
    }

    fn first_present_matching(
        &self,
        accept: &mut dyn FnMut(&str, &Value) -> bool,
    ) -> Option<String> {
        for &id in self.sorted_ids {
            if let Some(v) = self.env[id as usize].value() {
                let name = &self.names[id as usize];
                if accept(name, v) {
                    return Some(name.clone());
                }
            }
        }
        None
    }
}

/// Evaluates a compiled expression under the current (possibly partial)
/// environment.
fn eval(
    expr: &CExpr,
    env: &[Res],
    states: &[OperatorState],
    instant: usize,
) -> Result<Res, SignalError> {
    match expr {
        CExpr::Var(id) => Ok(env[*id as usize].clone()),
        CExpr::Const(v) => Ok(Res::Any(v.clone())),
        CExpr::Unary(op, e) => {
            let v = eval(e, env, states, instant)?;
            apply_unary(*op, &v)
        }
        CExpr::Binary(op, a, b) => {
            let va = eval(a, env, states, instant)?;
            let vb = eval(b, env, states, instant)?;
            apply_binary(*op, &va, &vb, instant)
        }
        CExpr::Delay(idx, e) => {
            let inner = eval(e, env, states, instant)?;
            Ok(match inner {
                Res::Present(_) | Res::Any(_) | Res::PresentUnknown => {
                    Res::Present(states[*idx].current.clone())
                }
                Res::Absent => Res::Absent,
                Res::Unknown => Res::Unknown,
            })
        }
        CExpr::When(e, b) => {
            let ve = eval(e, env, states, instant)?;
            let vb = eval(b, env, states, instant)?;
            Ok(when_result(&ve, &vb))
        }
        CExpr::Default(u, v) => {
            let vu = eval(u, env, states, instant)?;
            let vv = eval(v, env, states, instant)?;
            Ok(default_result(&vu, &vv))
        }
        CExpr::Cell(idx, i, b) => {
            let vi = eval(i, env, states, instant)?;
            let vb = eval(b, env, states, instant)?;
            Ok(cell_result(&vi, &vb, &states[*idx].current))
        }
        CExpr::ClockOf(e) => {
            let v = eval(e, env, states, instant)?;
            Ok(clock_of_result(&v))
        }
        CExpr::ClockWhen(b) => {
            let v = eval(b, env, states, instant)?;
            Ok(clock_when_result(&v))
        }
    }
}

/// Like [`eval`], but records the pending update of every `delay`/`cell`
/// operator it passes through.
fn record_pending(
    expr: &CExpr,
    env: &[Res],
    states: &mut [OperatorState],
    instant: usize,
) -> Result<Res, SignalError> {
    match expr {
        CExpr::Delay(idx, e) => {
            let idx = *idx;
            let inner = record_pending(e, env, states, instant)?;
            let res = match &inner {
                Res::Present(_) | Res::Any(_) | Res::PresentUnknown => {
                    Res::Present(states[idx].current.clone())
                }
                Res::Absent => Res::Absent,
                Res::Unknown => Res::Unknown,
            };
            if let Some(v) = inner.value() {
                states[idx].pending = Some(v.clone());
            }
            Ok(res)
        }
        CExpr::Cell(idx, i, b) => {
            let idx = *idx;
            let vi = record_pending(i, env, states, instant)?;
            let vb = record_pending(b, env, states, instant)?;
            if let Some(v) = vi.value() {
                states[idx].pending = Some(v.clone());
            }
            Ok(cell_result(&vi, &vb, &states[idx].current))
        }
        CExpr::Var(id) => Ok(env[*id as usize].clone()),
        CExpr::Const(v) => Ok(Res::Any(v.clone())),
        CExpr::Unary(op, e) => {
            let v = record_pending(e, env, states, instant)?;
            apply_unary(*op, &v)
        }
        CExpr::Binary(op, a, b) => {
            let va = record_pending(a, env, states, instant)?;
            let vb = record_pending(b, env, states, instant)?;
            apply_binary(*op, &va, &vb, instant)
        }
        CExpr::When(e, b) => {
            let ve = record_pending(e, env, states, instant)?;
            let vb = record_pending(b, env, states, instant)?;
            Ok(when_result(&ve, &vb))
        }
        CExpr::Default(u, v) => {
            let vu = record_pending(u, env, states, instant)?;
            let vv = record_pending(v, env, states, instant)?;
            Ok(default_result(&vu, &vv))
        }
        CExpr::ClockOf(e) => {
            let v = record_pending(e, env, states, instant)?;
            Ok(clock_of_result(&v))
        }
        CExpr::ClockWhen(b) => {
            let v = record_pending(b, env, states, instant)?;
            Ok(clock_when_result(&v))
        }
    }
}

fn consistent(current: &Res, computed: &Res) -> bool {
    match (current, computed) {
        (_, Res::Unknown) | (Res::Unknown, _) => true,
        (_, Res::PresentUnknown) => current.is_present() || matches!(current, Res::Unknown),
        (Res::PresentUnknown, _) => computed.is_present(),
        (Res::Absent, Res::Absent) => true,
        // A constant expression is satisfied by an absent target (the
        // constant takes the clock of the target).
        (Res::Absent, Res::Any(_)) => true,
        (Res::Present(a) | Res::Any(a), Res::Present(b) | Res::Any(b)) => a == b,
        (Res::Present(_), Res::Absent) | (Res::Absent, Res::Present(_)) => false,
        (Res::Any(_), Res::Absent) => false,
    }
}

fn merge_total(
    env: &mut [Res],
    target: u32,
    res: Res,
    instant: usize,
    names: &[String],
) -> Result<bool, SignalError> {
    let slot = &mut env[target as usize];
    match (&*slot, &res) {
        (_, Res::Unknown) => Ok(false),
        (Res::Unknown, _) => {
            // A constant defining expression leaves the clock free; keep it
            // as Any so that constraints can still decide.
            *slot = res;
            Ok(true)
        }
        // Upgrade a presence-only resolution to a full value.
        (Res::PresentUnknown, Res::Present(_) | Res::Any(_)) => {
            *slot = res;
            Ok(true)
        }
        _ => {
            if consistent(slot, &res) {
                Ok(false)
            } else {
                Err(SignalError::SynchronizationViolation {
                    instant,
                    detail: format!("conflicting resolutions for `{}`", names[target as usize]),
                })
            }
        }
    }
}

fn merge_partial(
    env: &mut [Res],
    target: u32,
    res: Res,
    instant: usize,
    names: &[String],
) -> Result<bool, SignalError> {
    match res {
        Res::Present(v) | Res::Any(v) => {
            let slot = &mut env[target as usize];
            match slot {
                Res::Unknown | Res::Absent | Res::PresentUnknown => {
                    *slot = Res::Present(v);
                    Ok(true)
                }
                Res::Present(ref cv) | Res::Any(ref cv) => {
                    if cv == &v {
                        Ok(false)
                    } else {
                        Err(SignalError::SynchronizationViolation {
                            instant,
                            detail: format!(
                                "partial definitions give `{}` two values at the same instant",
                                names[target as usize]
                            ),
                        })
                    }
                }
            }
        }
        // An absent or unknown partial contributes nothing; absence of the
        // target can only be concluded globally.
        _ => Ok(false),
    }
}

fn when_result(e: &Res, b: &Res) -> Res {
    match b {
        Res::Absent => Res::Absent,
        Res::Present(v) | Res::Any(v) => {
            if v.as_bool() {
                match e {
                    Res::Present(x) | Res::Any(x) => Res::Present(x.clone()),
                    Res::PresentUnknown => Res::PresentUnknown,
                    Res::Absent => Res::Absent,
                    Res::Unknown => Res::Unknown,
                }
            } else {
                Res::Absent
            }
        }
        // The sampling condition is known present but its value is not known
        // yet: the result cannot be decided.
        Res::PresentUnknown => match e {
            Res::Absent => Res::Absent,
            _ => Res::Unknown,
        },
        Res::Unknown => match e {
            Res::Absent => Res::Absent,
            _ => Res::Unknown,
        },
    }
}

fn default_result(u: &Res, v: &Res) -> Res {
    match u {
        Res::Present(x) | Res::Any(x) => Res::Present(x.clone()),
        Res::PresentUnknown => Res::PresentUnknown,
        Res::Absent => match v {
            Res::Present(y) | Res::Any(y) => Res::Present(y.clone()),
            Res::PresentUnknown => Res::PresentUnknown,
            Res::Absent => Res::Absent,
            Res::Unknown => Res::Unknown,
        },
        Res::Unknown => Res::Unknown,
    }
}

fn cell_result(i: &Res, b: &Res, memory: &Value) -> Res {
    match i {
        Res::Present(v) | Res::Any(v) => Res::Present(v.clone()),
        Res::PresentUnknown => Res::PresentUnknown,
        Res::Absent => match b {
            Res::Present(bv) | Res::Any(bv) => {
                if bv.as_bool() {
                    Res::Present(memory.clone())
                } else {
                    Res::Absent
                }
            }
            Res::PresentUnknown => Res::Unknown,
            Res::Absent => Res::Absent,
            Res::Unknown => Res::Unknown,
        },
        Res::Unknown => Res::Unknown,
    }
}

fn clock_of_result(e: &Res) -> Res {
    match e {
        Res::Present(_) | Res::Any(_) | Res::PresentUnknown => Res::Present(Value::Event),
        Res::Absent => Res::Absent,
        Res::Unknown => Res::Unknown,
    }
}

fn clock_when_result(b: &Res) -> Res {
    match b {
        Res::Present(v) | Res::Any(v) => {
            if v.as_bool() {
                Res::Present(Value::Event)
            } else {
                Res::Absent
            }
        }
        Res::PresentUnknown => Res::Unknown,
        Res::Absent => Res::Absent,
        Res::Unknown => Res::Unknown,
    }
}

fn apply_unary(op: UnOp, v: &Res) -> Result<Res, SignalError> {
    match v {
        Res::Unknown => Ok(Res::Unknown),
        Res::PresentUnknown => Ok(Res::PresentUnknown),
        Res::Absent => Ok(Res::Absent),
        Res::Present(x) | Res::Any(x) => {
            let out = match op {
                UnOp::Neg => match x {
                    Value::Int(i) => Value::Int(-i),
                    Value::Real(r) => Value::Real(-r),
                    other => {
                        return Err(SignalError::TypeError {
                            detail: format!("cannot negate {other}"),
                        })
                    }
                },
                UnOp::Not => Value::Bool(!x.as_bool()),
            };
            Ok(match v {
                Res::Any(_) => Res::Any(out),
                _ => Res::Present(out),
            })
        }
    }
}

fn apply_binary(op: BinOp, a: &Res, b: &Res, instant: usize) -> Result<Res, SignalError> {
    match (a, b) {
        (Res::Unknown, _) | (_, Res::Unknown) => Ok(Res::Unknown),
        (Res::Absent, Res::Absent) => Ok(Res::Absent),
        (Res::Absent, Res::Any(_)) | (Res::Any(_), Res::Absent) => Ok(Res::Absent),
        (Res::Absent, Res::Present(_) | Res::PresentUnknown)
        | (Res::Present(_) | Res::PresentUnknown, Res::Absent) => {
            Err(SignalError::SynchronizationViolation {
                instant,
                detail: format!("operands of `{}` are not synchronous", op.symbol()),
            })
        }
        (Res::PresentUnknown, _) | (_, Res::PresentUnknown) => Ok(Res::PresentUnknown),
        (Res::Present(x) | Res::Any(x), Res::Present(y) | Res::Any(y)) => {
            let out = compute_binary(op, x, y)?;
            if matches!(a, Res::Any(_)) && matches!(b, Res::Any(_)) {
                Ok(Res::Any(out))
            } else {
                Ok(Res::Present(out))
            }
        }
    }
}

fn compute_binary(op: BinOp, x: &Value, y: &Value) -> Result<Value, SignalError> {
    use BinOp::*;
    let type_err = || SignalError::TypeError {
        detail: format!("cannot apply `{}` to {x} and {y}", op.symbol()),
    };
    match op {
        And => Ok(Value::Bool(x.as_bool() && y.as_bool())),
        Or => Ok(Value::Bool(x.as_bool() || y.as_bool())),
        Eq => Ok(Value::Bool(values_equal(x, y))),
        Ne => Ok(Value::Bool(!values_equal(x, y))),
        Lt | Le | Gt | Ge => {
            let (a, b) = (
                x.as_real().ok_or_else(type_err)?,
                y.as_real().ok_or_else(type_err)?,
            );
            let r = match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        Add | Sub | Mul | Div | Mod => match (x, y) {
            (Value::Int(a), Value::Int(b)) => {
                let r = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    Div => {
                        if *b == 0 {
                            return Err(SignalError::TypeError {
                                detail: "integer division by zero".into(),
                            });
                        }
                        a / b
                    }
                    Mod => {
                        if *b == 0 {
                            return Err(SignalError::TypeError {
                                detail: "integer modulo by zero".into(),
                            });
                        }
                        a.rem_euclid(*b)
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(r))
            }
            _ => {
                let (a, b) = (
                    x.as_real().ok_or_else(type_err)?,
                    y.as_real().ok_or_else(type_err)?,
                );
                let r = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a.rem_euclid(b),
                    _ => unreachable!(),
                };
                Ok(Value::Real(r))
            }
        },
    }
}

fn values_equal(x: &Value, y: &Value) -> bool {
    match (x, y) {
        (Value::Int(a), Value::Real(b)) | (Value::Real(b), Value::Int(a)) => (*a as f64) == *b,
        _ => x == y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::value::ValueType;

    fn run_process(p: &Process, inputs: &Trace) -> Trace {
        Evaluator::new(p).unwrap().run(inputs).unwrap()
    }

    #[test]
    fn counter_counts_ticks() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        for t in [0usize, 2, 3, 5] {
            inputs.set(t, "tick", Value::Event);
        }
        inputs.step_mut(6);
        let out = run_process(&p, &inputs);
        assert_eq!(out.clock_of("count"), vec![0, 2, 3, 5]);
        assert_eq!(
            out.flow_of("count"),
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]
        );
    }

    #[test]
    fn when_samples_on_true() {
        let mut b = ProcessBuilder::new("sampler");
        b.input("x", ValueType::Integer);
        b.input("c", ValueType::Boolean);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::when(Expr::var("x"), Expr::var("c")));
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        inputs.set(0, "x", Value::Int(10));
        inputs.set(0, "c", Value::Bool(true));
        inputs.set(1, "x", Value::Int(20));
        inputs.set(1, "c", Value::Bool(false));
        inputs.set(2, "x", Value::Int(30));
        // c absent at 2
        let out = run_process(&p, &inputs);
        assert_eq!(out.clock_of("y"), vec![0]);
        assert_eq!(out.flow_of("y"), vec![Value::Int(10)]);
    }

    #[test]
    fn default_merges_deterministically() {
        let mut b = ProcessBuilder::new("merge");
        b.input("u", ValueType::Integer);
        b.input("v", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::default(Expr::var("u"), Expr::var("v")));
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        inputs.set(0, "u", Value::Int(1));
        inputs.set(0, "v", Value::Int(9));
        inputs.set(1, "v", Value::Int(2));
        inputs.step_mut(2);
        let out = run_process(&p, &inputs);
        assert_eq!(out.flow_of("y"), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(out.clock_of("y"), vec![0, 1]);
    }

    #[test]
    fn cell_implements_memory_process_fm() {
        // o = fm(i, b): o holds i when i present, previous i when b true.
        let mut b = ProcessBuilder::new("fm");
        b.input("i", ValueType::Integer);
        b.input("b", ValueType::Boolean);
        b.output("o", ValueType::Integer);
        b.define(
            "o",
            Expr::cell(Expr::var("i"), Expr::var("b"), Value::Int(0)),
        );
        let p = b.build().unwrap();

        let mut inputs = Trace::new();
        // t0: i=5 (b absent)  -> o=5
        // t1: b=true          -> o=5 (memorised)
        // t2: b=false         -> absent
        // t3: i=7, b=true     -> o=7
        // t4: b=true          -> o=7
        inputs.set(0, "i", Value::Int(5));
        inputs.set(1, "b", Value::Bool(true));
        inputs.set(2, "b", Value::Bool(false));
        inputs.set(3, "i", Value::Int(7));
        inputs.set(3, "b", Value::Bool(true));
        inputs.set(4, "b", Value::Bool(true));
        let out = run_process(&p, &inputs);
        assert_eq!(out.clock_of("o"), vec![0, 1, 3, 4]);
        assert_eq!(
            out.flow_of("o"),
            vec![Value::Int(5), Value::Int(5), Value::Int(7), Value::Int(7)]
        );
    }

    #[test]
    fn synchronization_violation_detected() {
        let mut b = ProcessBuilder::new("sync");
        b.input("a", ValueType::Integer);
        b.input("b", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.define("y", Expr::add(Expr::var("a"), Expr::var("b")));
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Int(1));
        // b absent at 0: a + b is not computable.
        let err = Evaluator::new(&p).unwrap().run(&inputs).unwrap_err();
        assert!(matches!(err, SignalError::SynchronizationViolation { .. }));
    }

    #[test]
    fn clock_constraint_checked() {
        let mut b = ProcessBuilder::new("constrained");
        b.input("a", ValueType::Event);
        b.input("b", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::var("a"));
        b.synchronize(&["a", "b"]);
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Event);
        let err = Evaluator::new(&p).unwrap().run(&inputs).unwrap_err();
        assert!(matches!(err, SignalError::SynchronizationViolation { .. }));
    }

    #[test]
    fn exclusion_constraint_checked() {
        let mut b = ProcessBuilder::new("excl");
        b.input("r", ValueType::Event);
        b.input("w", ValueType::Event);
        b.output("y", ValueType::Event);
        b.define("y", Expr::default(Expr::var("r"), Expr::var("w")));
        b.exclude(&["r", "w"]);
        let p = b.build().unwrap();
        let mut ok_inputs = Trace::new();
        ok_inputs.set(0, "r", Value::Event);
        ok_inputs.set(1, "w", Value::Event);
        Evaluator::new(&p).unwrap().run(&ok_inputs).unwrap();
        let mut bad_inputs = Trace::new();
        bad_inputs.set(0, "r", Value::Event);
        bad_inputs.set(0, "w", Value::Event);
        let err = Evaluator::new(&p).unwrap().run(&bad_inputs).unwrap_err();
        assert!(matches!(err, SignalError::SynchronizationViolation { .. }));
    }

    #[test]
    fn partial_definitions_merge() {
        // x ::= a when ca ; x ::= b when cb with exclusive conditions.
        let mut bld = ProcessBuilder::new("partial");
        bld.input("a", ValueType::Integer);
        bld.input("b", ValueType::Integer);
        bld.input("ca", ValueType::Boolean);
        bld.input("cb", ValueType::Boolean);
        bld.output("x", ValueType::Integer);
        bld.define_partial("x", Expr::when(Expr::var("a"), Expr::var("ca")));
        bld.define_partial("x", Expr::when(Expr::var("b"), Expr::var("cb")));
        let p = bld.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Int(1));
        inputs.set(0, "ca", Value::Bool(true));
        inputs.set(0, "cb", Value::Bool(false));
        inputs.set(1, "b", Value::Int(2));
        inputs.set(1, "ca", Value::Bool(false));
        inputs.set(1, "cb", Value::Bool(true));
        inputs.step_mut(2);
        let out = run_process(&p, &inputs);
        assert_eq!(out.flow_of("x"), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn conflicting_partials_rejected() {
        let mut bld = ProcessBuilder::new("conflict");
        bld.input("a", ValueType::Integer);
        bld.input("b", ValueType::Integer);
        bld.output("x", ValueType::Integer);
        bld.define_partial("x", Expr::var("a"));
        bld.define_partial("x", Expr::var("b"));
        let p = bld.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "a", Value::Int(1));
        inputs.set(0, "b", Value::Int(2));
        let err = Evaluator::new(&p).unwrap().run(&inputs).unwrap_err();
        assert!(matches!(
            err,
            SignalError::SynchronizationViolation { .. } | SignalError::MultipleDefinitions { .. }
        ));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "tick", Value::Event);
        let mut eval = Evaluator::new(&p).unwrap();
        let first = eval.run(&inputs).unwrap();
        let second = eval.run(&inputs).unwrap();
        assert_eq!(second.flow_of("count"), vec![Value::Int(2)]);
        eval.reset();
        let third = eval.run(&inputs).unwrap();
        assert_eq!(first.flow_of("count"), third.flow_of("count"));
    }

    #[test]
    fn memory_snapshot_round_trips() {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let p = b.build().unwrap();
        let mut inputs = Trace::new();
        inputs.set(0, "tick", Value::Event);
        let mut eval = Evaluator::new(&p).unwrap();
        assert_eq!(eval.memory_len(), 1);
        assert_eq!(eval.memory(), vec![Value::Int(0)]);
        eval.run(&inputs).unwrap();
        let snapshot = eval.memory();
        assert_eq!(snapshot, vec![Value::Int(1)]);
        eval.run(&inputs).unwrap();
        assert_eq!(eval.memory(), vec![Value::Int(2)]);
        // Restoring the snapshot replays the same future.
        eval.restore_memory(&snapshot).unwrap();
        let out = eval.run(&inputs).unwrap();
        assert_eq!(out.flow_of("count"), vec![Value::Int(2)]);
        // Arity is checked.
        assert!(eval.restore_memory(&[]).is_err());
    }

    #[test]
    fn evaluator_rejects_unflattened_process() {
        let mut b = ProcessBuilder::new("parent");
        b.input("x", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.instance("child", "c1", &["x"], &["y"]);
        let p = b.build().unwrap();
        assert!(Evaluator::new(&p).is_err());
    }

    #[test]
    fn resolved_view_matches_materialised_step() {
        let mut b = ProcessBuilder::new("viewed");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        let p = b.build().unwrap();
        let mut input = TraceStep::new();
        input.set("tick", Value::Event);

        let mut by_step = Evaluator::new(&p).unwrap();
        let step = by_step.step(0, &input).unwrap();

        let mut by_view = Evaluator::new(&p).unwrap();
        let view = by_view.step_resolved(0, &input).unwrap();
        for (name, value) in step.iter() {
            assert_eq!(view.value_of(name), Some(value));
        }
        assert!(view.value_of("no_such_signal").is_none());
        // Name-sorted visit order, like a TraceStep's BTreeMap.
        let first = view.first_present_matching(&mut |_, _| true);
        assert_eq!(first.as_deref(), Some("count"));
    }
}
