//! SIGNAL automata: lightweight mode automata used to model thread behaviour
//! (e.g. the `thProducer` automaton of the case study) and to check their
//! determinism, with and without transition priorities.
//!
//! The paper reports (Section V-C) that the clock calculus found the
//! `thProducer` automaton non-deterministic when no priorities are specified
//! on its transitions; adding priorities restores determinism. This module
//! reproduces that analysis and also compiles an automaton into a SIGNAL
//! process (state held in a delayed signal, transitions as partial
//! definitions) so that the rest of the tool chain can treat modes uniformly.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::builder::ProcessBuilder;
use crate::error::SignalError;
use crate::expr::Expr;
use crate::process::Process;
use crate::value::{Value, ValueType};

/// A transition of a mode automaton.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: String,
    /// Destination state.
    pub to: String,
    /// Name of the boolean/event signal guarding the transition.
    pub guard: String,
    /// Optional priority: among simultaneously enabled transitions leaving
    /// the same state, the one with the *lowest* priority value fires.
    pub priority: Option<u32>,
}

/// A mode automaton over named states and signal guards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Automaton {
    /// Automaton name (used for the generated SIGNAL process).
    pub name: String,
    /// State names; the first one is initial.
    pub states: Vec<String>,
    /// Transitions.
    pub transitions: Vec<Transition>,
}

/// One reason why an automaton is not deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conflict {
    /// State from which the conflicting transitions leave.
    pub state: String,
    /// Guards of the two conflicting transitions.
    pub guards: (String, String),
}

impl Automaton {
    /// Creates an automaton with the given name and initial state.
    pub fn new(name: impl Into<String>, initial_state: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            states: vec![initial_state.into()],
            transitions: Vec::new(),
        }
    }

    /// Adds a state (idempotent).
    pub fn add_state(&mut self, state: impl Into<String>) -> &mut Self {
        let state = state.into();
        if !self.states.contains(&state) {
            self.states.push(state);
        }
        self
    }

    /// Adds a transition without a priority.
    pub fn add_transition(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        guard: impl Into<String>,
    ) -> &mut Self {
        self.add_prioritized_transition(from, to, guard, None)
    }

    /// Adds a transition with an explicit priority.
    pub fn add_prioritized_transition(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        guard: impl Into<String>,
        priority: Option<u32>,
    ) -> &mut Self {
        let from = from.into();
        let to = to.into();
        self.add_state(from.clone());
        self.add_state(to.clone());
        self.transitions.push(Transition {
            from,
            to,
            guard: guard.into(),
            priority,
        });
        self
    }

    /// The initial state.
    pub fn initial_state(&self) -> &str {
        &self.states[0]
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Assigns increasing priorities (in declaration order) to every
    /// transition that lacks one — the fix applied to the case-study
    /// automaton.
    pub fn assign_default_priorities(&mut self) {
        let mut next: BTreeMap<String, u32> = BTreeMap::new();
        for t in &mut self.transitions {
            let counter = next.entry(t.from.clone()).or_insert(0);
            if t.priority.is_none() {
                t.priority = Some(*counter);
            }
            *counter += 1;
        }
    }

    /// Determinism check: two transitions leaving the same state with guards
    /// that are not provably exclusive and without distinct priorities are a
    /// conflict. Distinct guard signals are conservatively considered
    /// possibly simultaneous (they may be present at the same instant), so
    /// priorities are required — matching the Polychrony verdict on the
    /// `thProducer` automaton.
    pub fn conflicts(&self) -> Vec<Conflict> {
        let mut conflicts = Vec::new();
        for (i, a) in self.transitions.iter().enumerate() {
            for b in &self.transitions[i + 1..] {
                if a.from != b.from {
                    continue;
                }
                let distinct_priorities = match (a.priority, b.priority) {
                    (Some(x), Some(y)) => x != y,
                    _ => false,
                };
                if !distinct_priorities {
                    conflicts.push(Conflict {
                        state: a.from.clone(),
                        guards: (a.guard.clone(), b.guard.clone()),
                    });
                }
            }
        }
        conflicts
    }

    /// Returns `true` when the automaton has no conflicting transitions.
    pub fn is_deterministic(&self) -> bool {
        self.conflicts().is_empty()
    }

    /// Compiles the automaton into a SIGNAL process.
    ///
    /// The generated process has one input per guard signal, a `tick` input
    /// giving the automaton's activation clock, and an integer `state`
    /// output. The state is held in a delayed signal; each transition becomes
    /// a partial definition of the next state, guarded by the current state
    /// and the transition guard, with priorities encoded by guard
    /// strengthening (a transition only fires when no higher-priority
    /// transition from the same state is enabled).
    ///
    /// # Errors
    ///
    /// Returns an error if the generated process fails validation.
    pub fn to_process(&self) -> Result<Process, SignalError> {
        let mut b = ProcessBuilder::new(self.name.clone());
        b.input("tick", ValueType::Event);
        let mut guards: Vec<&str> = self.transitions.iter().map(|t| t.guard.as_str()).collect();
        guards.sort();
        guards.dedup();
        for g in &guards {
            b.input(*g, ValueType::Boolean);
        }
        b.output("state", ValueType::Integer);
        b.local("prev_state", ValueType::Integer);

        let state_index: BTreeMap<&str, i64> = self
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i as i64))
            .collect();

        b.define("prev_state", Expr::delay(Expr::var("state"), Value::Int(0)));

        // Order transitions by (state, priority) so that guard strengthening
        // follows priorities.
        let mut ordered: Vec<&Transition> = self.transitions.iter().collect();
        ordered.sort_by_key(|t| (t.from.clone(), t.priority.unwrap_or(u32::MAX)));

        let mut fired_guards_per_state: BTreeMap<&str, Vec<Expr>> = BTreeMap::new();
        let mut any_fired: Option<Expr> = None;
        for t in &ordered {
            let from_idx = state_index[t.from.as_str()];
            let to_idx = state_index[t.to.as_str()];
            let in_state = Expr::eq(Expr::var("prev_state"), Expr::int(from_idx));
            let mut guard = Expr::and(
                in_state,
                Expr::default(Expr::var(&t.guard), Expr::bool(false)),
            );
            // Strengthen with the negation of the guards of higher-priority
            // transitions from the same state.
            if let Some(previous) = fired_guards_per_state.get(t.from.as_str()) {
                for p in previous {
                    guard = Expr::and(guard, Expr::not(p.clone()));
                }
            }
            fired_guards_per_state
                .entry(t.from.as_str())
                .or_default()
                .push(Expr::default(Expr::var(&t.guard), Expr::bool(false)));
            any_fired = Some(match any_fired {
                None => guard.clone(),
                Some(acc) => Expr::or(acc, guard.clone()),
            });
            b.define_partial(
                "state",
                Expr::when(Expr::int(to_idx), Expr::when(guard, Expr::var("tick"))),
            );
        }
        // Default: stay in the same state when no transition fires.
        match any_fired {
            Some(any) => b.define_partial(
                "state",
                Expr::when(
                    Expr::var("prev_state"),
                    Expr::when(Expr::not(any), Expr::var("tick")),
                ),
            ),
            None => b.define_partial("state", Expr::var("prev_state")),
        };
        b.synchronize(&["state", "prev_state", "tick"]);
        b.annotate("automaton::states", self.states.join(","));
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `thProducer` behaviour automaton sketched in the case study:
    /// waiting → producing on start, producing → waiting on done or timeout.
    fn producer_automaton(with_priorities: bool) -> Automaton {
        let mut a = Automaton::new("thProducer_behavior", "waiting");
        a.add_transition("waiting", "producing", "pProdStart");
        a.add_prioritized_transition(
            "producing",
            "waiting",
            "pProdDone",
            with_priorities.then_some(0),
        );
        a.add_prioritized_transition(
            "producing",
            "waiting",
            "pTimeOut",
            with_priorities.then_some(1),
        );
        a
    }

    #[test]
    fn without_priorities_the_automaton_is_non_deterministic() {
        let a = producer_automaton(false);
        assert!(!a.is_deterministic());
        let conflicts = a.conflicts();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].state, "producing");
    }

    #[test]
    fn with_priorities_the_automaton_is_deterministic() {
        let a = producer_automaton(true);
        assert!(a.is_deterministic());
        assert!(a.conflicts().is_empty());
    }

    #[test]
    fn assign_default_priorities_fixes_conflicts() {
        let mut a = producer_automaton(false);
        a.assign_default_priorities();
        assert!(a.is_deterministic());
    }

    #[test]
    fn to_process_generates_valid_signal() {
        let mut a = producer_automaton(false);
        a.assign_default_priorities();
        let p = a.to_process().unwrap();
        assert!(p.signal("state").is_some());
        assert!(p.signal("pProdStart").is_some());
        assert!(p.equation_count() >= 4);
        p.validate().unwrap();
    }

    #[test]
    fn compiled_automaton_executes() {
        use crate::eval::Evaluator;
        use crate::trace::Trace;

        let mut a = producer_automaton(true);
        a.assign_default_priorities();
        let p = a.to_process().unwrap();
        let mut inputs = Trace::new();
        // t0: start produces -> state 1; t1: idle stays 1; t2: done -> 0.
        for t in 0..3 {
            inputs.set(t, "tick", Value::Event);
            inputs.set(t, "pProdStart", Value::Bool(t == 0));
            inputs.set(t, "pProdDone", Value::Bool(t == 2));
            inputs.set(t, "pTimeOut", Value::Bool(false));
        }
        let out = Evaluator::new(&p).unwrap().run(&inputs).unwrap();
        assert_eq!(
            out.flow_of("state"),
            vec![Value::Int(1), Value::Int(1), Value::Int(0)]
        );
    }

    #[test]
    fn state_bookkeeping() {
        let a = producer_automaton(true);
        assert_eq!(a.initial_state(), "waiting");
        assert_eq!(a.state_count(), 2);
    }
}
