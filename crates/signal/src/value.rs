//! Values and types carried by SIGNAL signals.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The type of a SIGNAL signal.
///
/// SIGNAL is a typed language; the subset needed by the AADL translation
/// uses events (pure clocks), booleans, integers, reals and strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// A pure event: present/absent, carrying no value (always `true` when
    /// present, like the SIGNAL `event` type).
    Event,
    /// A boolean signal.
    Boolean,
    /// A (bounded, 64-bit) integer signal.
    Integer,
    /// A real (IEEE 754 double) signal.
    Real,
    /// A string signal — used for labels and trace annotations.
    Text,
}

impl ValueType {
    /// Returns `true` when a value of type `self` can be produced where a
    /// value of type `other` is expected (identity plus integer → real
    /// promotion, as in SIGNAL's implicit conversions).
    pub fn is_assignable_to(self, other: ValueType) -> bool {
        self == other
            || matches!((self, other), (ValueType::Integer, ValueType::Real))
            || matches!((self, other), (ValueType::Event, ValueType::Boolean))
    }

    /// Default value used to initialise delays when no `init` is given.
    pub fn default_value(self) -> Value {
        match self {
            ValueType::Event => Value::Event,
            ValueType::Boolean => Value::Bool(false),
            ValueType::Integer => Value::Int(0),
            ValueType::Real => Value::Real(0.0),
            ValueType::Text => Value::Text(String::new()),
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Event => "event",
            ValueType::Boolean => "boolean",
            ValueType::Integer => "integer",
            ValueType::Real => "real",
            ValueType::Text => "string",
        };
        f.write_str(s)
    }
}

/// A value carried by a signal at an instant where it is present.
///
/// Absence is *not* a value: it is represented by `Option::None` in traces
/// (the `⊥` of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A pure event occurrence.
    Event,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A double-precision real.
    Real(f64),
    /// A string.
    Text(String),
}

impl Value {
    /// The [`ValueType`] of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Event => ValueType::Event,
            Value::Bool(_) => ValueType::Boolean,
            Value::Int(_) => ValueType::Integer,
            Value::Real(_) => ValueType::Real,
            Value::Text(_) => ValueType::Text,
        }
    }

    /// Interprets the value as a boolean condition.
    ///
    /// Events are `true` (an event is present ⇒ its condition holds),
    /// booleans are themselves, numbers are non-zero, strings are non-empty.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Event => true,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Real(r) => *r != 0.0,
            Value::Text(s) => !s.is_empty(),
        }
    }

    /// Interprets the value as an integer if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Real(r) => Some(*r as i64),
            _ => None,
        }
    }

    /// Interprets the value as a real if possible.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Int(i) => Some(*i as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Event => write!(f, "!"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "\"{s}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_round_trip() {
        assert_eq!(Value::Event.value_type(), ValueType::Event);
        assert_eq!(Value::Bool(true).value_type(), ValueType::Boolean);
        assert_eq!(Value::Int(3).value_type(), ValueType::Integer);
        assert_eq!(Value::Real(1.5).value_type(), ValueType::Real);
        assert_eq!(Value::Text("x".into()).value_type(), ValueType::Text);
    }

    #[test]
    fn assignability_rules() {
        assert!(ValueType::Integer.is_assignable_to(ValueType::Real));
        assert!(!ValueType::Real.is_assignable_to(ValueType::Integer));
        assert!(ValueType::Event.is_assignable_to(ValueType::Boolean));
        assert!(ValueType::Boolean.is_assignable_to(ValueType::Boolean));
    }

    #[test]
    fn boolean_interpretation() {
        assert!(Value::Event.as_bool());
        assert!(Value::Int(2).as_bool());
        assert!(!Value::Int(0).as_bool());
        assert!(!Value::Text(String::new()).as_bool());
        assert!(Value::Text("x".into()).as_bool());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Real(2.5).as_int(), Some(2));
        assert_eq!(Value::Int(2).as_real(), Some(2.0));
        assert_eq!(Value::Text("x".into()).as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Event.to_string(), "!");
        assert_eq!(Value::Text("hi".into()).to_string(), "\"hi\"");
        assert_eq!(ValueType::Integer.to_string(), "integer");
    }

    #[test]
    fn default_values_match_types() {
        for ty in [
            ValueType::Event,
            ValueType::Boolean,
            ValueType::Integer,
            ValueType::Real,
            ValueType::Text,
        ] {
            assert_eq!(ty.default_value().value_type(), ty);
        }
    }
}
