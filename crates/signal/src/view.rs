//! Borrowed views of one resolved instant.
//!
//! The model checker steps property monitors over the signals resolved at
//! each instant. Materialising a [`TraceStep`] (a name-keyed `BTreeMap`) per
//! successor is the dominant allocation of the exploration hot path, so the
//! monitors instead read instants through [`InstantView`]: an abstract,
//! borrow-only interface that a `TraceStep` implements (for replay and
//! tests) and that the evaluator implements directly over its internal
//! dense environment (see [`crate::eval::ResolvedStep`]).

use crate::trace::TraceStep;
use crate::value::Value;

/// Read-only access to the signals present at one resolved instant.
///
/// Implementations must visit signals in **name-sorted order** in
/// [`InstantView::first_present_matching`]: witness extraction (the first
/// raised signal matching a pattern) is part of the deterministic
/// counterexample contract, so every view of the same instant must report
/// the same signal first.
pub trait InstantView {
    /// The value of `name` at this instant, or `None` when absent.
    fn value_of(&self, name: &str) -> Option<&Value>;

    /// Whether `name` is present at this instant.
    fn is_present(&self, name: &str) -> bool {
        self.value_of(name).is_some()
    }

    /// Visits the present signals in name-sorted order and returns the name
    /// of the first one accepted by `accept`.
    fn first_present_matching(
        &self,
        accept: &mut dyn FnMut(&str, &Value) -> bool,
    ) -> Option<String>;
}

impl InstantView for TraceStep {
    fn value_of(&self, name: &str) -> Option<&Value> {
        self.get(name)
    }

    fn is_present(&self, name: &str) -> bool {
        TraceStep::is_present(self, name)
    }

    fn first_present_matching(
        &self,
        accept: &mut dyn FnMut(&str, &Value) -> bool,
    ) -> Option<String> {
        // `TraceStep` iterates its underlying `BTreeMap`, which is already
        // name-sorted.
        self.iter()
            .find(|(name, value)| accept(name, value))
            .map(|(name, _)| name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_step_view_reports_in_name_order() {
        let mut step = TraceStep::new();
        step.set("zeta", Value::Bool(true));
        step.set("alpha", Value::Bool(true));
        step.set("mid", Value::Bool(false));
        assert_eq!(step.value_of("alpha"), Some(&Value::Bool(true)));
        assert!(InstantView::is_present(&step, "mid"));
        assert!(!InstantView::is_present(&step, "nope"));
        let first = step.first_present_matching(&mut |_, v| v.as_bool());
        assert_eq!(first.as_deref(), Some("alpha"));
    }
}
