//! Ergonomic construction of SIGNAL processes.

use crate::error::SignalError;
use crate::expr::Expr;
use crate::process::{Equation, Process, SignalDecl, SignalRole};
use crate::value::ValueType;

/// Builder for [`Process`] values.
///
/// The AADL-to-SIGNAL translator constructs many processes with a regular
/// shape; the builder keeps that code readable and guarantees that the
/// resulting process passes [`Process::validate`].
///
/// ```
/// use signal_moc::builder::ProcessBuilder;
/// use signal_moc::expr::Expr;
/// use signal_moc::value::ValueType;
///
/// let mut b = ProcessBuilder::new("sampler");
/// b.input("x", ValueType::Integer);
/// b.input("c", ValueType::Boolean);
/// b.output("y", ValueType::Integer);
/// b.define("y", Expr::when(Expr::var("x"), Expr::var("c")));
/// let process = b.build()?;
/// assert_eq!(process.equation_count(), 1);
/// # Ok::<(), signal_moc::SignalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProcessBuilder {
    process: Process,
}

impl ProcessBuilder {
    /// Starts building a process with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            process: Process::new(name),
        }
    }

    /// Declares an input signal.
    pub fn input(&mut self, name: impl Into<String>, ty: ValueType) -> &mut Self {
        self.declare(name, ty, SignalRole::Input)
    }

    /// Declares an output signal.
    pub fn output(&mut self, name: impl Into<String>, ty: ValueType) -> &mut Self {
        self.declare(name, ty, SignalRole::Output)
    }

    /// Declares a local signal.
    pub fn local(&mut self, name: impl Into<String>, ty: ValueType) -> &mut Self {
        self.declare(name, ty, SignalRole::Local)
    }

    fn declare(&mut self, name: impl Into<String>, ty: ValueType, role: SignalRole) -> &mut Self {
        self.process.signals.push(SignalDecl {
            name: name.into(),
            ty,
            role,
        });
        self
    }

    /// Adds a total definition `target := expr`.
    pub fn define(&mut self, target: impl Into<String>, expr: Expr) -> &mut Self {
        self.process.equations.push(Equation::Definition {
            target: target.into(),
            expr,
        });
        self
    }

    /// Adds a partial definition `target ::= expr`.
    pub fn define_partial(&mut self, target: impl Into<String>, expr: Expr) -> &mut Self {
        self.process.equations.push(Equation::PartialDefinition {
            target: target.into(),
            expr,
        });
        self
    }

    /// Adds a clock synchronisation constraint `s1 ^= s2 ^= …`.
    pub fn synchronize(&mut self, signals: &[&str]) -> &mut Self {
        self.process.equations.push(Equation::ClockConstraint {
            signals: signals.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Adds a clock exclusion constraint (the signals are pairwise never
    /// simultaneously present).
    pub fn exclude(&mut self, signals: &[&str]) -> &mut Self {
        self.process.equations.push(Equation::ClockExclusion {
            signals: signals.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Adds a sub-process instance.
    pub fn instance(
        &mut self,
        process: impl Into<String>,
        label: impl Into<String>,
        inputs: &[&str],
        outputs: &[&str],
    ) -> &mut Self {
        self.process.equations.push(Equation::Instance {
            process: process.into(),
            label: label.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Attaches a traceability annotation.
    pub fn annotate(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.process.annotate(key, value);
        self
    }

    /// Finishes the process and validates it.
    ///
    /// # Errors
    ///
    /// Returns the validation error if the process is structurally invalid
    /// (duplicate or undeclared signals, outputs with no definition).
    pub fn build(self) -> Result<Process, SignalError> {
        self.process.validate()?;
        Ok(self.process)
    }

    /// Finishes the process without validation. Useful when the process is a
    /// fragment to be completed by a later pass (e.g. instance connection).
    pub fn build_unchecked(self) -> Process {
        self.process
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn build_validates() {
        let mut b = ProcessBuilder::new("bad");
        b.output("y", ValueType::Integer);
        // no definition for y
        assert!(matches!(
            b.build(),
            Err(SignalError::UndefinedOutput { .. })
        ));
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let mut b = ProcessBuilder::new("fragment");
        b.output("y", ValueType::Integer);
        let p = b.build_unchecked();
        assert_eq!(p.name, "fragment");
    }

    #[test]
    fn full_builder_round_trip() {
        let mut b = ProcessBuilder::new("mem");
        b.input("i", ValueType::Integer)
            .input("b", ValueType::Boolean)
            .output("o", ValueType::Integer)
            .local("z", ValueType::Integer)
            .define("z", Expr::delay(Expr::var("o"), Value::Int(0)))
            .define(
                "o",
                Expr::default(Expr::var("i"), Expr::when(Expr::var("z"), Expr::var("b"))),
            )
            .synchronize(&["o", "z"])
            .annotate("aadl::path", "prProdCons.Queue");
        let p = b.build().unwrap();
        assert_eq!(p.inputs().count(), 2);
        assert_eq!(p.outputs().count(), 1);
        assert_eq!(p.locals().count(), 1);
        assert_eq!(p.annotations["aadl::path"], "prProdCons.Queue");
    }

    #[test]
    fn exclusion_and_instances_are_recorded() {
        let mut b = ProcessBuilder::new("top");
        b.input("r", ValueType::Event)
            .input("w", ValueType::Event)
            .exclude(&["r", "w"])
            .instance("fifo", "queue_1", &["r"], &[]);
        let p = b.build_unchecked();
        assert_eq!(p.equations.len(), 2);
    }
}
