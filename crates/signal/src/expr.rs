//! SIGNAL expressions built from the polychronous kernel operators.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Binary step-wise operators (applied point-wise at instants where all
/// operands are present).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer / real division.
    Div,
    /// Modulo.
    Mod,
    /// Equality test.
    Eq,
    /// Inequality test.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl BinOp {
    /// SIGNAL surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "modulo",
            BinOp::Eq => "=",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary step-wise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

impl UnOp {
    /// SIGNAL surface syntax for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "not",
        }
    }
}

/// A SIGNAL expression.
///
/// The kernel of the polychronous model of computation (Section III of the
/// paper): step-wise functions, `delay` (`$ 1 init c`), sampling (`when`),
/// deterministic merge (`default`), plus the derived operators used heavily
/// by the AADL translation — `cell` (the "memory" process `fm(i, b)` of
/// Section IV-C) and clock expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a signal by name.
    Var(String),
    /// A constant, present at the context clock.
    Const(Value),
    /// Unary step-wise function.
    Unary(UnOp, Box<Expr>),
    /// Binary step-wise function.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `e $ 1 init v` — the previous value of `e`, initialised to `v`.
    /// Present exactly when `e` is present.
    Delay(Box<Expr>, Value),
    /// `e when b` — `e` sampled at the instants where `b` is present and
    /// true.
    When(Box<Expr>, Box<Expr>),
    /// `u default v` — `u` when present, otherwise `v`.
    Default(Box<Expr>, Box<Expr>),
    /// `i cell b init v` — the memory process `fm(i, b)` of the paper:
    /// present when `i` is present or `b` is present and true; holds the
    /// current `i` when present, otherwise the last value of `i` (initially
    /// `v`).
    Cell(Box<Expr>, Box<Expr>, Value),
    /// `^e` — the clock of `e` as an event signal.
    ClockOf(Box<Expr>),
    /// `when b` — the sub-clock of the instants where boolean `b` is true
    /// (an event signal).
    ClockWhen(Box<Expr>),
}

// The `add`/`sub`/`mul`/`not` constructors are free functions over two
// expressions, not `self`-consuming operators, so the std ops traits do not
// fit their shape.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Convenience constructor for a signal reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for an integer constant.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Convenience constructor for a boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Convenience constructor for an event constant.
    pub fn event() -> Expr {
        Expr::Const(Value::Event)
    }

    /// Convenience constructor for a text constant.
    pub fn text(s: impl Into<String>) -> Expr {
        Expr::Const(Value::Text(s.into()))
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a = b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(a), Box::new(b))
    }

    /// `a /= b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(a), Box::new(b))
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(a), Box::new(b))
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(a), Box::new(b))
    }

    /// `a and b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(a), Box::new(b))
    }

    /// `a or b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(a), Box::new(b))
    }

    /// `not a`.
    pub fn not(a: Expr) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(a))
    }

    /// `e $ 1 init v`.
    pub fn delay(e: Expr, init: Value) -> Expr {
        Expr::Delay(Box::new(e), init)
    }

    /// `e when b`.
    pub fn when(e: Expr, b: Expr) -> Expr {
        Expr::When(Box::new(e), Box::new(b))
    }

    /// `u default v`.
    pub fn default(u: Expr, v: Expr) -> Expr {
        Expr::Default(Box::new(u), Box::new(v))
    }

    /// `i cell b init v` — the memory process `fm(i, b)`.
    pub fn cell(i: Expr, b: Expr, init: Value) -> Expr {
        Expr::Cell(Box::new(i), Box::new(b), init)
    }

    /// `^e`.
    pub fn clock_of(e: Expr) -> Expr {
        Expr::ClockOf(Box::new(e))
    }

    /// `when b` as an event clock.
    pub fn clock_when(b: Expr) -> Expr {
        Expr::ClockWhen(Box::new(b))
    }

    /// Collects the names of all signals referenced by this expression.
    pub fn referenced_signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_refs(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(name) => out.push(name.clone()),
            Expr::Const(_) => {}
            Expr::Unary(_, e) | Expr::ClockOf(e) | Expr::ClockWhen(e) => e.collect_refs(out),
            Expr::Binary(_, a, b) | Expr::When(a, b) | Expr::Default(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Delay(e, _) => e.collect_refs(out),
            Expr::Cell(i, b, _) => {
                i.collect_refs(out);
                b.collect_refs(out);
            }
        }
    }

    /// Collects the names of signals whose *current* value is needed to
    /// compute this expression (i.e. excluding signals only reached through a
    /// `delay`, which depend on the previous instant). Used to build the
    /// instantaneous dependency graph for deadlock detection.
    pub fn instantaneous_dependencies(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_instant_deps(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_instant_deps(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(name) => out.push(name.clone()),
            Expr::Const(_) => {}
            Expr::Unary(_, e) | Expr::ClockOf(e) | Expr::ClockWhen(e) => {
                e.collect_instant_deps(out)
            }
            Expr::Binary(_, a, b) | Expr::When(a, b) | Expr::Default(a, b) => {
                a.collect_instant_deps(out);
                b.collect_instant_deps(out);
            }
            // A delay only needs the *previous* value; however its clock is the
            // clock of its operand, so presence still depends on the operand's
            // clock — we conservatively keep clock dependencies out of the
            // value-dependency graph, matching SIGNAL's causality analysis.
            Expr::Delay(_, _) => {}
            Expr::Cell(i, b, _) => {
                i.collect_instant_deps(out);
                b.collect_instant_deps(out);
            }
        }
    }

    /// Maximum nesting depth, used by benchmarks to size synthetic workloads.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Const(_) => 1,
            Expr::Unary(_, e) | Expr::Delay(e, _) | Expr::ClockOf(e) | Expr::ClockWhen(e) => {
                1 + e.depth()
            }
            Expr::Binary(_, a, b) | Expr::When(a, b) | Expr::Default(a, b) => {
                1 + a.depth().max(b.depth())
            }
            Expr::Cell(i, b, _) => 1 + i.depth().max(b.depth()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(name) => f.write_str(name),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Unary(op, e) => write!(f, "({} {})", op.symbol(), e),
            Expr::Binary(op, a, b) => write!(f, "({} {} {})", a, op.symbol(), b),
            Expr::Delay(e, init) => write!(f, "({} $ 1 init {})", e, init),
            Expr::When(e, b) => write!(f, "({} when {})", e, b),
            Expr::Default(u, v) => write!(f, "({} default {})", u, v),
            Expr::Cell(i, b, init) => write!(f, "({} cell {} init {})", i, b, init),
            Expr::ClockOf(e) => write!(f, "(^{})", e),
            Expr::ClockWhen(b) => write!(f, "(when {})", b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_signals_are_deduplicated_and_sorted() {
        let e = Expr::add(Expr::var("b"), Expr::when(Expr::var("a"), Expr::var("b")));
        assert_eq!(
            e.referenced_signals(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn delay_breaks_instantaneous_dependency() {
        // count = (count $ 1 init 0) + step
        let e = Expr::add(
            Expr::delay(Expr::var("count"), Value::Int(0)),
            Expr::var("step"),
        );
        assert_eq!(e.instantaneous_dependencies(), vec!["step".to_string()]);
        assert_eq!(
            e.referenced_signals(),
            vec!["count".to_string(), "step".to_string()]
        );
    }

    #[test]
    fn display_matches_signal_surface_syntax() {
        let e = Expr::default(
            Expr::when(Expr::var("x"), Expr::var("b")),
            Expr::delay(Expr::var("x"), Value::Int(0)),
        );
        assert_eq!(e.to_string(), "((x when b) default (x $ 1 init 0))");
    }

    #[test]
    fn depth_counts_nesting() {
        let e = Expr::add(Expr::int(1), Expr::add(Expr::int(2), Expr::int(3)));
        assert_eq!(e.depth(), 3);
        assert_eq!(Expr::var("x").depth(), 1);
    }

    #[test]
    fn cell_references_both_operands() {
        let e = Expr::cell(Expr::var("i"), Expr::var("b"), Value::Int(0));
        assert_eq!(
            e.referenced_signals(),
            vec!["b".to_string(), "i".to_string()]
        );
        assert_eq!(
            e.instantaneous_dependencies(),
            vec!["b".to_string(), "i".to_string()]
        );
    }
}
