//! Static analyses: instantaneous-causality (deadlock) detection and the
//! aggregated static-analysis report.
//!
//! The paper lists, among the techniques applied to the translated AADL
//! model, "static analysis, including determinism identification and deadlock
//! detection". Determinism identification lives in the clock calculus
//! ([`crate::clockcalc`]); this module provides the causality-cycle analysis
//! and a report type that aggregates everything a user needs from the static
//! phase.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::clockcalc::{ClockCalculus, DeterminismVerdict};
use crate::error::SignalError;
use crate::process::{Equation, Process};

/// Instantaneous data-dependency graph of a process.
///
/// There is an edge `a → b` when the value of `b` at an instant depends on
/// the value of `a` at the *same* instant. A `delay` breaks the dependency
/// (it only needs the previous value), so feedback loops through delays are
/// fine; a cycle without a delay is a causality deadlock.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl DependencyGraph {
    /// Builds the instantaneous dependency graph of `process`.
    pub fn of(process: &Process) -> Self {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for eq in &process.equations {
            if let Equation::Definition { target, expr }
            | Equation::PartialDefinition { target, expr } = eq
            {
                for dep in expr.instantaneous_dependencies() {
                    edges.entry(dep).or_default().insert(target.clone());
                }
            }
        }
        Self { edges }
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Successors of a signal (signals that instantaneously depend on it).
    pub fn successors(&self, signal: &str) -> impl Iterator<Item = &String> {
        self.edges.get(signal).into_iter().flatten()
    }

    /// Finds a cycle in the graph, if any, returned as the list of signals
    /// along the cycle (first element repeated at the end).
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let nodes: BTreeSet<&String> = self
            .edges
            .keys()
            .chain(self.edges.values().flatten())
            .collect();
        let mut marks: BTreeMap<&String, Mark> = nodes.iter().map(|&n| (n, Mark::White)).collect();

        fn dfs<'a>(
            node: &'a String,
            edges: &'a BTreeMap<String, BTreeSet<String>>,
            marks: &mut BTreeMap<&'a String, Mark>,
            stack: &mut Vec<&'a String>,
        ) -> Option<Vec<String>> {
            marks.insert(node, Mark::Grey);
            stack.push(node);
            if let Some(succs) = edges.get(node) {
                for succ in succs {
                    match marks.get(succ).copied().unwrap_or(Mark::White) {
                        Mark::Grey => {
                            // Found a cycle: slice the stack from succ.
                            let pos = stack.iter().position(|&n| n == succ).unwrap_or(0);
                            let mut cycle: Vec<String> =
                                stack[pos..].iter().map(|s| s.to_string()).collect();
                            cycle.push(succ.to_string());
                            return Some(cycle);
                        }
                        Mark::White => {
                            if let Some(c) = dfs(succ, edges, marks, stack) {
                                return Some(c);
                            }
                        }
                        Mark::Black => {}
                    }
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            None
        }

        let node_list: Vec<&String> = nodes.iter().copied().collect();
        for node in node_list {
            if marks.get(node) == Some(&Mark::White) {
                let mut stack = Vec::new();
                if let Some(cycle) = dfs(node, &self.edges, &mut marks, &mut stack) {
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// A topological order of the signals (an admissible static schedule of
    /// the equations within one instant), or an error carrying a cycle.
    pub fn topological_order(&self) -> Result<Vec<String>, Vec<String>> {
        if let Some(cycle) = self.find_cycle() {
            return Err(cycle);
        }
        // Kahn's algorithm.
        let mut indegree: BTreeMap<&String, usize> = BTreeMap::new();
        for (src, dsts) in &self.edges {
            indegree.entry(src).or_insert(0);
            for d in dsts {
                *indegree.entry(d).or_insert(0) += 1;
            }
        }
        let mut ready: Vec<&String> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::new();
        while let Some(node) = ready.pop() {
            order.push(node.clone());
            if let Some(succs) = self.edges.get(node) {
                for s in succs {
                    if let Some(d) = indegree.get_mut(s) {
                        *d -= 1;
                        if *d == 0 {
                            ready.push(s);
                        }
                    }
                }
            }
        }
        Ok(order)
    }
}

/// Checks the process for causality deadlocks.
///
/// # Errors
///
/// Returns [`SignalError::CausalityCycle`] when an instantaneous dependency
/// cycle exists.
pub fn check_deadlock(process: &Process) -> Result<(), SignalError> {
    let graph = DependencyGraph::of(process);
    match graph.find_cycle() {
        None => Ok(()),
        Some(cycle) => Err(SignalError::CausalityCycle {
            process: process.name.clone(),
            cycle,
        }),
    }
}

/// Aggregated result of the static-analysis phase of the tool chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticAnalysisReport {
    /// Name of the analysed process.
    pub process: String,
    /// Number of signals.
    pub signal_count: usize,
    /// Number of equations.
    pub equation_count: usize,
    /// Number of synchronisation classes (clocks).
    pub clock_count: usize,
    /// Number of master clocks; `1` means the model is endochronous.
    pub master_clock_count: usize,
    /// Depth of the clock hierarchy.
    pub hierarchy_depth: usize,
    /// Determinism identification verdict.
    pub determinism: DeterminismVerdict,
    /// `None` when no causality cycle exists, otherwise the cycle.
    pub causality_cycle: Option<Vec<String>>,
    /// Number of instantaneous dependency edges.
    pub dependency_edges: usize,
}

impl StaticAnalysisReport {
    /// Runs the clock calculus and the deadlock analysis on `process` and
    /// aggregates the results.
    ///
    /// # Errors
    ///
    /// Returns an error if the process is structurally invalid or has
    /// duplicate total definitions; analysis *findings* (non-determinism,
    /// cycles) are reported in the returned value, not as errors.
    pub fn analyze(process: &Process) -> Result<Self, SignalError> {
        let calculus = ClockCalculus::analyze(process)?;
        let graph = DependencyGraph::of(process);
        Ok(Self {
            process: process.name.clone(),
            signal_count: process.signals.len(),
            equation_count: process.equation_count(),
            clock_count: calculus.clock_count(),
            master_clock_count: calculus.master_clocks().len(),
            hierarchy_depth: calculus.hierarchy_depth(),
            determinism: calculus.determinism().clone(),
            causality_cycle: graph.find_cycle(),
            dependency_edges: graph.edge_count(),
        })
    }

    /// Returns `true` when the model passed every static check: single
    /// master clock, deterministic, no causality cycle.
    pub fn is_clean(&self) -> bool {
        self.master_clock_count <= 1
            && self.determinism.is_deterministic()
            && self.causality_cycle.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::expr::Expr;
    use crate::value::{Value, ValueType};

    fn counter() -> Process {
        let mut b = ProcessBuilder::new("counter");
        b.input("tick", ValueType::Event);
        b.output("count", ValueType::Integer);
        b.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        b.synchronize(&["count", "tick"]);
        b.build().unwrap()
    }

    #[test]
    fn delay_breaks_cycles() {
        let p = counter();
        assert!(check_deadlock(&p).is_ok());
        let report = StaticAnalysisReport::analyze(&p).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.clock_count, 1);
        assert_eq!(report.signal_count, 2);
    }

    #[test]
    fn instantaneous_cycle_detected() {
        let mut b = ProcessBuilder::new("loopy");
        b.output("a", ValueType::Integer);
        b.output("b", ValueType::Integer);
        b.define("a", Expr::add(Expr::var("b"), Expr::int(1)));
        b.define("b", Expr::add(Expr::var("a"), Expr::int(1)));
        let p = b.build().unwrap();
        let err = check_deadlock(&p).unwrap_err();
        match err {
            SignalError::CausalityCycle { cycle, .. } => {
                assert!(cycle.len() >= 3);
                assert_eq!(cycle.first(), cycle.last());
            }
            other => panic!("expected causality cycle, got {other}"),
        }
        let report = StaticAnalysisReport::analyze(&p).unwrap();
        assert!(!report.is_clean());
        assert!(report.causality_cycle.is_some());
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut b = ProcessBuilder::new("chain");
        b.input("x", ValueType::Integer);
        b.output("y", ValueType::Integer);
        b.local("m", ValueType::Integer);
        b.define("m", Expr::add(Expr::var("x"), Expr::int(1)));
        b.define("y", Expr::mul(Expr::var("m"), Expr::int(2)));
        let p = b.build().unwrap();
        let graph = DependencyGraph::of(&p);
        let order = graph.topological_order().unwrap();
        let pos = |name: &str| order.iter().position(|n| n == name).unwrap();
        assert!(pos("x") < pos("m"));
        assert!(pos("m") < pos("y"));
        assert_eq!(graph.edge_count(), 2);
        assert_eq!(graph.successors("x").count(), 1);
    }

    #[test]
    fn topological_order_reports_cycle() {
        let mut b = ProcessBuilder::new("loopy");
        b.output("a", ValueType::Integer);
        b.define("a", Expr::add(Expr::var("a"), Expr::int(1)));
        let p = b.build().unwrap();
        let graph = DependencyGraph::of(&p);
        assert!(graph.topological_order().is_err());
    }
}
