//! Polychronous model of computation: a from-scratch implementation of the
//! SIGNAL kernel used by the DATE 2013 paper *"Toward Polychronous Analysis
//! and Validation for Timed Software Architectures in AADL"*.
//!
//! The crate provides:
//!
//! * a representation of SIGNAL **processes** — sets of equations over
//!   signals built from the kernel operators (step-wise functions, `delay`,
//!   `when` sampling, `default` deterministic merge, `cell` memorisation and
//!   partial definitions) plus clock constraints and sub-process instances
//!   ([`process`], [`expr`], [`builder`]);
//! * the **clock calculus**: synchronisation-class construction, clock
//!   hierarchy synthesis, master-clock identification and endochrony /
//!   determinism verdicts ([`clockcalc`]);
//! * **static analyses**: instantaneous-dependency deadlock detection,
//!   multiple/overlapping definition detection, automaton determinism
//!   checking ([`analysis`], [`automaton`]);
//! * a **denotational evaluator** executing flat processes on multi-clock
//!   traces, used to validate the translation semantics and to drive the
//!   simulator ([`eval`], [`trace`]);
//! * a **pretty printer** regenerating SIGNAL textual syntax ([`pretty`]).
//!
//! # Example
//!
//! ```
//! use signal_moc::builder::ProcessBuilder;
//! use signal_moc::clockcalc::ClockCalculus;
//! use signal_moc::expr::Expr;
//! use signal_moc::value::{Value, ValueType};
//!
//! // count = (count $ 1 init 0) + 1  when tick
//! let mut b = ProcessBuilder::new("counter");
//! b.input("tick", ValueType::Event);
//! b.output("count", ValueType::Integer);
//! b.define("count", Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)));
//! b.synchronize(&["count", "tick"]);
//! let process = b.build()?;
//! let calculus = ClockCalculus::analyze(&process)?;
//! assert_eq!(calculus.master_clocks().len(), 1); // endochronous
//! # Ok::<(), signal_moc::SignalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod automaton;
pub mod builder;
pub mod clockcalc;
pub mod error;
pub mod eval;
pub mod expr;
pub mod pretty;
pub mod process;
pub mod trace;
pub mod value;
pub mod view;

pub use builder::ProcessBuilder;
pub use clockcalc::{ClockCalculus, ClockClass, DeterminismVerdict};
pub use error::SignalError;
pub use eval::{Evaluator, ResolvedStep};
pub use expr::{BinOp, Expr, UnOp};
pub use process::{Equation, Process, ProcessModel, SignalDecl, SignalRole};
pub use trace::{Trace, TraceStep};
pub use value::{Value, ValueType};
pub use view::InstantView;
