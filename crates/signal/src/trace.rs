//! Multi-clock traces: sequences of instants where each signal is either
//! present with a value or absent (`⊥`).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// The observation of all signals at one logical instant.
///
/// Absent signals are simply not in the map.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceStep {
    values: BTreeMap<String, Value>,
}

impl TraceStep {
    /// Creates an empty step (every signal absent).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `signal` present with `value` at this instant.
    pub fn set(&mut self, signal: impl Into<String>, value: Value) -> &mut Self {
        self.values.insert(signal.into(), value);
        self
    }

    /// Marks `signal` present as a pure event.
    pub fn set_event(&mut self, signal: impl Into<String>) -> &mut Self {
        self.set(signal, Value::Event)
    }

    /// Value of `signal` at this instant, `None` if absent.
    pub fn get(&self, signal: &str) -> Option<&Value> {
        self.values.get(signal)
    }

    /// Returns `true` when `signal` is present.
    pub fn is_present(&self, signal: &str) -> bool {
        self.values.contains_key(signal)
    }

    /// Iterates over present signals and their values.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.values.iter()
    }

    /// Number of present signals.
    pub fn present_count(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when every signal is absent at this instant.
    pub fn is_silent(&self) -> bool {
        self.values.is_empty()
    }
}

/// A finite trace: a sequence of [`TraceStep`]s.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace of `len` silent instants.
    pub fn silent(len: usize) -> Self {
        Self {
            steps: vec![TraceStep::new(); len],
        }
    }

    /// Number of instants.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when the trace has no instant.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// The step at instant `t`, if within the trace.
    pub fn step(&self, t: usize) -> Option<&TraceStep> {
        self.steps.get(t)
    }

    /// Mutable access to the step at instant `t`, extending the trace with
    /// silent steps if needed.
    pub fn step_mut(&mut self, t: usize) -> &mut TraceStep {
        if t >= self.steps.len() {
            self.steps.resize(t + 1, TraceStep::new());
        }
        &mut self.steps[t]
    }

    /// Sets `signal` present with `value` at instant `t`, extending the trace
    /// if needed.
    pub fn set(&mut self, t: usize, signal: impl Into<String>, value: Value) {
        self.step_mut(t).set(signal, value);
    }

    /// Value of `signal` at instant `t` (`None` if absent or out of range).
    pub fn value(&self, t: usize, signal: &str) -> Option<&Value> {
        self.steps.get(t).and_then(|s| s.get(signal))
    }

    /// Returns `true` when `signal` is present at instant `t`.
    pub fn is_present(&self, t: usize, signal: &str) -> bool {
        self.value(t, signal).is_some()
    }

    /// Iterates over the steps.
    pub fn iter(&self) -> impl Iterator<Item = &TraceStep> {
        self.steps.iter()
    }

    /// The instants (indices) at which `signal` is present — its *clock* as
    /// an instant set.
    pub fn clock_of(&self, signal: &str) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_present(signal))
            .map(|(t, _)| t)
            .collect()
    }

    /// The sequence of values taken by `signal` (skipping absences) — its
    /// *flow*.
    pub fn flow_of(&self, signal: &str) -> Vec<Value> {
        self.steps
            .iter()
            .filter_map(|s| s.get(signal).cloned())
            .collect()
    }

    /// Names of all signals present at least once.
    pub fn signals(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .steps
            .iter()
            .flat_map(|s| s.iter().map(|(n, _)| n.clone()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Returns `true` when two signals have the same clock (present at
    /// exactly the same instants) in this trace.
    pub fn synchronous(&self, a: &str, b: &str) -> bool {
        self.steps
            .iter()
            .all(|s| s.is_present(a) == s.is_present(b))
    }
}

impl FromIterator<TraceStep> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceStep>>(iter: I) -> Self {
        Self {
            steps: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceStep> for Trace {
    fn extend<I: IntoIterator<Item = TraceStep>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut tr = Trace::new();
        tr.set(0, "x", Value::Int(1));
        tr.set(0, "b", Value::Bool(true));
        tr.set(2, "x", Value::Int(2));
        tr.set(3, "b", Value::Bool(false));
        tr
    }

    #[test]
    fn presence_and_values() {
        let tr = sample_trace();
        assert_eq!(tr.len(), 4);
        assert!(tr.is_present(0, "x"));
        assert!(!tr.is_present(1, "x"));
        assert_eq!(tr.value(2, "x"), Some(&Value::Int(2)));
        assert_eq!(tr.value(5, "x"), None);
    }

    #[test]
    fn clock_and_flow() {
        let tr = sample_trace();
        assert_eq!(tr.clock_of("x"), vec![0, 2]);
        assert_eq!(tr.flow_of("x"), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(tr.clock_of("missing"), Vec::<usize>::new());
    }

    #[test]
    fn signals_and_synchrony() {
        let tr = sample_trace();
        assert_eq!(tr.signals(), vec!["b".to_string(), "x".to_string()]);
        assert!(!tr.synchronous("x", "b"));
        let mut sync = Trace::new();
        sync.set(0, "a", Value::Int(1));
        sync.set(0, "b", Value::Int(1));
        sync.step_mut(1);
        assert!(sync.synchronous("a", "b"));
    }

    #[test]
    fn silent_and_extend() {
        let tr = Trace::silent(3);
        assert_eq!(tr.len(), 3);
        assert!(tr.iter().all(TraceStep::is_silent));
        let collected: Trace = tr.iter().cloned().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn step_accessors() {
        let mut step = TraceStep::new();
        step.set_event("dispatch").set("v", Value::Int(7));
        assert!(step.is_present("dispatch"));
        assert_eq!(step.present_count(), 2);
        assert!(!step.is_silent());
        assert_eq!(step.get("v"), Some(&Value::Int(7)));
    }
}
