//! Pretty printer producing SIGNAL textual syntax from process models.
//!
//! The ASME2SSME tool chain ends with SIGNAL source code handed to the
//! Polychrony compiler; this printer regenerates that surface syntax from the
//! in-memory representation, which is what Figs. 3–6 of the paper display for
//! the ProducerConsumer case study.

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::process::{Equation, Process, ProcessModel, SignalDecl, SignalRole};
use crate::value::ValueType;

/// Renders a single process in SIGNAL surface syntax.
pub fn process_to_signal(process: &Process) -> String {
    let mut out = String::new();
    render_process(&mut out, process, 0);
    out
}

/// Renders a whole model: the root process first, then every other process
/// as a separate definition (the AADL2SIGNAL library processes and the
/// translated components).
pub fn model_to_signal(model: &ProcessModel) -> String {
    let mut out = String::new();
    if let Some(root) = model.root_process() {
        render_process(&mut out, root, 0);
    }
    for (name, process) in &model.processes {
        if name == &model.root {
            continue;
        }
        out.push('\n');
        render_process(&mut out, process, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_process(out: &mut String, process: &Process, level: usize) {
    indent(out, level);
    let _ = writeln!(out, "process {} =", process.name);
    indent(out, level);
    out.push_str("  ( ");
    let inputs: Vec<&SignalDecl> = process.inputs().collect();
    let outputs: Vec<&SignalDecl> = process.outputs().collect();
    if !inputs.is_empty() {
        out.push_str("? ");
        out.push_str(&render_decl_list(&inputs));
        out.push_str("; ");
    }
    if !outputs.is_empty() {
        out.push_str("! ");
        out.push_str(&render_decl_list(&outputs));
        out.push(';');
    }
    out.push_str(" )\n");
    indent(out, level);
    out.push_str("  (| ");
    for (i, eq) in process.equations.iter().enumerate() {
        if i > 0 {
            out.push('\n');
            indent(out, level);
            out.push_str("   | ");
        }
        out.push_str(&render_equation(eq));
    }
    out.push_str(" |)\n");
    let locals: Vec<&SignalDecl> = process.locals().collect();
    if !locals.is_empty() {
        indent(out, level);
        let _ = writeln!(out, "  where {};", render_decl_list(&locals));
    }
    for (key, value) in &process.annotations {
        indent(out, level);
        let _ = writeln!(out, "  %{key}: {value}%");
    }
    indent(out, level);
    out.push_str("  end;\n");
}

fn render_decl_list(decls: &[&SignalDecl]) -> String {
    // Group by type for the usual SIGNAL declaration style.
    let mut parts = Vec::new();
    let types = [
        ValueType::Event,
        ValueType::Boolean,
        ValueType::Integer,
        ValueType::Real,
        ValueType::Text,
    ];
    for ty in types {
        let names: Vec<&str> = decls
            .iter()
            .filter(|d| d.ty == ty)
            .map(|d| d.name.as_str())
            .collect();
        if !names.is_empty() {
            parts.push(format!("{} {}", ty, names.join(", ")));
        }
    }
    parts.join("; ")
}

fn render_equation(eq: &Equation) -> String {
    match eq {
        Equation::Definition { target, expr } => format!("{target} := {}", render_expr(expr)),
        Equation::PartialDefinition { target, expr } => {
            format!("{target} ::= {}", render_expr(expr))
        }
        Equation::ClockConstraint { signals } => signals.join(" ^= "),
        Equation::ClockExclusion { signals } => {
            format!("{} %pairwise exclusive%", signals.join(" ^# "))
        }
        Equation::Instance {
            process,
            label,
            inputs,
            outputs,
        } => format!(
            "({}) := {}{{{}}}({})",
            outputs.join(", "),
            process,
            label,
            inputs.join(", ")
        ),
    }
}

fn render_expr(expr: &Expr) -> String {
    expr.to_string()
}

/// Role of a declaration in the rendered interface, exposed for testing.
pub fn role_marker(role: SignalRole) -> &'static str {
    match role {
        SignalRole::Input => "?",
        SignalRole::Output => "!",
        SignalRole::Local => "where",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::value::{Value, ValueType};

    fn sample() -> Process {
        let mut b = ProcessBuilder::new("thProducer");
        b.input("Dispatch", ValueType::Event);
        b.input("pProdStart", ValueType::Boolean);
        b.output("Complete", ValueType::Event);
        b.output("Alarm", ValueType::Boolean);
        b.local("state", ValueType::Integer);
        b.define("state", Expr::delay(Expr::var("state"), Value::Int(0)));
        b.define("Complete", Expr::clock_of(Expr::var("Dispatch")));
        b.define_partial(
            "Alarm",
            Expr::when(Expr::bool(true), Expr::var("pProdStart")),
        );
        b.synchronize(&["Dispatch", "Complete"]);
        b.annotate("aadl::path", "prProdCons.thProducer");
        b.build_unchecked()
    }

    #[test]
    fn printed_text_contains_interface_and_equations() {
        let text = process_to_signal(&sample());
        assert!(text.contains("process thProducer ="));
        assert!(text.contains("? event Dispatch; boolean pProdStart"));
        assert!(text.contains("! event Complete; boolean Alarm"));
        assert!(text.contains("state := (state $ 1 init 0)"));
        assert!(text.contains("Alarm ::="));
        assert!(text.contains("Dispatch ^= Complete"));
        assert!(text.contains("where integer state;"));
        assert!(text.contains("%aadl::path: prProdCons.thProducer%"));
        assert!(text.ends_with("end;\n"));
    }

    #[test]
    fn model_printing_includes_all_processes() {
        let mut model = ProcessModel::new("thProducer");
        model.add(sample());
        let mut other = ProcessBuilder::new("helper");
        other.input("x", ValueType::Integer);
        other.output("y", ValueType::Integer);
        other.define("y", Expr::var("x"));
        model.add(other.build().unwrap());
        let text = model_to_signal(&model);
        let root_pos = text.find("process thProducer").unwrap();
        let helper_pos = text.find("process helper").unwrap();
        assert!(root_pos < helper_pos, "root process must be printed first");
    }

    #[test]
    fn instance_equation_rendering() {
        let eq = Equation::Instance {
            process: "fifo".into(),
            label: "q1".into(),
            inputs: vec!["push".into(), "pop".into()],
            outputs: vec!["head".into()],
        };
        assert_eq!(render_equation(&eq), "(head) := fifo{q1}(push, pop)");
    }

    #[test]
    fn role_markers() {
        assert_eq!(role_marker(SignalRole::Input), "?");
        assert_eq!(role_marker(SignalRole::Output), "!");
        assert_eq!(role_marker(SignalRole::Local), "where");
    }
}
