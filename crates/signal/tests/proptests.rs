//! Property-based tests of the polychronous kernel invariants: the
//! denotational laws of the SIGNAL operators, clock-calculus consistency and
//! determinism of the evaluator.

use proptest::prelude::*;

use signal_moc::builder::ProcessBuilder;
use signal_moc::clockcalc::ClockCalculus;
use signal_moc::eval::Evaluator;
use signal_moc::expr::Expr;
use signal_moc::trace::Trace;
use signal_moc::value::{Value, ValueType};

/// Strategy: a trace over signals `x` (integer), `b` (boolean) and `tick`
/// (event), with independent presence per instant.
fn xbtick_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            prop::option::of(-100i64..100),
            prop::option::of(any::<bool>()),
            any::<bool>(),
        ),
        1..max_len,
    )
    .prop_map(|steps| {
        let mut trace = Trace::new();
        for (t, (x, b, tick)) in steps.into_iter().enumerate() {
            if let Some(x) = x {
                trace.set(t, "x", Value::Int(x));
            }
            if let Some(b) = b {
                trace.set(t, "b", Value::Bool(b));
            }
            if tick {
                trace.set(t, "tick", Value::Event);
            }
            trace.step_mut(t);
        }
        trace
    })
}

fn sampler() -> signal_moc::process::Process {
    let mut builder = ProcessBuilder::new("sampler");
    builder.input("x", ValueType::Integer);
    builder.input("b", ValueType::Boolean);
    builder.output("y", ValueType::Integer);
    builder.define("y", Expr::when(Expr::var("x"), Expr::var("b")));
    builder.build().unwrap()
}

fn merger() -> signal_moc::process::Process {
    let mut builder = ProcessBuilder::new("merger");
    builder.input("x", ValueType::Integer);
    builder.input("b", ValueType::Boolean);
    builder.output("y", ValueType::Integer);
    builder.local("xb", ValueType::Integer);
    builder.define("xb", Expr::when(Expr::var("x"), Expr::var("b")));
    builder.define("y", Expr::default(Expr::var("xb"), Expr::var("x")));
    builder.build().unwrap()
}

fn memory() -> signal_moc::process::Process {
    let mut builder = ProcessBuilder::new("memory");
    builder.input("x", ValueType::Integer);
    builder.input("b", ValueType::Boolean);
    builder.output("o", ValueType::Integer);
    builder.define(
        "o",
        Expr::cell(Expr::var("x"), Expr::var("b"), Value::Int(0)),
    );
    builder.build().unwrap()
}

proptest! {
    /// `x when b` is present exactly when `x` is present and `b` is present
    /// and true, and then carries the value of `x`.
    #[test]
    fn when_presence_law(trace in xbtick_trace(24)) {
        let out = Evaluator::new(&sampler()).unwrap().run(&trace).unwrap();
        for t in 0..trace.len() {
            let x = trace.value(t, "x");
            let b = trace.value(t, "b");
            let expected = match (x, b) {
                (Some(xv), Some(bv)) if bv.as_bool() => Some(xv.clone()),
                _ => None,
            };
            prop_assert_eq!(out.value(t, "y").cloned(), expected, "instant {}", t);
        }
    }

    /// `u default v` carries `u` when `u` is present, otherwise `v`; it is
    /// absent only when both are absent.
    #[test]
    fn default_merge_law(trace in xbtick_trace(24)) {
        let out = Evaluator::new(&merger()).unwrap().run(&trace).unwrap();
        for t in 0..trace.len() {
            let x = trace.value(t, "x");
            let b = trace.value(t, "b");
            let sampled = match (x, b) {
                (Some(xv), Some(bv)) if bv.as_bool() => Some(xv.clone()),
                _ => None,
            };
            let expected = sampled.or_else(|| x.cloned());
            prop_assert_eq!(out.value(t, "y").cloned(), expected, "instant {}", t);
        }
    }

    /// The memory process `fm(x, b)` always outputs the most recent value of
    /// `x` (or its initial value) and is present iff `x` is present or `b`
    /// is present and true.
    #[test]
    fn cell_memory_law(trace in xbtick_trace(24)) {
        let out = Evaluator::new(&memory()).unwrap().run(&trace).unwrap();
        let mut last = Value::Int(0);
        for t in 0..trace.len() {
            let x = trace.value(t, "x");
            let b = trace.value(t, "b");
            let expected = match (x, b) {
                (Some(xv), _) => Some(xv.clone()),
                (None, Some(bv)) if bv.as_bool() => Some(last.clone()),
                _ => None,
            };
            prop_assert_eq!(out.value(t, "o").cloned(), expected, "instant {}", t);
            if let Some(xv) = x {
                last = xv.clone();
            }
        }
    }

    /// The evaluator is deterministic: running the same trace twice from a
    /// fresh state yields identical outputs.
    #[test]
    fn evaluation_is_deterministic(trace in xbtick_trace(16)) {
        let first = Evaluator::new(&merger()).unwrap().run(&trace).unwrap();
        let second = Evaluator::new(&merger()).unwrap().run(&trace).unwrap();
        prop_assert_eq!(first, second);
    }

    /// The counter pattern always produces consecutive integers on the tick
    /// clock, whatever the tick pattern.
    #[test]
    fn counter_counts_exactly_the_ticks(trace in xbtick_trace(32)) {
        let mut builder = ProcessBuilder::new("counter");
        builder.input("tick", ValueType::Event);
        builder.output("count", ValueType::Integer);
        builder.define(
            "count",
            Expr::add(Expr::delay(Expr::var("count"), Value::Int(0)), Expr::int(1)),
        );
        builder.synchronize(&["count", "tick"]);
        let process = builder.build().unwrap();
        // Keep only the tick signal of the generated trace.
        let mut inputs = Trace::new();
        for t in 0..trace.len() {
            if trace.is_present(t, "tick") {
                inputs.set(t, "tick", Value::Event);
            }
            inputs.step_mut(t);
        }
        let out = Evaluator::new(&process).unwrap().run(&inputs).unwrap();
        let flow: Vec<i64> = out.flow_of("count").iter().map(|v| v.as_int().unwrap()).collect();
        let expected: Vec<i64> = (1..=flow.len() as i64).collect();
        prop_assert_eq!(flow, expected);
        prop_assert_eq!(out.clock_of("count"), inputs.clock_of("tick"));
    }

    /// Clock calculus invariants: signals unified by a constraint are in the
    /// same class; the number of classes never exceeds the number of
    /// signals; sampling yields a sub-clock.
    #[test]
    fn clock_calculus_class_invariants(n in 1usize..12) {
        let mut builder = ProcessBuilder::new("chain");
        builder.input("c", ValueType::Boolean);
        builder.input("s0", ValueType::Integer);
        for i in 1..=n {
            builder.local(format!("s{i}"), ValueType::Integer);
        }
        builder.output("out", ValueType::Integer);
        for i in 1..=n {
            // Every odd stage samples (sub-clock), every even stage is a
            // step-wise function (same clock as its operand).
            let prev = Expr::var(format!("s{}", i - 1));
            let expr = if i % 2 == 1 {
                Expr::when(prev, Expr::var("c"))
            } else {
                Expr::add(prev, Expr::int(1))
            };
            builder.define(format!("s{i}"), expr);
        }
        builder.define("out", Expr::var(format!("s{n}")));
        let process = builder.build().unwrap();
        let calculus = ClockCalculus::analyze(&process).unwrap();
        prop_assert!(calculus.clock_count() <= process.signals.len());
        // out is synchronous with the last stage.
        let last_stage = format!("s{n}");
        prop_assert!(calculus.are_synchronous("out", &last_stage));
        // Every sampled stage is a sub-clock of its source stage's class.
        for i in (1..=n).filter(|i| i % 2 == 1) {
            let child = calculus.class_of(&format!("s{i}")).unwrap().id;
            let parent = calculus.class_of(&format!("s{}", i - 1)).unwrap().id;
            prop_assert!(calculus.is_subclock(child, parent), "s{} not subclock of s{}", i, i - 1);
        }
    }
}
