//! `polyobs` — structured tracing, metrics and progress reporting for the
//! polychrony toolchain.
//!
//! The crate is deliberately dependency-free: every byte of JSON it emits is
//! hand-encoded (see [`json`]) and every primitive is built on `std` atomics
//! and mutexes, so it can be threaded through the hot exploration loop of
//! `polyverify` without dragging a telemetry stack into the build.
//!
//! # Model
//!
//! The entry point is the [`Collector`], a cheaply clonable handle shared by
//! every layer of a run. It operates in one of three [`CollectionMode`]s:
//!
//! * [`CollectionMode::Noop`] — the default. Every call is a branch on a
//!   `None` and nothing is recorded; handles obtained from a noop collector
//!   carry no allocation at all.
//! * [`CollectionMode::Counters`] — [`Counter`]s and [`Gauge`]s are live
//!   (sharded relaxed atomics), span/event recording is skipped.
//! * [`CollectionMode::Full`] — counters plus the structured event stream:
//!   [`Span`] open/close pairs and point events flow into a bounded ring
//!   buffer and into any registered [`sink::EventSink`]s (JSON-lines trace
//!   files, live progress reporters).
//!
//! # Determinism contract
//!
//! Telemetry must never perturb verification. Collection-mode changes may
//! alter *observability* output only: verdicts, counterexamples and
//! `ExplorationStats` stay bit-identical whether the collector is noop,
//! counting or full. Consumers uphold this by keeping nondeterministic
//! measurements (timings, steal counts, rates) in collector counters and
//! never copying them into deterministic result structures; this crate
//! upholds it by making every recording call side-effect-free with respect
//! to caller-visible state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod record;
pub mod sink;

pub use record::{PhaseRecord, RunRecord};
pub use sink::{EventSink, JsonLinesSink, ProgressBridge, ProgressReporter, ProgressUpdate};

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much a [`Collector`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollectionMode {
    /// Record nothing; every call is a no-op (the default).
    Noop,
    /// Record counters and gauges only.
    Counters,
    /// Record counters, gauges, spans and events (ring buffer + sinks).
    Full,
}

impl fmt::Display for CollectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectionMode::Noop => write!(f, "noop"),
            CollectionMode::Counters => write!(f, "counters"),
            CollectionMode::Full => write!(f, "full"),
        }
    }
}

/// Number of shards per counter: updates from concurrent workers land on
/// distinct cache lines, reads sum across all of them.
const COUNTER_SHARDS: usize = 8;

/// Default capacity of the in-memory event ring.
const DEFAULT_RING_CAPACITY: usize = 4096;

/// A value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    U64(u64),
    /// Signed integer attribute.
    I64(i64),
    /// Floating-point attribute.
    F64(f64),
    /// String attribute.
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    /// The attribute as a JSON value.
    pub fn to_json(&self) -> json::Json {
        match self {
            AttrValue::U64(v) => json::Json::Num(*v as f64),
            AttrValue::I64(v) => json::Json::Num(*v as f64),
            AttrValue::F64(v) => json::Json::Num(*v),
            AttrValue::Str(v) => json::Json::Str(v.clone()),
            AttrValue::Bool(v) => json::Json::Bool(*v),
        }
    }
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A [`Span`] was opened.
    SpanOpen,
    /// A [`Span`] was closed after `dur_us` microseconds.
    SpanClose {
        /// Wall-clock duration of the span in microseconds.
        dur_us: u64,
    },
    /// A point-in-time event (no duration).
    Point,
}

/// One record in the structured event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the collector's epoch; monotonically non-decreasing
    /// in recording order.
    pub t_us: u64,
    /// Open, close or point.
    pub kind: EventKind,
    /// Span or event name.
    pub name: String,
    /// Span id (0 for point events emitted outside any span).
    pub span: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Attached attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

/// A counter sharded across cache lines; `add` touches one relaxed atomic.
#[derive(Debug, Default)]
struct ShardedCounter {
    shards: [PaddedAtomic; COUNTER_SHARDS],
}

/// An atomic padded out to its own cache line so concurrent workers
/// incrementing different shards never contend.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedAtomic(AtomicU64);

impl ShardedCounter {
    fn add(&self, slot: usize, n: u64) {
        self.shards[slot % COUNTER_SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Round-robin assignment of threads to counter shards.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The shard slot this thread writes to, assigned on first use.
    static THREAD_SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
    /// The stack of open span ids on this thread (parent attribution).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// A handle to a named counter. Cloning is cheap; a handle from a noop
/// collector holds nothing and `add` is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<ShardedCounter>>);

impl Counter {
    /// Add `n` to the counter (~one relaxed atomic when live, nothing when
    /// the collector is noop).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            THREAD_SLOT.with(|slot| c.add(*slot, n));
        }
    }

    /// Increment the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (sums all shards); 0 for a noop handle.
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.value())
    }
}

/// A handle to a named gauge (last-write-wins instantaneous value).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Set the gauge (relaxed store when live, nothing when noop).
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value; 0 for a noop handle.
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Ring buffer + sinks, guarded by one mutex so events reach both in a
/// single total order (this is what makes trace timestamps monotonic).
struct EventLog {
    ring: VecDeque<Event>,
    capacity: usize,
    sinks: Vec<Box<dyn EventSink>>,
}

struct Inner {
    mode: CollectionMode,
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<ShardedCounter>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    next_span: AtomicU64,
    events: Mutex<EventLog>,
}

/// The shared telemetry handle threaded through a run.
///
/// Clones share all state. Equality (and hashing of option structs that
/// embed a collector) considers only the [`CollectionMode`]: two collectors
/// in the same mode compare equal even if they hold different data, because
/// options structs embedding a collector must stay comparable without making
/// telemetry part of a run's identity.
#[derive(Clone, Default)]
pub struct Collector {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("mode", &self.mode())
            .finish()
    }
}

impl PartialEq for Collector {
    fn eq(&self, other: &Self) -> bool {
        self.mode() == other.mode()
    }
}

impl Eq for Collector {}

impl Collector {
    /// A collector that records nothing (the default).
    pub fn noop() -> Self {
        Collector { inner: None }
    }

    /// A collector recording counters and gauges only.
    pub fn counters() -> Self {
        Self::with_mode(CollectionMode::Counters)
    }

    /// A collector recording counters, gauges, spans and events.
    pub fn full() -> Self {
        Self::with_mode(CollectionMode::Full)
    }

    /// A collector in the given mode.
    pub fn with_mode(mode: CollectionMode) -> Self {
        if mode == CollectionMode::Noop {
            return Self::noop();
        }
        Collector {
            inner: Some(Arc::new(Inner {
                mode,
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                next_span: AtomicU64::new(1),
                events: Mutex::new(EventLog {
                    ring: VecDeque::new(),
                    capacity: DEFAULT_RING_CAPACITY,
                    sinks: Vec::new(),
                }),
            })),
        }
    }

    /// The collector's mode.
    pub fn mode(&self) -> CollectionMode {
        self.inner.as_ref().map_or(CollectionMode::Noop, |i| i.mode)
    }

    /// `true` unless the collector is noop.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` when spans and events are recorded (mode is `Full`).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.mode() == CollectionMode::Full
    }

    /// Microseconds since the collector's epoch (0 for noop).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let mut counters = inner.counters.lock().unwrap();
        let c = counters.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(c)))
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let mut gauges = inner.gauges.lock().unwrap();
        let g = gauges.entry(name.to_string()).or_default();
        Gauge(Some(Arc::clone(g)))
    }

    /// All counters with their current values, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let counters = inner.counters.lock().unwrap();
        counters
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect()
    }

    /// All gauges with their current values, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let gauges = inner.gauges.lock().unwrap();
        gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Open a span. The guard records the close (with its duration and any
    /// attributes added via [`Span::attr`]) when dropped.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                collector: Collector::noop(),
                id: 0,
                name: String::new(),
                start: Instant::now(),
                attrs: Vec::new(),
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = if self.is_full() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let parent = stack.last().copied();
                stack.push(id);
                parent
            })
        } else {
            None
        };
        self.record(EventKind::SpanOpen, name, id, parent, Vec::new());
        Span {
            collector: self.clone(),
            id,
            name: name.to_string(),
            start: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Record a point event with attributes.
    pub fn event(&self, name: &str, attrs: Vec<(String, AttrValue)>) {
        let parent = if self.is_full() {
            SPAN_STACK.with(|s| s.borrow().last().copied())
        } else {
            None
        };
        self.record(EventKind::Point, name, 0, parent, attrs);
    }

    /// Register a sink that will receive every subsequent event.
    pub fn add_sink(&self, mut sink: Box<dyn EventSink>) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut log = inner.events.lock().unwrap();
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        sink.open(t_us);
        log.sinks.push(sink);
    }

    /// Snapshot of the in-memory event ring (most recent events, bounded).
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let log = inner.events.lock().unwrap();
        log.ring.iter().cloned().collect()
    }

    /// Flush all sinks, handing each the final counter and gauge snapshots.
    /// Call once at the end of a run before dropping the collector.
    pub fn flush(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let counters = self.counter_values();
        let gauges = self.gauge_values();
        let mut log = inner.events.lock().unwrap();
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        for sink in log.sinks.iter_mut() {
            sink.finish(&counters, &gauges, t_us);
        }
    }

    /// Record an event if the mode admits it. The timestamp is taken while
    /// holding the event-log lock, guaranteeing `t_us` is non-decreasing in
    /// stream order.
    fn record(
        &self,
        kind: EventKind,
        name: &str,
        span: u64,
        parent: Option<u64>,
        attrs: Vec<(String, AttrValue)>,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        if inner.mode != CollectionMode::Full {
            return;
        }
        let mut log = inner.events.lock().unwrap();
        let event = Event {
            t_us: inner.epoch.elapsed().as_micros() as u64,
            kind,
            name: name.to_string(),
            span,
            parent,
            attrs,
        };
        for sink in log.sinks.iter_mut() {
            sink.event(&event);
        }
        if log.ring.len() == log.capacity {
            log.ring.pop_front();
        }
        log.ring.push_back(event);
    }
}

/// A guard for an open span. Dropping it records the close event with the
/// span's wall-clock duration and accumulated attributes.
#[derive(Debug)]
pub struct Span {
    collector: Collector,
    id: u64,
    name: String,
    start: Instant,
    attrs: Vec<(String, AttrValue)>,
}

impl Span {
    /// Attach an attribute, reported on the close event.
    pub fn attr(&mut self, name: &str, value: impl Into<AttrValue>) {
        if self.collector.is_full() {
            self.attrs.push((name.to_string(), value.into()));
        }
    }

    /// The span's id (0 when the collector is noop).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Elapsed wall-clock time since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Close the span now (equivalent to dropping it).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        if self.collector.is_full() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&self.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (spans moved across scopes): remove
                    // wherever it is so the stack cannot grow unboundedly.
                    stack.retain(|&id| id != self.id);
                }
            });
        }
        let attrs = std::mem::take(&mut self.attrs);
        let dur_us = self.start.elapsed().as_micros() as u64;
        self.collector.record(
            EventKind::SpanClose { dur_us },
            &self.name,
            self.id,
            None,
            attrs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_collector_records_nothing_and_costs_nothing() {
        let c = Collector::noop();
        assert_eq!(c.mode(), CollectionMode::Noop);
        assert!(!c.is_enabled());
        let counter = c.counter("x");
        counter.add(10);
        assert_eq!(counter.value(), 0);
        let mut span = c.span("phase");
        span.attr("k", 1u64);
        assert_eq!(span.id(), 0);
        drop(span);
        c.event("e", Vec::new());
        assert!(c.events().is_empty());
        assert!(c.counter_values().is_empty());
    }

    #[test]
    fn counters_mode_counts_but_drops_events() {
        let c = Collector::counters();
        let counter = c.counter("engine.states");
        counter.add(5);
        counter.add(7);
        assert_eq!(counter.value(), 12);
        assert_eq!(c.counter_values(), vec![("engine.states".into(), 12)]);
        let gauge = c.gauge("depth");
        gauge.set(3);
        gauge.set(9);
        assert_eq!(gauge.value(), 9);
        let span = c.span("p");
        assert_ne!(span.id(), 0);
        drop(span);
        c.event("e", Vec::new());
        assert!(
            c.events().is_empty(),
            "counters mode must not buffer events"
        );
    }

    #[test]
    fn full_mode_pairs_span_open_and_close_with_monotonic_timestamps() {
        let c = Collector::full();
        {
            let mut outer = c.span("outer");
            outer.attr("states", 42u64);
            let inner = c.span("inner");
            c.event("tick", vec![("depth".into(), AttrValue::U64(3))]);
            drop(inner);
        }
        let events = c.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, EventKind::SpanOpen);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[1].parent, Some(events[0].span));
        assert_eq!(events[2].kind, EventKind::Point);
        assert_eq!(events[2].parent, Some(events[1].span));
        assert!(matches!(events[3].kind, EventKind::SpanClose { .. }));
        assert_eq!(events[3].name, "inner");
        assert_eq!(events[4].name, "outer");
        assert_eq!(
            events[4].attrs,
            vec![("states".to_string(), AttrValue::U64(42))]
        );
        for pair in events.windows(2) {
            assert!(pair[0].t_us <= pair[1].t_us, "timestamps must be monotonic");
        }
    }

    #[test]
    fn counters_shard_across_threads_without_losing_updates() {
        let c = Collector::counters();
        let counter = c.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8000);
    }

    #[test]
    fn collectors_compare_by_mode_only() {
        assert_eq!(Collector::noop(), Collector::default());
        assert_eq!(Collector::counters(), Collector::counters());
        assert_ne!(Collector::counters(), Collector::full());
        let a = Collector::full();
        a.counter("x").add(1);
        assert_eq!(a, Collector::full());
    }
}
