//! A minimal JSON value type with an encoder and a parser.
//!
//! The workspace's vendored `serde` is a compile-time stand-in with no real
//! serialisation, so the trace sink hand-encodes its lines and this module
//! supplies the matching parser used by the round-trip tests and by
//! consumers of `polychrony-trace-v1` files. It covers exactly the JSON the
//! toolchain emits: objects, arrays, strings with `\uXXXX` escapes, finite
//! numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is not preserved (keys sort).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{}", format_number(*n)),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Render a finite number: integers without a fractional part, everything
/// else via the shortest `f64` display.
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Quote and escape a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", ch as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{literal}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf8", start))?;
    let n: f64 = text.parse().map_err(|_| err("invalid number", start))?;
    if !n.is_finite() {
        return Err(err("non-finite number", start));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a valid &str).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("bad utf8", *pos))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &str) -> Json {
        let parsed = parse(input).unwrap();
        let encoded = parsed.to_string();
        let reparsed = parse(&encoded).unwrap();
        assert_eq!(parsed, reparsed, "encode/parse must round-trip: {input}");
        parsed
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(roundtrip("null"), Json::Null);
        assert_eq!(roundtrip("true"), Json::Bool(true));
        assert_eq!(roundtrip("false"), Json::Bool(false));
        assert_eq!(roundtrip("42"), Json::Num(42.0));
        assert_eq!(roundtrip("-7"), Json::Num(-7.0));
        assert_eq!(roundtrip("3.5"), Json::Num(3.5));
        assert_eq!(roundtrip("1e3"), Json::Num(1000.0));
        assert_eq!(roundtrip("\"hi\""), Json::Str("hi".into()));
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let v = roundtrip(r#""line\nbreak \"quoted\" tab\t back\\slash é""#);
        assert_eq!(
            v,
            Json::Str("line\nbreak \"quoted\" tab\t back\\slash é".into())
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = roundtrip(r#"{"a":[1,2,{"b":null}],"c":{"d":true},"e":"x"}"#);
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn accessors_extract_expected_types() {
        let v = parse(r#"{"t_us": 12, "name": "x", "neg": -1, "frac": 1.5}"#).unwrap();
        assert_eq!(v.get("t_us").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("frac").and_then(Json::as_u64), None);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{}}"] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }
}
