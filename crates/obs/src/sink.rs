//! Event sinks: consumers of the structured event stream.
//!
//! Sinks receive events in recording order while the collector holds its
//! event-log lock, so a sink never sees out-of-order timestamps. Two sinks
//! ship with the crate: [`JsonLinesSink`] writes the machine-readable
//! `polychrony-trace-v1` stream and [`ProgressReporter`] renders throttled
//! human progress lines on stderr.

use std::io::Write;
use std::time::{Duration, Instant};

use crate::json::escape;
use crate::{AttrValue, Event, EventKind};

/// The schema identifier stamped on every trace file's `meta` line.
pub const TRACE_SCHEMA: &str = "polychrony-trace-v1";

/// A consumer of the structured event stream. Implementations must be
/// `Send`: sinks are owned by the collector and may be driven from any
/// thread of a run.
pub trait EventSink: Send {
    /// Called once when the sink is registered; `t_us` is the collector
    /// clock at registration.
    fn open(&mut self, t_us: u64) {
        let _ = t_us;
    }

    /// Called for every recorded event, in timestamp order.
    fn event(&mut self, event: &Event);

    /// Called by [`crate::Collector::flush`] with the final counter and
    /// gauge snapshots.
    fn finish(&mut self, counters: &[(String, u64)], gauges: &[(String, u64)], t_us: u64) {
        let _ = (counters, gauges, t_us);
    }
}

/// Writes the `polychrony-trace-v1` JSON-lines stream.
///
/// One JSON object per line. Every line carries `"kind"` and `"t_us"`
/// (microseconds since the collector epoch, non-decreasing down the file):
///
/// * `{"kind":"meta","t_us":…,"schema":"polychrony-trace-v1"}` — first line.
/// * `{"kind":"span_open","t_us":…,"span":id,"name":…[,"parent":id]}`
/// * `{"kind":"span_close","t_us":…,"span":id,"name":…,"dur_us":…[,"attrs":{…}]}`
/// * `{"kind":"event","t_us":…,"name":…[,"span":id][,"attrs":{…}]}`
/// * `{"kind":"counters","t_us":…,"counters":{…},"gauges":{…}}` — written on
///   flush, last line of a complete trace.
pub struct JsonLinesSink {
    writer: Box<dyn Write + Send>,
}

impl JsonLinesSink {
    /// A sink writing to `writer` (typically a file opened for `--trace-out`).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesSink { writer }
    }

    fn write_line(&mut self, line: &str) {
        // Trace output is best-effort: a full disk must not abort the run.
        let _ = writeln!(self.writer, "{line}");
    }
}

/// Render an attribute list as a JSON object fragment `"attrs":{…}`.
fn attrs_json(attrs: &[(String, AttrValue)]) -> String {
    let mut out = String::from("\"attrs\":{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(k));
        out.push(':');
        out.push_str(&v.to_json().to_string());
    }
    out.push('}');
    out
}

impl EventSink for JsonLinesSink {
    fn open(&mut self, t_us: u64) {
        self.write_line(&format!(
            "{{\"kind\":\"meta\",\"t_us\":{t_us},\"schema\":{}}}",
            escape(TRACE_SCHEMA)
        ));
    }

    fn event(&mut self, event: &Event) {
        let mut line = String::from("{");
        let kind = match &event.kind {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose { .. } => "span_close",
            EventKind::Point => "event",
        };
        line.push_str(&format!("\"kind\":\"{kind}\",\"t_us\":{}", event.t_us));
        line.push_str(&format!(",\"name\":{}", escape(&event.name)));
        if event.span != 0 {
            line.push_str(&format!(",\"span\":{}", event.span));
        }
        if let Some(parent) = event.parent {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        if let EventKind::SpanClose { dur_us } = &event.kind {
            line.push_str(&format!(",\"dur_us\":{dur_us}"));
        }
        if !event.attrs.is_empty() {
            line.push(',');
            line.push_str(&attrs_json(&event.attrs));
        }
        line.push('}');
        self.write_line(&line);
    }

    fn finish(&mut self, counters: &[(String, u64)], gauges: &[(String, u64)], t_us: u64) {
        let mut line = format!("{{\"kind\":\"counters\",\"t_us\":{t_us},\"counters\":{{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{}:{v}", escape(k)));
        }
        line.push_str("},\"gauges\":{");
        for (i, (k, v)) in gauges.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{}:{v}", escape(k)));
        }
        line.push_str("}}");
        self.write_line(&line);
        let _ = self.writer.flush();
    }
}

/// Throttled human progress lines on stderr.
///
/// Listens for phase spans (names starting with `phase.`) and the engine's
/// per-level `engine.level` events, and renders at most one line per
/// throttle interval:
///
/// ```text
/// [verify] depth 42/384  states 1024  frontier 96  12.3k states/s  eta 1.2s
/// ```
///
/// The rate is computed from consecutive reports; the ETA extrapolates the
/// per-depth rate to the configured depth bound.
pub struct ProgressReporter {
    out: Box<dyn Write + Send>,
    min_interval: Duration,
    last_emit: Option<Instant>,
    phase: String,
    last_level: Option<(Instant, u64)>,
    states_per_sec: f64,
}

impl ProgressReporter {
    /// A reporter writing to stderr, emitting at most every 100ms.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()), Duration::from_millis(100))
    }

    /// A reporter writing to `out`, emitting at most once per `min_interval`.
    pub fn new(out: Box<dyn Write + Send>, min_interval: Duration) -> Self {
        ProgressReporter {
            out,
            min_interval,
            last_emit: None,
            phase: String::new(),
            last_level: None,
            states_per_sec: 0.0,
        }
    }

    fn throttled(&mut self) -> bool {
        self.last_emit
            .is_some_and(|t| t.elapsed() < self.min_interval)
    }

    fn emit(&mut self, line: &str) {
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
        self.last_emit = Some(Instant::now());
    }
}

/// Pull a numeric attribute out of an event.
fn attr_u64(event: &Event, name: &str) -> Option<u64> {
    event
        .attrs
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| match v {
            AttrValue::U64(n) => Some(*n),
            AttrValue::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        })
}

/// Render a count with a compact suffix (`12.3k`, `4.2M`).
fn human_count(n: f64) -> String {
    if n >= 1_000_000.0 {
        format!("{:.1}M", n / 1_000_000.0)
    } else if n >= 1_000.0 {
        format!("{:.1}k", n / 1_000.0)
    } else {
        format!("{n:.0}")
    }
}

impl EventSink for ProgressReporter {
    fn event(&mut self, event: &Event) {
        match &event.kind {
            EventKind::SpanOpen if event.name.starts_with("phase.") => {
                self.phase = event.name["phase.".len()..].to_string();
                self.last_level = None;
                let line = format!("[{}] …", self.phase);
                if !self.throttled() {
                    self.emit(&line);
                }
            }
            EventKind::Point if event.name == "engine.level" => {
                let depth = attr_u64(event, "depth").unwrap_or(0);
                let bound = attr_u64(event, "bound");
                let states = attr_u64(event, "states").unwrap_or(0);
                let frontier = attr_u64(event, "frontier").unwrap_or(0);
                let now = Instant::now();
                if let Some((prev_t, prev_states)) = self.last_level {
                    let dt = now.duration_since(prev_t).as_secs_f64();
                    if dt > 0.0 {
                        let fresh = states.saturating_sub(prev_states) as f64;
                        self.states_per_sec = fresh / dt;
                    }
                }
                self.last_level = Some((now, states));
                if self.throttled() {
                    return;
                }
                let phase = if self.phase.is_empty() {
                    "verify"
                } else {
                    &self.phase
                };
                let mut line = match bound {
                    Some(bound) => format!("[{phase}] depth {depth}/{bound}"),
                    None => format!("[{phase}] depth {depth}"),
                };
                line.push_str(&format!(
                    "  states {}  frontier {}",
                    human_count(states as f64),
                    human_count(frontier as f64)
                ));
                if self.states_per_sec > 0.0 {
                    line.push_str(&format!("  {} states/s", human_count(self.states_per_sec)));
                    if let Some(bound) = bound {
                        let remaining = bound.saturating_sub(depth) as f64;
                        let per_level = states as f64 / depth.max(1) as f64;
                        let eta = remaining * per_level / self.states_per_sec;
                        if eta.is_finite() {
                            line.push_str(&format!("  eta {eta:.1}s"));
                        }
                    }
                }
                self.emit(&line);
            }
            _ => {}
        }
    }

    fn finish(&mut self, counters: &[(String, u64)], _gauges: &[(String, u64)], _t_us: u64) {
        let states = counters
            .iter()
            .find(|(k, _)| k == "engine.states")
            .map(|(_, v)| *v);
        if let Some(states) = states {
            let phase = if self.phase.is_empty() {
                "done"
            } else {
                &self.phase
            };
            let line = format!(
                "[{phase}] finished: {} states explored",
                human_count(states as f64)
            );
            self.emit(&line);
        }
    }
}

/// A condensed, transport-friendly progress notification bridged off the
/// span/event stream by a [`ProgressBridge`]. Consumers (the verification
/// daemon's `Progress` frames, in-process dashboards) get pipeline phase
/// boundaries and exploration-level snapshots without depending on the raw
/// event vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressUpdate {
    /// A pipeline phase opened (a `phase.<name>` span).
    Phase {
        /// Phase name without the `phase.` prefix (`parse`, …, `verify`).
        name: String,
    },
    /// The exploration engine finished one level (an `engine.level` event).
    Level {
        /// Phase the level belongs to (empty before any phase span opened).
        phase: String,
        /// Current exploration depth.
        depth: u64,
        /// Depth bound, when the exploration has one.
        bound: Option<u64>,
        /// Distinct states interned so far.
        states: u64,
        /// Current frontier size.
        frontier: u64,
    },
}

/// Bridges the collector's span/event stream onto a callback of
/// [`ProgressUpdate`]s — the generic half of live progress streaming.
/// [`ProgressReporter`] renders for humans; this sink forwards the same
/// signal to arbitrary consumers (an `mpsc` channel feeding a daemon's
/// subscribed clients, a GUI, a test). Registered like any sink via
/// [`Collector::add_sink`](crate::Collector::add_sink); the collector must
/// be in full mode for events to flow.
pub struct ProgressBridge {
    phase: String,
    forward: Box<dyn FnMut(ProgressUpdate) + Send>,
}

impl ProgressBridge {
    /// A bridge invoking `forward` for every update, on whichever thread
    /// records the event.
    pub fn new(forward: Box<dyn FnMut(ProgressUpdate) + Send>) -> Self {
        ProgressBridge {
            phase: String::new(),
            forward,
        }
    }

    /// A bridge sending every update into an `mpsc` channel. Send failures
    /// (receiver gone) are ignored: progress is best-effort and must never
    /// perturb the run.
    pub fn channel(tx: std::sync::mpsc::Sender<ProgressUpdate>) -> Self {
        Self::new(Box::new(move |update| {
            let _ = tx.send(update);
        }))
    }
}

impl EventSink for ProgressBridge {
    fn event(&mut self, event: &Event) {
        match &event.kind {
            EventKind::SpanOpen if event.name.starts_with("phase.") => {
                self.phase = event.name["phase.".len()..].to_string();
                (self.forward)(ProgressUpdate::Phase {
                    name: self.phase.clone(),
                });
            }
            EventKind::Point if event.name == "engine.level" => {
                (self.forward)(ProgressUpdate::Level {
                    phase: self.phase.clone(),
                    depth: attr_u64(event, "depth").unwrap_or(0),
                    bound: attr_u64(event, "bound"),
                    states: attr_u64(event, "states").unwrap_or(0),
                    frontier: attr_u64(event, "frontier").unwrap_or(0),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::Collector;
    use std::sync::{Arc, Mutex};

    /// A `Write` that appends into a shared buffer, for asserting on sink
    /// output after the collector takes ownership of the sink.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn trace_lines_round_trip_through_the_json_parser() {
        let buf = SharedBuf::default();
        let collector = Collector::full();
        collector.add_sink(Box::new(JsonLinesSink::new(Box::new(buf.clone()))));
        {
            let mut span = collector.span("phase.verify");
            span.attr("states", 97u64);
            collector.event(
                "engine.level",
                vec![
                    ("depth".into(), 3u64.into()),
                    ("states".into(), 10u64.into()),
                ],
            );
        }
        collector.counter("engine.states").add(97);
        collector.gauge("engine.interner.bytes").set(4096);
        collector.flush();

        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.len() >= 5,
            "meta + open + event + close + counters: {text}"
        );
        let mut prev_t = 0;
        for line in &lines {
            let v = json::parse(line).expect("every trace line parses");
            let kind = v.get("kind").and_then(json::Json::as_str).expect("kind");
            let t_us = v.get("t_us").and_then(json::Json::as_u64).expect("t_us");
            assert!(t_us >= prev_t, "timestamps non-decreasing");
            prev_t = t_us;
            assert!(
                matches!(
                    kind,
                    "meta" | "span_open" | "span_close" | "event" | "counters"
                ),
                "unknown kind {kind}"
            );
        }
        let meta = json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("kind").and_then(json::Json::as_str), Some("meta"));
        assert_eq!(
            meta.get("schema").and_then(json::Json::as_str),
            Some(TRACE_SCHEMA)
        );
        let last = json::parse(lines[lines.len() - 1]).unwrap();
        assert_eq!(
            last.get("kind").and_then(json::Json::as_str),
            Some("counters")
        );
        assert_eq!(
            last.get("counters")
                .and_then(|c| c.get("engine.states"))
                .and_then(json::Json::as_u64),
            Some(97)
        );
        assert_eq!(
            last.get("gauges")
                .and_then(|g| g.get("engine.interner.bytes"))
                .and_then(json::Json::as_u64),
            Some(4096)
        );
        let close = lines
            .iter()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("kind").and_then(json::Json::as_str) == Some("span_close"))
            .expect("span close present");
        assert!(close.get("dur_us").and_then(json::Json::as_u64).is_some());
        assert_eq!(
            close
                .get("attrs")
                .and_then(|a| a.get("states"))
                .and_then(json::Json::as_u64),
            Some(97)
        );
    }

    #[test]
    fn progress_bridge_forwards_phase_and_level_updates() {
        let (tx, rx) = std::sync::mpsc::channel();
        let collector = Collector::full();
        collector.add_sink(Box::new(ProgressBridge::channel(tx)));
        {
            let _span = collector.span("phase.verify");
            collector.event(
                "engine.level",
                vec![
                    ("depth".into(), 3u64.into()),
                    ("bound".into(), 24u64.into()),
                    ("states".into(), 57u64.into()),
                    ("frontier".into(), 8u64.into()),
                ],
            );
            // Unrelated events are not forwarded.
            collector.event("engine.memo", vec![]);
        }
        drop(collector);
        let updates: Vec<ProgressUpdate> = rx.iter().collect();
        assert_eq!(
            updates,
            vec![
                ProgressUpdate::Phase {
                    name: "verify".into()
                },
                ProgressUpdate::Level {
                    phase: "verify".into(),
                    depth: 3,
                    bound: Some(24),
                    states: 57,
                    frontier: 8,
                },
            ]
        );
    }

    #[test]
    fn progress_reporter_renders_phase_and_level_lines() {
        let buf = SharedBuf::default();
        let mut reporter = ProgressReporter::new(Box::new(buf.clone()), Duration::from_millis(0));
        reporter.event(&Event {
            t_us: 1,
            kind: EventKind::SpanOpen,
            name: "phase.verify".into(),
            span: 1,
            parent: None,
            attrs: vec![],
        });
        reporter.event(&Event {
            t_us: 2,
            kind: EventKind::Point,
            name: "engine.level".into(),
            span: 0,
            parent: Some(1),
            attrs: vec![
                ("depth".into(), 3u64.into()),
                ("bound".into(), 10u64.into()),
                ("states".into(), 1500u64.into()),
                ("frontier".into(), 40u64.into()),
            ],
        });
        reporter.finish(&[("engine.states".into(), 1500)], &[], 3);
        let text = buf.text();
        assert!(text.contains("[verify] depth 3/10"), "{text}");
        assert!(text.contains("states 1.5k"), "{text}");
        assert!(text.contains("frontier 40"), "{text}");
        assert!(text.contains("finished: 1.5k states explored"), "{text}");
    }
}
