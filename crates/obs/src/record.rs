//! Per-run summaries embedded into toolchain reports.
//!
//! A [`RunRecord`] is the durable, report-friendly residue of a run's
//! telemetry: one [`PhaseRecord`] per pipeline phase (wall time plus the
//! phase's deterministic attributes) and a final counter snapshot. It is
//! deliberately small and owned — reports must stay self-contained after
//! the collector is gone.

use std::fmt::Write as _;

/// Timing and attributes for one pipeline phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseRecord {
    /// Phase name (`parse`, `instantiate`, …, `verify`).
    pub name: String,
    /// Wall-clock duration of the phase in microseconds.
    pub wall_us: u64,
    /// Phase-specific numeric attributes (e.g. `states`, `hyperperiod`).
    pub attrs: Vec<(String, u64)>,
}

impl PhaseRecord {
    /// Look up a numeric attribute by name.
    pub fn attr(&self, name: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// The telemetry summary a finished run leaves behind in its report.
///
/// # Equality
///
/// `PartialEq` compares the *shape* of the run only — the sequence of phase
/// names. Wall times and counter values are measurements, not results: two
/// runs of the same model must produce equal reports (the staged-vs-facade
/// and batch worker-count determinism pins rely on this), and counters may
/// legitimately include nondeterministic engine telemetry such as steal
/// counts.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// One record per executed phase, in execution order.
    pub phases: Vec<PhaseRecord>,
    /// Final collector counter snapshot `(name, value)`, sorted by name.
    /// Empty when the run's collector was noop.
    pub counters: Vec<(String, u64)>,
}

impl PartialEq for RunRecord {
    fn eq(&self, other: &Self) -> bool {
        self.phases.len() == other.phases.len()
            && self
                .phases
                .iter()
                .zip(&other.phases)
                .all(|(a, b)| a.name == b.name)
    }
}

impl Eq for RunRecord {}

impl RunRecord {
    /// Append a phase record.
    pub fn push(&mut self, phase: PhaseRecord) {
        self.phases.push(phase);
    }

    /// Look up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseRecord> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Total wall time across all recorded phases, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.phases.iter().map(|p| p.wall_us).sum()
    }

    /// A multi-line human rendering: one line per phase with duration and
    /// attributes, plus a total.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for phase in &self.phases {
            let _ = write!(
                out,
                "  {:<12} {:>9.3} ms",
                phase.name,
                phase.wall_us as f64 / 1000.0
            );
            for (k, v) in &phase.attrs {
                let _ = write!(out, "  {k}={v}");
            }
            out.push('\n');
        }
        let _ = write!(
            out,
            "  {:<12} {:>9.3} ms",
            "total",
            self.total_us() as f64 / 1000.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(names: &[&str], wall: u64) -> RunRecord {
        RunRecord {
            phases: names
                .iter()
                .map(|n| PhaseRecord {
                    name: n.to_string(),
                    wall_us: wall,
                    attrs: vec![("states".into(), 10)],
                })
                .collect(),
            counters: vec![("engine.steals".into(), wall)],
        }
    }

    #[test]
    fn equality_ignores_timings_and_counter_values() {
        let a = record(&["parse", "verify"], 10);
        let b = record(&["parse", "verify"], 99_999);
        assert_eq!(
            a, b,
            "wall times and counters are measurements, not results"
        );
        let c = record(&["parse", "simulate"], 10);
        assert_ne!(a, c, "phase sequence is part of the run's shape");
    }

    #[test]
    fn accessors_and_summary_render_phases() {
        let mut r = RunRecord::default();
        r.push(PhaseRecord {
            name: "verify".into(),
            wall_us: 1500,
            attrs: vec![("states".into(), 97)],
        });
        assert_eq!(r.phase("verify").and_then(|p| p.attr("states")), Some(97));
        assert_eq!(r.total_us(), 1500);
        let summary = r.summary();
        assert!(summary.contains("verify"), "{summary}");
        assert!(summary.contains("states=97"), "{summary}");
        assert!(summary.contains("total"), "{summary}");
    }
}
