//! Telemetry must never perturb verification: verdicts, counterexample
//! depths/traces and the full `ExplorationStats` must be bit-identical with
//! collection `Noop`, `Counters` and `Full` (with a live JSON-lines sink
//! attached), across every worker count × frontier mode combination — on
//! both the free-mode thread verifier and the product verifier.

use proptest::prelude::*;

use polyverify::{
    CollectionMode, Collector, Domain, ExplorationStats, FrontierMode, InputSpace, JsonLinesSink,
    PortLink, ProductComponent, ProductSystem, ProductVerifier, Property, VerificationOutcome,
    Verifier, VerifyOptions,
};
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::Trace;
use signal_moc::value::{Value, ValueType};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const FRONTIERS: [FrontierMode; 2] = [FrontierMode::Barrier, FrontierMode::WorkStealing];
const MODES: [CollectionMode; 3] = [
    CollectionMode::Noop,
    CollectionMode::Counters,
    CollectionMode::Full,
];

/// A collector in `mode`; the full one gets a live JSON-lines sink (writing
/// into the void) so the event-recording path is actually exercised.
fn collector(mode: CollectionMode) -> Collector {
    let c = Collector::with_mode(mode);
    if mode == CollectionMode::Full {
        c.add_sink(Box::new(JsonLinesSink::new(Box::new(std::io::sink()))));
    }
    c
}

/// Everything that must be identical across configurations: the full
/// verdict rendering (counterexample traces included) and the complete
/// stats — `workers` excluded, since the worker count actually used
/// legitimately varies with the configuration.
fn fingerprint(outcome: &VerificationOutcome) -> (Vec<u8>, ExplorationStats) {
    let mut verdicts = Vec::new();
    for verdict in &outcome.verdicts {
        verdicts.extend_from_slice(format!("{verdict:?}").as_bytes());
        verdicts.push(0);
    }
    let mut stats = outcome.stats.clone();
    stats.workers = 0;
    (verdicts, stats)
}

/// A per-input miss counter whose alarm fires once input `d` has been
/// present `threshold` times in a row (same shape as the engine-determinism
/// pin: many states per level, so scheduling races are real).
fn streak_counter(threshold: i64) -> Process {
    let mut b = ProcessBuilder::new("streak");
    b.input("d", ValueType::Boolean);
    b.input("r", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("streak", ValueType::Integer);
    let prev = Expr::delay(Expr::var("streak"), Value::Int(0));
    b.define(
        "streak",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("r")),
            Expr::default(
                Expr::when(Expr::add(prev, Expr::int(1)), Expr::var("d")),
                Expr::int(0),
            ),
        ),
    );
    b.define("Alarm", Expr::ge(Expr::var("streak"), Expr::int(threshold)));
    b.synchronize(&["d", "r", "streak", "Alarm"]);
    b.build().unwrap()
}

/// The streak counter plus an unbounded monotone step counter no property
/// reads — exercises the interval domain's widening/projection counters
/// under telemetry.
fn streak_with_invisible_counter(threshold: i64) -> Process {
    let mut b = ProcessBuilder::new("streaktotal");
    b.input("d", ValueType::Boolean);
    b.input("r", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("streak", ValueType::Integer);
    b.local("total", ValueType::Integer);
    let prev = Expr::delay(Expr::var("streak"), Value::Int(0));
    b.define(
        "streak",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("r")),
            Expr::default(
                Expr::when(Expr::add(prev, Expr::int(1)), Expr::var("d")),
                Expr::int(0),
            ),
        ),
    );
    b.define(
        "total",
        Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
    );
    b.define("Alarm", Expr::ge(Expr::var("streak"), Expr::int(threshold)));
    b.synchronize(&["d", "r", "streak", "total", "Alarm"]);
    b.build().unwrap()
}

/// A linear pipeline of event-counting stages for the product verifier.
fn pipeline_system(count: usize, horizon: usize, threshold: i64, period: usize) -> ProductSystem {
    fn stage(name: &str, threshold: i64) -> Process {
        let mut b = ProcessBuilder::new(name);
        b.input("Dispatch", ValueType::Boolean);
        b.input("out_output_time", ValueType::Boolean);
        b.input("in_in", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("seen", ValueType::Integer);
        let prev = Expr::delay(Expr::var("seen"), Value::Int(0));
        b.define(
            "seen",
            Expr::add(
                prev,
                Expr::default(Expr::when(Expr::int(1), Expr::var("in_in")), Expr::int(0)),
            ),
        );
        b.define("Alarm", Expr::ge(Expr::var("seen"), Expr::int(threshold)));
        b.synchronize(&["Dispatch", "out_output_time", "in_in", "seen", "Alarm"]);
        b.build().unwrap()
    }
    let mut components = Vec::new();
    for i in 0..count {
        let mut schedule = Trace::new();
        for t in 0..horizon {
            schedule.set(t, "Dispatch", Value::Bool(t % period == 0));
            schedule.set(t, "out_output_time", Value::Bool(t % period == period - 1));
            schedule.set(t, "in_in", Value::Bool(false));
        }
        components.push(ProductComponent {
            name: format!("s{i}"),
            process: stage(&format!("stage{i}"), threshold),
            schedule,
        });
    }
    let links = (1..count)
        .map(|i| PortLink {
            name: format!("l{}{}", i - 1, i),
            source: format!("s{}", i - 1),
            source_signal: "out_output_time".into(),
            target: format!("s{i}"),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency: 0,
        })
        .collect();
    ProductSystem::new(components, links).unwrap()
}

proptest! {
    /// Free-mode exploration: identical outcomes under every collection
    /// mode × workers × frontier combination, for both violating (low
    /// threshold) and bounded-pass (high threshold) runs.
    #[test]
    fn free_exploration_is_collection_mode_independent(
        threshold in 1i64..=6,
        depth in 3usize..=5,
    ) {
        let process = streak_counter(threshold);
        let properties = [Property::NeverRaised("*Alarm*".into()), Property::DeadlockFree];
        let mut reference: Option<(Vec<u8>, ExplorationStats)> = None;
        for mode in MODES {
            for workers in WORKER_COUNTS {
                for frontier in FRONTIERS {
                    let verifier = Verifier::new(
                        &process,
                        VerifyOptions::default()
                            .with_workers(workers)
                            .with_depth_bound(depth)
                            .with_frontier(frontier)
                            .with_interner_capacity(1)
                            .with_collector(collector(mode)),
                    )
                    .unwrap();
                    let outcome = verifier.verify(&InputSpace::Free, &properties).unwrap();
                    let print = fingerprint(&outcome);
                    match &reference {
                        None => reference = Some(print),
                        Some(expected) => prop_assert_eq!(
                            expected,
                            &print,
                            "mode={:?} workers={} frontier={:?}",
                            mode,
                            workers,
                            frontier
                        ),
                    }
                }
            }
        }
    }

    /// Interval-domain exploration: the widened / projected_slots /
    /// reconcretized counters and the full verdict rendering are identical
    /// under every collection mode × workers × frontier × projection
    /// combination — telemetry never perturbs the abstraction either.
    #[test]
    fn interval_outcome_is_collection_mode_independent(
        threshold in 1i64..=4,
        depth in 3usize..=5,
    ) {
        let process = streak_with_invisible_counter(threshold);
        let properties = [Property::NeverRaised("*Alarm*".into())];
        for project in [false, true] {
            let mut reference: Option<(Vec<u8>, ExplorationStats)> = None;
            for mode in MODES {
                for workers in WORKER_COUNTS {
                    for frontier in FRONTIERS {
                        let verifier = Verifier::new(
                            &process,
                            VerifyOptions::default()
                                .with_workers(workers)
                                .with_depth_bound(depth)
                                .with_frontier(frontier)
                                .with_domain(Domain::Interval)
                                .with_project_counters(project)
                                .with_interner_capacity(1)
                                .with_collector(collector(mode)),
                        )
                        .unwrap();
                        let outcome = verifier.verify(&InputSpace::Free, &properties).unwrap();
                        let print = fingerprint(&outcome);
                        match &reference {
                            None => reference = Some(print),
                            Some(expected) => prop_assert_eq!(
                                expected,
                                &print,
                                "mode={:?} workers={} frontier={:?} project={}",
                                mode,
                                workers,
                                frontier,
                                project
                            ),
                        }
                    }
                }
            }
        }
    }

    /// Product exploration: identical outcomes under every collection mode
    /// × workers × frontier combination, including the memo hit/miss
    /// stats, which count the memo's deterministic activity (pruning fixed
    /// on, so the memo is live).
    #[test]
    fn product_outcome_is_collection_mode_independent(
        component_count in 2usize..=3,
        horizon in 4usize..=8,
        threshold in 1i64..=4,
        period in 1usize..=4,
    ) {
        let system = pipeline_system(component_count, horizon, threshold, period);
        let properties = [Property::NeverRaised("*Alarm*".into()), Property::DeadlockFree];
        let mut reference: Option<(Vec<u8>, ExplorationStats)> = None;
        for mode in MODES {
            for workers in WORKER_COUNTS {
                for frontier in FRONTIERS {
                    let verifier = ProductVerifier::new(
                        system.clone(),
                        VerifyOptions::default()
                            .with_workers(workers)
                            .with_depth_bound(horizon * 2)
                            .with_frontier(frontier)
                            .with_interner_capacity(1)
                            .with_collector(collector(mode)),
                    )
                    .unwrap();
                    let outcome = verifier.verify(&properties).unwrap();
                    let print = fingerprint(&outcome);
                    match &reference {
                        None => reference = Some(print),
                        Some(expected) => prop_assert_eq!(
                            expected,
                            &print,
                            "mode={:?} workers={} frontier={:?}",
                            mode,
                            workers,
                            frontier
                        ),
                    }
                }
            }
        }
    }
}

/// The stat-gap fixes ride the same harness: per-level frontier sizes are
/// recorded with their invariants, and the product's memo hit/miss counts
/// actually surface.
#[test]
fn frontier_levels_and_memo_counts_are_populated() {
    let process = streak_counter(2);
    let properties = [Property::DeadlockFree];
    let verifier = Verifier::new(
        &process,
        VerifyOptions::default().with_depth_bound(4).with_workers(2),
    )
    .unwrap();
    let outcome = verifier.verify(&InputSpace::Free, &properties).unwrap();
    let stats = &outcome.stats;
    assert_eq!(
        stats.frontier_levels.len(),
        stats.depth,
        "one frontier size per explored level"
    );
    assert_eq!(stats.frontier_levels[0], 1, "the root level has one state");
    assert_eq!(
        stats
            .frontier_levels
            .iter()
            .map(|&f| f as usize)
            .max()
            .unwrap_or(0),
        stats.peak_frontier,
        "peak_frontier is the max over the per-level sizes"
    );

    let system = pipeline_system(2, 6, 2, 2);
    let product = ProductVerifier::new(
        system.clone(),
        VerifyOptions::default()
            .with_depth_bound(12)
            .with_pruning(true),
    )
    .unwrap();
    let pruned = product.verify(&properties).unwrap();
    assert!(
        pruned.stats.memo_hits > 0,
        "components cycle, so the memo hits"
    );
    assert!(pruned.stats.memo_misses > 0, "first encounters always miss");
    let unpruned = ProductVerifier::new(
        system,
        VerifyOptions::default()
            .with_depth_bound(12)
            .with_pruning(false),
    )
    .unwrap()
    .verify(&properties)
    .unwrap();
    assert_eq!(unpruned.stats.memo_hits, 0, "memo off: no hits");
    assert_eq!(
        unpruned.stats.memo_misses,
        pruned.stats.memo_hits + pruned.stats.memo_misses,
        "memo off: every component step is a miss"
    );
    assert_eq!(
        pruned.stats.states, unpruned.stats.states,
        "memoisation never changes the explored space"
    );
}
