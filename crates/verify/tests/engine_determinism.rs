//! Determinism pins on the shared exploration core: verdicts,
//! counterexample depths and explored-state counts must be bit-identical
//! across every worker count × frontier discipline combination, and
//! clock-calculus pruning (the product's per-component memoisation) must
//! never change an outcome — checked on randomised 2–3 thread systems.

use proptest::prelude::*;

use polyverify::{
    Domain, FrontierMode, InputSpace, PortLink, ProductComponent, ProductSystem, ProductVerifier,
    Property, VerificationOutcome, Verifier, VerifyOptions,
};
use signal_moc::builder::ProcessBuilder;
use signal_moc::expr::Expr;
use signal_moc::process::Process;
use signal_moc::trace::Trace;
use signal_moc::value::{Value, ValueType};

/// The engine configurations every exploration must agree across.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const FRONTIERS: [FrontierMode; 2] = [FrontierMode::Barrier, FrontierMode::WorkStealing];

/// A per-input miss counter whose alarm fires once input `d` has been
/// present `threshold` times in a row — free-mode exploration branches on
/// every boolean valuation of `d` and `r`, so the frontier carries many
/// states per level and the tie-break rules actually matter.
fn streak_counter(threshold: i64) -> Process {
    let mut b = ProcessBuilder::new("streak");
    b.input("d", ValueType::Boolean);
    b.input("r", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("streak", ValueType::Integer);
    let prev = Expr::delay(Expr::var("streak"), Value::Int(0));
    b.define(
        "streak",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("r")),
            Expr::default(
                Expr::when(Expr::add(prev, Expr::int(1)), Expr::var("d")),
                Expr::int(0),
            ),
        ),
    );
    b.define("Alarm", Expr::ge(Expr::var("streak"), Expr::int(threshold)));
    b.synchronize(&["d", "r", "streak", "Alarm"]);
    b.build().unwrap()
}

/// Strips the fields that legitimately differ between configurations (the
/// worker count actually used) and returns everything that must not —
/// including the interval-domain counters (widenings, projected slots,
/// re-concretized counterexamples), which are all zero under the concrete
/// domain.
type Fingerprint = (Vec<u8>, [usize; 7], bool);

fn fingerprint(outcome: &VerificationOutcome) -> Fingerprint {
    let mut verdicts = Vec::new();
    for verdict in &outcome.verdicts {
        verdicts.extend_from_slice(format!("{verdict:?}").as_bytes());
        verdicts.push(0);
    }
    (
        verdicts,
        [
            outcome.stats.states,
            outcome.stats.transitions,
            outcome.stats.depth,
            outcome.stats.infeasible,
            outcome.stats.widened,
            outcome.stats.projected_slots,
            outcome.stats.reconcretized,
        ],
        outcome.stats.truncated,
    )
}

/// The streak counter plus an unbounded monotone step counter no property
/// reads — what the interval domain widens (or projects) away.
fn streak_with_invisible_counter(threshold: i64) -> Process {
    let mut b = ProcessBuilder::new("streaktotal");
    b.input("d", ValueType::Boolean);
    b.input("r", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("streak", ValueType::Integer);
    b.local("total", ValueType::Integer);
    let prev = Expr::delay(Expr::var("streak"), Value::Int(0));
    b.define(
        "streak",
        Expr::default(
            Expr::when(Expr::int(0), Expr::var("r")),
            Expr::default(
                Expr::when(Expr::add(prev, Expr::int(1)), Expr::var("d")),
                Expr::int(0),
            ),
        ),
    );
    b.define(
        "total",
        Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
    );
    b.define("Alarm", Expr::ge(Expr::var("streak"), Expr::int(threshold)));
    b.synchronize(&["d", "r", "streak", "total", "Alarm"]);
    b.build().unwrap()
}

/// A bounded observable part (a toggle flag) plus the invisible unbounded
/// counter: the only reason the concrete space cannot close is the
/// counter, so the interval domain must close it.
fn toggle_with_invisible_counter(alarm_reachable: bool) -> Process {
    let mut b = ProcessBuilder::new("toggletotal");
    b.input("d", ValueType::Boolean);
    b.output("Alarm", ValueType::Boolean);
    b.local("flag", ValueType::Boolean);
    b.local("total", ValueType::Integer);
    let prev = Expr::delay(Expr::var("flag"), Value::Bool(false));
    b.define(
        "flag",
        Expr::default(Expr::when(Expr::not(prev.clone()), Expr::var("d")), prev),
    );
    b.define(
        "total",
        Expr::add(Expr::delay(Expr::var("total"), Value::Int(0)), Expr::int(1)),
    );
    if alarm_reachable {
        b.define("Alarm", Expr::and(Expr::var("flag"), Expr::var("d")));
    } else {
        b.define(
            "Alarm",
            Expr::and(Expr::var("d"), Expr::not(Expr::var("d"))),
        );
    }
    b.synchronize(&["d", "flag", "total", "Alarm"]);
    b.build().unwrap()
}

proptest! {
    /// Free-mode exploration of the streak counter: identical outcomes for
    /// every workers × frontier combination, whether the verdict is a
    /// violation (low threshold) or a bounded pass (high threshold).
    #[test]
    fn free_exploration_is_configuration_independent(
        threshold in 1i64..=6,
        depth in 3usize..=5,
    ) {
        let process = streak_counter(threshold);
        let properties = [Property::NeverRaised("*Alarm*".into()), Property::DeadlockFree];
        let mut reference: Option<Fingerprint> = None;
        for workers in WORKER_COUNTS {
            for frontier in FRONTIERS {
                let verifier = Verifier::new(
                    &process,
                    VerifyOptions::default()
                        .with_workers(workers)
                        .with_depth_bound(depth)
                        .with_frontier(frontier)
                        .with_interner_capacity(1),
                )
                .unwrap();
                let outcome = verifier.verify(&InputSpace::Free, &properties).unwrap();
                let print = fingerprint(&outcome);
                match &reference {
                    None => reference = Some(print),
                    Some(expected) => prop_assert_eq!(
                        expected,
                        &print,
                        "workers={} frontier={:?}",
                        workers,
                        frontier
                    ),
                }
            }
        }
    }

    /// Interval-domain exploration of a system with an invisible unbounded
    /// counter: verdicts, counterexample depths and the widened/projected/
    /// re-concretized counters are bit-identical across workers × frontier
    /// × projection, with and without a depth bound.
    #[test]
    fn interval_exploration_is_configuration_independent(
        threshold in 1i64..=4,
        closed in any::<bool>(),
        alarm_reachable in any::<bool>(),
    ) {
        // `closed`: observable part bounded — the unbounded interval run
        // must close (no truncation). Otherwise the observable streak is
        // itself unbounded and a depth bound applies to both domains.
        let (process, bound) = if closed {
            (toggle_with_invisible_counter(alarm_reachable), None)
        } else {
            (
                streak_with_invisible_counter(threshold),
                Some(threshold as usize + 2),
            )
        };
        let properties = [Property::NeverRaised("*Alarm*".into())];
        for project in [false, true] {
            let mut reference: Option<Fingerprint> = None;
            for workers in WORKER_COUNTS {
                for frontier in FRONTIERS {
                    let mut options = VerifyOptions::default()
                        .with_workers(workers)
                        .with_frontier(frontier)
                        .with_domain(Domain::Interval)
                        .with_project_counters(project)
                        .with_interner_capacity(1);
                    if let Some(bound) = bound {
                        options = options.with_depth_bound(bound);
                    }
                    let verifier = Verifier::new(&process, options).unwrap();
                    let outcome = verifier.verify(&InputSpace::Free, &properties).unwrap();
                    if closed && !alarm_reachable {
                        // The invisible counter is abstracted away, so the
                        // unbounded violation-free run closes with a proof
                        // instead of diverging. (A violating run stops
                        // early, which the engine reports as truncated.)
                        prop_assert!(!outcome.stats.truncated);
                        prop_assert!(outcome.all_proved());
                    }
                    let print = fingerprint(&outcome);
                    match &reference {
                        None => reference = Some(print),
                        Some(expected) => prop_assert_eq!(
                            expected,
                            &print,
                            "workers={} frontier={:?} project={}",
                            workers,
                            frontier,
                            project
                        ),
                    }
                }
            }
        }
    }

    /// Randomised 2–3 thread products: verdicts, counterexample depths and
    /// explored-state counts are identical for every workers × frontier ×
    /// pruning combination. Pruning toggles the product's per-component
    /// step memoisation, so this doubles as the regression pin that
    /// clock-calculus pruning never changes a verdict.
    #[test]
    fn product_outcome_is_configuration_independent(
        component_count in 2usize..=3,
        horizon in 4usize..=8,
        threshold in 1i64..=4,
        periods in prop::collection::vec(1usize..=4, 3..4),
        latency in 0usize..=2,
    ) {
        let system = pipeline_system(component_count, horizon, threshold, &periods, latency);
        let properties = [Property::NeverRaised("*Alarm*".into()), Property::DeadlockFree];
        let mut reference: Option<Fingerprint> = None;
        for workers in WORKER_COUNTS {
            for frontier in FRONTIERS {
                for pruning in [true, false] {
                    let verifier = ProductVerifier::new(
                        system.clone(),
                        VerifyOptions::default()
                            .with_workers(workers)
                            .with_depth_bound(horizon * 2)
                            .with_frontier(frontier)
                            .with_pruning(pruning)
                            .with_interner_capacity(1),
                    )
                    .unwrap();
                    let outcome = verifier.verify(&properties).unwrap();
                    let print = fingerprint(&outcome);
                    match &reference {
                        None => reference = Some(print),
                        Some(expected) => prop_assert_eq!(
                            expected,
                            &print,
                            "workers={} frontier={:?} pruning={}",
                            workers,
                            frontier,
                            pruning
                        ),
                    }
                }
            }
        }
    }
}

/// A randomised linear pipeline of `count` event-counting stages chained by
/// latency-`latency` links; stage `i` dispatches every `periods[i]` ticks
/// and alarms once it has received `threshold` events.
fn pipeline_system(
    count: usize,
    horizon: usize,
    threshold: i64,
    periods: &[usize],
    latency: usize,
) -> ProductSystem {
    fn stage(name: &str, threshold: i64) -> Process {
        let mut b = ProcessBuilder::new(name);
        b.input("Dispatch", ValueType::Boolean);
        b.input("out_output_time", ValueType::Boolean);
        b.input("in_in", ValueType::Boolean);
        b.output("Alarm", ValueType::Boolean);
        b.local("seen", ValueType::Integer);
        let prev = Expr::delay(Expr::var("seen"), Value::Int(0));
        b.define(
            "seen",
            Expr::add(
                prev,
                Expr::default(Expr::when(Expr::int(1), Expr::var("in_in")), Expr::int(0)),
            ),
        );
        b.define("Alarm", Expr::ge(Expr::var("seen"), Expr::int(threshold)));
        b.synchronize(&["Dispatch", "out_output_time", "in_in", "seen", "Alarm"]);
        b.build().unwrap()
    }
    let mut components = Vec::new();
    for (i, period) in periods.iter().take(count).enumerate() {
        let period = (*period).max(1);
        let mut schedule = Trace::new();
        for t in 0..horizon {
            schedule.set(t, "Dispatch", Value::Bool(t % period == 0));
            schedule.set(t, "out_output_time", Value::Bool(t % period == period - 1));
            schedule.set(t, "in_in", Value::Bool(false));
        }
        components.push(ProductComponent {
            name: format!("s{i}"),
            process: stage(&format!("stage{i}"), threshold),
            schedule,
        });
    }
    let links = (1..count)
        .map(|i| PortLink {
            name: format!("l{}{}", i - 1, i),
            source: format!("s{}", i - 1),
            source_signal: "out_output_time".into(),
            target: format!("s{i}"),
            target_signal: "in_in".into(),
            target_freeze: None,
            target_count: None,
            latency,
        })
        .collect();
    ProductSystem::new(components, links).unwrap()
}
